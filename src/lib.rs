//! # entangled-transactions
//!
//! Umbrella crate for the reproduction of *Entangled Transactions*
//! (Gupta, Nikolic, Roy, Bender, Kot, Gehrke, Koch — PVLDB 4(7), 2011):
//! re-exports every layer of the system. See the README for a tour and
//! DESIGN.md for the paper-to-crate mapping.
//!
//! * [`storage`] — in-memory relational engine (tables, indexes, SPJ).
//! * [`lock`] — Strict 2PL lock manager with deadlock detection.
//! * [`wal`] — write-ahead log + entanglement-aware recovery.
//! * [`sql`] — the paper's SQL dialect with entangled-query extensions.
//! * [`entangle`] — entangled-query engine (IR, grounding, solving).
//! * [`isolation`] — Appendix C as executable theory (anomalies,
//!   oracle-serializability, Theorem 3.6 checks).
//! * [`txn`] — the entangled transaction engine and §4 run scheduler.
//! * [`workload`] — the §5.2 evaluation workloads.

pub use entangled_txn as txn;
pub use youtopia_entangle as entangle;
pub use youtopia_isolation as isolation;
pub use youtopia_lock as lock;
pub use youtopia_sql as sql;
pub use youtopia_storage as storage;
pub use youtopia_wal as wal;
pub use youtopia_workload as workload;

pub use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig, TxnStatus};
