//! The Appendix D social-travel workload at small scale: a synthetic
//! Slashdot-like friendship graph, the four-table travel schema, and a
//! mixed batch of plain, social and entangled bookings — the workload the
//! paper's evaluation is built on.
//!
//! ```sh
//! cargo run --example social_travel
//! ```

use entangled_txn::{CostModel, TxnStatus};
use youtopia_workload::{
    engine_config, generate, scheduler_for, Family, SocialGraph, TravelData, TravelParams,
    WorkloadMode,
};

fn main() {
    // A 200-user preferential-attachment graph (the Slashdot substitute).
    let params = TravelParams {
        users: 200,
        cities: 8,
        flights: 250,
        seed: 42,
    };
    let graph = SocialGraph::slashdot_like(200, 42);
    println!(
        "social graph: {} users, {} edges, avg degree {:.1}, max degree {}",
        graph.len(),
        graph.edge_count(),
        graph.avg_degree(),
        graph.max_degree()
    );

    let mut data = TravelData::generate(params, graph);
    data.align_pair_hometowns(42);
    let engine = data.build_engine(engine_config(
        WorkloadMode::Transactional,
        CostModel::ZERO,
        true, // record the history for the isolation audit below
    ));
    let mut sched = scheduler_for(engine, 8);

    // 30 plain bookings, 30 social bookings, 40 entangled bookings.
    for program in generate(Family::NoSocial, &data, 30, 42) {
        sched.submit(program);
    }
    for program in generate(Family::Social, &data, 30, 42) {
        sched.submit(program);
    }
    for program in generate(Family::Entangled, &data, 40, 42) {
        sched.submit(program);
    }
    let stats = sched.drain();
    println!("\nscheduler stats: {stats:?}");

    let committed = sched
        .results()
        .iter()
        .filter(|r| r.status == TxnStatus::Committed)
        .count();
    println!("committed {committed}/100 transactions");
    assert!(committed >= 95, "expected nearly everything to commit");

    sched.engine.with_db(|db| {
        let reservations = db.table("Reserve").expect("table").len();
        println!("reservations made: {reservations}");
        // Every reservation references a real flight.
        for row in db.canonical_rows("Reserve").expect("table") {
            let hits = db
                .select_eq("Flight", &[("fid", row[1].clone())])
                .expect("query");
            assert_eq!(hits.len(), 1, "ghost booking {row:?}");
        }
    });

    // Isolation audit: the history produced by the whole mixed batch is
    // valid and entangled-isolated (Appendix C).
    let schedule = sched.engine.recorder.schedule();
    schedule.validate().expect("valid history");
    let anomalies = youtopia_isolation::find_anomalies(&schedule.expand_quasi_reads());
    println!("anomalies in recorded history: {}", anomalies.len());
    assert!(anomalies.is_empty());
    println!("entangled isolation holds across the whole workload ✓");
}
