//! Entanglement-aware durability (§3.4 and §4 "Persistence and Recovery"):
//! group commits survive crashes atomically, and a commit record without
//! its partners' commits is rolled back during recovery — no widowed
//! transaction can be made durable.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig};
use std::sync::Arc;
use youtopia_storage::Value;
use youtopia_wal::{recover, LogRecord, Wal};

fn main() {
    // ---- Part 1: a group commit survives a crash ----
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);
             CREATE TABLE Reserve (name TEXT, fno INT);
             INSERT INTO Flights VALUES (122, 'LA');",
        )
        .expect("setup");
    let pair = |me: &str, other: &str| {
        Program::parse(&format!(
            "BEGIN WITH TIMEOUT 5 SECONDS;
             SELECT '{me}', fno AS @fno INTO ANSWER R
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
             AND ('{other}', fno) IN ANSWER R CHOOSE 1;
             INSERT INTO Reserve (name, fno) VALUES ('{me}', @fno);
             COMMIT;"
        ))
        .expect("template")
    };
    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());
    sched.submit(pair("Mickey", "Minnie"));
    sched.submit(pair("Minnie", "Mickey"));
    let report = sched.run_once();
    assert_eq!(report.committed, 2);
    println!("before crash: both partners committed (one group commit)");

    // Power loss. The engine rebuilds the database from the durable log.
    let widowed = engine.crash_and_recover().expect("log readable");
    assert!(widowed.is_empty());
    engine.with_db(|db| {
        let rows = db.canonical_rows("Reserve").expect("table");
        println!("after recovery: {} reservations survive", rows.len());
        assert_eq!(rows.len(), 2, "the whole group is durable");
    });

    // ---- Part 2: a half-committed group is rolled back entirely ----
    // The engine's group commit never leaves this state behind (one sync
    // covers the group), so we stage the paper's §4 scenario directly at
    // the WAL level: t1's commit became durable, the crash hit before
    // t2's.
    println!("\nstaging a crash BETWEEN partner commits at the WAL level:");
    let wal = Wal::new();
    wal.append(&LogRecord::CreateTable {
        name: "Reserve".into(),
        schema: youtopia_storage::Schema::of(&[
            ("name", youtopia_storage::ValueType::Str),
            ("fno", youtopia_storage::ValueType::Int),
        ]),
    });
    wal.append(&LogRecord::EntangleGroup {
        group: 1,
        txs: vec![1, 2],
    });
    wal.append(&LogRecord::Insert {
        tx: 1,
        table: "Reserve".into(),
        row: 0,
        values: vec![Value::str("Mickey"), Value::Int(122)],
    });
    wal.append(&LogRecord::Insert {
        tx: 2,
        table: "Reserve".into(),
        row: 1,
        values: vec![Value::str("Minnie"), Value::Int(122)],
    });
    wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
    // CRASH: t2's commit never reaches the disk.
    wal.crash();
    let outcome = recover(&wal.durable_records().expect("readable log")).expect("clean log");
    println!(
        "recovery: losers={:?}, widowed rollbacks={:?}",
        outcome.losers, outcome.widowed_rollbacks
    );
    assert_eq!(
        outcome.db.table("Reserve").expect("table").len(),
        0,
        "BOTH partners rolled back — t1's durable commit does not survive alone"
    );
    assert!(outcome.widowed_rollbacks.contains(&1));
    println!("no durable widowed transaction — the §4 recovery rule holds ✓");
}
