//! Quickstart: the §2 example — Mickey and Minnie coordinate on a flight
//! to Los Angeles through entangled queries, without ever seeing each
//! other's transaction.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig, TxnStatus};
use std::sync::Arc;

fn main() {
    // The Figure 1(a) database: four flights, two airlines.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT);
             CREATE TABLE Airlines (fno INT, airline TEXT);
             CREATE TABLE Reserve (name TEXT, fno INT);
             INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
             INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
             INSERT INTO Flights VALUES (124, '2011-05-03', 'LA');
             INSERT INTO Flights VALUES (235, '2011-05-05', 'Paris');
             INSERT INTO Airlines VALUES (122, 'United');
             INSERT INTO Airlines VALUES (123, 'United');
             INSERT INTO Airlines VALUES (124, 'USAir');
             INSERT INTO Airlines VALUES (235, 'Delta');",
        )
        .expect("setup");

    // Mickey: any LA flight, as long as Minnie is on it.
    let mickey = Program::parse(
        "BEGIN TRANSACTION WITH TIMEOUT 10 SECONDS;
         SELECT 'Mickey', fno AS @fno, fdate INTO ANSWER Reservation
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
         AND ('Minnie', fno, fdate) IN ANSWER Reservation
         CHOOSE 1;
         INSERT INTO Reserve (name, fno) VALUES ('Mickey', @fno);
         COMMIT;",
    )
    .expect("parse Mickey");

    // Minnie: same, but only on United.
    let minnie = Program::parse(
        "BEGIN TRANSACTION WITH TIMEOUT 10 SECONDS;
         SELECT 'Minnie', fno AS @fno, fdate INTO ANSWER Reservation
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights F, Airlines A
                              WHERE F.dest='LA' AND F.fno = A.fno
                              AND A.airline = 'United')
         AND ('Mickey', fno, fdate) IN ANSWER Reservation
         CHOOSE 1;
         INSERT INTO Reserve (name, fno) VALUES ('Minnie', @fno);
         COMMIT;",
    )
    .expect("parse Minnie");

    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());
    sched.submit(mickey);
    sched.submit(minnie);
    let report = sched.run_once();

    println!("run report: {report:?}\n");
    for result in sched.results() {
        println!(
            "client {:?}: {:?} (answers: {:?})",
            result.client, result.status, result.answers
        );
        assert_eq!(result.status, TxnStatus::Committed);
    }

    engine.with_db(|db| {
        println!("\nReserve table:");
        for row in db.canonical_rows("Reserve").expect("table exists") {
            println!("  {} -> flight {}", row[0], row[1]);
        }
    });

    // The recorded history satisfies entangled isolation (Appendix C).
    let schedule = engine.recorder.schedule();
    schedule.validate().expect("valid history");
    assert!(youtopia_isolation::is_entangled_isolated(&schedule));
    println!("\nhistory: {schedule}");
    println!("entangled-isolated: yes");
}
