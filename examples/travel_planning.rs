//! The full Figure 2 / Figure 4 walkthrough: Mickey and Minnie coordinate
//! on a flight *and then* a hotel (two entangled queries, host variables
//! threading the arrival date between them), while Donald waits in vain
//! for Daffy and is eventually timed out.
//!
//! ```sh
//! cargo run --example travel_planning
//! ```

use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig, TxnStatus};
use std::sync::Arc;
use std::time::Duration;

fn travel_program(me: &str, other: &str, timeout: Duration) -> Program {
    // Figure 2, with the bookings spelled out as inserts. @ArrivalDay flows
    // from the flight answer into the hotel coordination; @StayLength is
    // date arithmetic against the fixed return date.
    Program::parse(&format!(
        "BEGIN TRANSACTION WITH TIMEOUT {} MS;
         SELECT '{me}', fno AS @fno, fdate AS @ArrivalDay INTO ANSWER FlightRes
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA')
         AND ('{other}', fno, fdate) IN ANSWER FlightRes
         CHOOSE 1;
         INSERT INTO Tickets (name, fno) VALUES ('{me}', @fno);
         SET @StayLength = '2011-05-06' - @ArrivalDay;
         SELECT '{me}', hid AS @hid, @ArrivalDay, @StayLength INTO ANSWER HotelRes
         WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA')
         AND ('{other}', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes
         CHOOSE 1;
         INSERT INTO Rooms (name, hid, nights) VALUES ('{me}', @hid, @StayLength);
         COMMIT;",
        timeout.as_millis()
    ))
    .expect("static template")
}

fn main() {
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT);
             CREATE TABLE Hotels (hid INT, location TEXT);
             CREATE TABLE Tickets (name TEXT, fno INT);
             CREATE TABLE Rooms (name TEXT, hid INT, nights INT);
             INSERT INTO Flights VALUES (122, '2011-05-03', 'LA');
             INSERT INTO Flights VALUES (123, '2011-05-04', 'LA');
             INSERT INTO Hotels VALUES (7, 'LA');
             INSERT INTO Hotels VALUES (8, 'LA');",
        )
        .expect("setup");

    let mut sched = Scheduler::new(engine.clone(), SchedulerConfig::default());

    // Run 1: Mickey and Donald arrive first — nobody can proceed (Fig. 4's
    // prelude). Both are aborted and returned to the dormant pool.
    sched.submit(travel_program("Mickey", "Minnie", Duration::from_secs(10)));
    sched.submit(travel_program(
        "Donald",
        "Daffy",
        Duration::from_millis(300),
    ));
    let r1 = sched.run_once();
    println!(
        "run 1: committed={} returned_to_pool={}",
        r1.committed, r1.returned_to_pool
    );
    assert_eq!(r1.committed, 0);

    // Minnie arrives: run 2 plays out exactly like Figure 4 — flight
    // queries answered for Mickey & Minnie (Donald's is not), bookings,
    // hotel queries answered, bookings, group commit; Donald aborts again.
    sched.submit(travel_program("Minnie", "Mickey", Duration::from_secs(10)));
    let r2 = sched.run_once();
    println!(
        "run 2: committed={} eval_rounds={} returned_to_pool={}",
        r2.committed, r2.eval_rounds, r2.returned_to_pool
    );
    assert_eq!(r2.committed, 2);
    assert!(r2.eval_rounds >= 2, "flight round, then hotel round");

    // Let Donald's timeout expire, then drain: he fails for good.
    std::thread::sleep(Duration::from_millis(350));
    sched.drain();

    println!("\nfinal outcomes:");
    for result in sched.results() {
        println!("  client {:?}: {:?}", result.client, result.status);
    }
    let failed = sched
        .results()
        .iter()
        .filter(|r| matches!(r.status, TxnStatus::Failed(_)))
        .count();
    assert_eq!(failed, 1, "only Donald fails");

    engine.with_db(|db| {
        println!("\nTickets:");
        for row in db.canonical_rows("Tickets").expect("table") {
            println!("  {} on flight {}", row[0], row[1]);
        }
        println!("Rooms:");
        for row in db.canonical_rows("Rooms").expect("table") {
            println!("  {} in hotel {} for {} nights", row[0], row[1], row[2]);
        }
        let tickets = db.canonical_rows("Tickets").expect("table");
        let rooms = db.canonical_rows("Rooms").expect("table");
        assert_eq!(tickets.len(), 2);
        assert_eq!(rooms.len(), 2);
        assert_eq!(tickets[0][1], tickets[1][1], "same flight");
        assert_eq!(rooms[0][1], rooms[1][1], "same hotel");
        assert_eq!(rooms[0][2], rooms[1][2], "same stay length");
    });

    // Audit the recorded history against Appendix C.
    let schedule = engine.recorder.schedule();
    schedule.validate().expect("valid");
    assert!(youtopia_isolation::is_entangled_isolated(&schedule));
    println!("\nrecorded history is entangled-isolated ✓");
}
