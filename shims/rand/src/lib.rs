//! Offline shim for `rand` 0.8: [`rngs::StdRng`], the [`Rng`] /
//! [`SeedableRng`] traits, and [`seq::SliceRandom`], implemented over a
//! SplitMix64 generator. The workspace only needs seeded determinism and
//! reasonable statistical quality, not rand's exact stream, so the shim's
//! sequences differ from crates.io `rand` for the same seed.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform range sampling for [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `hi > lo`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform sample from `[lo, hi]`; `hi >= lo`. Correct at the type's
    /// extremes (a full-domain inclusive range is a raw draw).
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo with a 64-bit draw: bias is negligible for the
                // sub-2^32 spans this workspace samples.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> $t {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: every raw draw is already uniform.
                    return rng.next_u64() as $t;
                }
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }

    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> f64 {
        assert!(lo <= hi, "gen_range: empty inclusive range");
        if lo == hi {
            return lo;
        }
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

/// Range argument for [`Rng::gen_range`] (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn inclusive_ranges_reach_type_extremes() {
        let mut rng = StdRng::seed_from_u64(13);
        // Single-point ranges return the point, even at the maximum.
        assert_eq!(rng.gen_range(u8::MAX..=u8::MAX), u8::MAX);
        assert_eq!(rng.gen_range(i64::MIN..=i64::MIN), i64::MIN);
        assert_eq!(rng.gen_range(3.5f64..=3.5), 3.5);
        // Full-width inclusive ranges can produce the top value.
        let mut saw_max = false;
        for _ in 0..2_000 {
            let v: u8 = rng.gen_range(0u8..=u8::MAX);
            saw_max |= v == u8::MAX;
        }
        assert!(saw_max, "u8::MAX unreachable through 0..=u8::MAX");
        // Full 64-bit domains don't panic and stay in range trivially.
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.25 gave {hits}/20000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
