//! Offline shim for `serde_derive`: the derives are accepted and expand to
//! nothing. The workspace only uses `#[derive(Serialize, Deserialize)]` as
//! forward-looking annotations; no code serializes through serde yet. Swap
//! the `serde`/`serde_derive` entries in the root `Cargo.toml` for the real
//! crates.io releases to activate them.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
