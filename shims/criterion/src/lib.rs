//! Offline shim for `criterion`: the `criterion_group!`/`criterion_main!`
//! macros, [`Criterion`], benchmark groups, and [`Bencher::iter`], backed by
//! a plain wall-clock sampler. Each benchmark runs `sample_size` timed
//! samples after one warm-up and prints min/mean/max per iteration —
//! enough for the relative comparisons the repro harness makes, with none
//! of Criterion's statistics.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times one closure; handed to benchmark functions.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations of the timed samples.
    recorded: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std_black_box(routine()); // warm-up, untimed
        self.recorded.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.recorded.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        recorded: Vec::new(),
    };
    f(&mut b);
    if b.recorded.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = b.recorded.iter().sum();
    let mean = total / b.recorded.len() as u32;
    let min = *b.recorded.iter().min().expect("nonempty");
    let max = *b.recorded.iter().max().expect("nonempty");
    println!(
        "{label:<40} time: [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({} samples)",
        b.recorded.len()
    );
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Bundles benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_requested_samples() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        c.bench_function("counting", |b| b.iter(|| calls += 1));
        // One warm-up + sample_size timed runs.
        assert_eq!(calls, 11);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut calls = 0u32;
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| calls += x)
        });
        g.finish();
        assert_eq!(calls, 4 * 7);
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn macros_compose() {
        benches();
    }
}
