//! Offline shim for `crossbeam`: [`scope`] delegating to
//! `std::thread::scope`, and an unbounded MPMC [`channel`] built on a
//! mutex + condvar queue (crossbeam's `Receiver` is cloneable, std's
//! mpsc receiver is not, so the queue is homegrown).

use std::thread;

/// Scoped threads. The spawned closure receives a placeholder scope
/// argument (enough for `s.spawn(move |_| …)`; nested spawning from inside
/// a worker is not supported).
///
/// Panics from workers propagate when the scope exits (std behavior)
/// rather than surfacing through the returned `Result`, which only the
/// degenerate closure-panicked case would use — callers `.expect()` it
/// either way.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

/// Handle for spawning borrowed-data threads inside [`scope`].
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Placeholder passed to spawned closures in place of a nested scope.
#[derive(Debug, Clone, Copy)]
pub struct ScopeArg;

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&ScopeArg) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&ScopeArg))
    }
}

pub mod channel {
    use parking_lot::{Condvar, Mutex};
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Arc;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Unbounded multi-producer multi-consumer channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// All receivers disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Channel empty with all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.chan.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan.state.lock().senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.chan.state.lock().senders -= 1;
            // Wake blocked receivers so they can observe disconnection.
            self.chan.cv.notify_all();
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a value or until every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                self.chan.cv.wait(&mut st);
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.chan.state.lock().queue.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan.state.lock().receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.state.lock().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_out_fan_in_processes_everything() {
        let (task_tx, task_rx) = channel::unbounded::<u64>();
        let (done_tx, done_rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            task_tx.send(i).unwrap();
        }
        drop(task_tx);
        super::scope(|s| {
            for _ in 0..4 {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                s.spawn(move |_| {
                    while let Ok(i) = task_rx.recv() {
                        done_tx.send(i * 2).unwrap();
                    }
                });
            }
            drop(done_tx);
            let mut got: Vec<u64> = Vec::new();
            while let Ok(v) = done_rx.recv() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn recv_disconnects_when_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = channel::unbounded::<u8>();
        super::scope(|s| {
            s.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                tx.send(5).unwrap();
            });
            assert_eq!(rx.recv(), Ok(5));
        })
        .unwrap();
    }
}
