//! Offline shim for `parking_lot`: the same lock API (guards returned
//! directly, no poison `Result`s, `Condvar::wait` taking `&mut` guards)
//! implemented over `std::sync`. Poisoned locks are recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, LockResult};
use std::time::Instant;

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Mutual exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(recover(self.inner.lock())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard for [`Mutex`]. The inner `Option` lets [`Condvar`] take the std
/// guard by value and put the re-acquired one back — it is `Some` at every
/// point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(recover(self.inner.wait(g)));
    }

    /// Wait until `deadline`; returns whether the wait timed out.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let g = guard.inner.take().expect("guard present");
        let (g, result) = recover(self.inner.wait_timeout(g, timeout));
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, result) = recover(self.inner.wait_timeout(g, timeout));
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: recover(self.inner.read()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: recover(self.inner.write()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.inner.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakeup_and_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5));
            assert!(!r.timed_out());
        }
        drop(done);
        h.join().unwrap();

        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (5, 5));
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
