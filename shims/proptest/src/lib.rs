//! Offline shim for `proptest`: deterministic seeded random testing with
//! the API subset this workspace's property tests use — the [`proptest!`]
//! macro, [`strategy::Strategy`] with `prop_map`, [`prop_oneof!`],
//! [`strategy::Just`], [`arbitrary::any`], range and tuple strategies,
//! `prop::collection::vec`, `prop::bool::ANY`, and regex-literal string
//! strategies (a generator for the small character-class/quantifier subset
//! the tests rely on). No shrinking: a failing case reports its inputs and
//! case number instead of minimizing.

pub mod test_runner {
    use std::fmt;

    /// Deterministic RNG driving every generated case (SplitMix64 under a
    /// fixed seed, so failures reproduce run-to-run).
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        pub fn deterministic() -> TestRng {
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(0x0509_2011_C0FF_EE00))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleUniform};
    use std::marker::PhantomData;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strategy: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy, as produced by [`Strategy::boxed`].
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + 'static> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// String strategy from a regex literal (see [`crate::string`] for the
    /// supported subset).
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for any value of `T` (see [`crate::arbitrary::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Full-domain generation for primitive types.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// `any::<T>()` — a strategy over `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen()
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod string {
    use crate::test_runner::TestRng;
    use rand::Rng;

    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    /// Generate a string matching `pattern`, a regex in the subset the
    /// workspace's tests use: literal characters, `.`, character classes
    /// `[...]` with ranges and literals, and quantifiers `{n}` / `{m,n}`.
    /// Anything else (alternation, groups, `*`/`+`/`?`, escapes beyond
    /// `\\x`) panics, so silent mis-generation cannot happen.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let elements = compile(pattern);
        let mut out = String::new();
        for el in &elements {
            let n = if el.min == el.max {
                el.min
            } else {
                rng.gen_range(el.min..=el.max)
            };
            for _ in 0..n {
                out.push(el.chars[rng.gen_range(0..el.chars.len())]);
            }
        }
        out
    }

    fn compile(pattern: &str) -> Vec<Element> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut elements = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    set
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                '\\' => {
                    let escaped = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("regex shim: dangling escape in {pattern:?}"));
                    // Only literal escapes of metacharacters are supported;
                    // class escapes (\d, \w, \s, …) would silently generate
                    // the wrong input space, so they panic instead.
                    assert!(
                        !escaped.is_ascii_alphanumeric(),
                        "regex shim: unsupported class escape \\{escaped} in {pattern:?}"
                    );
                    i += 2;
                    vec![escaped]
                }
                '*' | '+' | '?' | '(' | ')' | '|' => {
                    panic!(
                        "regex shim: unsupported operator {:?} in {pattern:?}",
                        chars[i]
                    )
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            elements.push(Element {
                chars: set,
                min,
                max,
            });
        }
        elements
    }

    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        let start = i;
        while i < chars.len() && chars[i] != ']' {
            let c = chars[i];
            assert!(
                !(c == '^' && i == start),
                "regex shim: negated classes unsupported in {pattern:?}"
            );
            if c == '-' || i + 2 >= chars.len() || chars[i + 1] != '-' || chars[i + 2] == ']' {
                // Literal (including `-` at the edges of the class).
                set.push(c);
                i += 1;
            } else {
                let (lo, hi) = (c, chars[i + 2]);
                assert!(lo <= hi, "regex shim: inverted range in {pattern:?}");
                set.extend(lo..=hi);
                i += 3;
            }
        }
        assert!(
            i < chars.len(),
            "regex shim: unterminated class in {pattern:?}"
        );
        assert!(!set.is_empty(), "regex shim: empty class in {pattern:?}");
        (set, i + 1)
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        if i >= chars.len() || chars[i] != '{' {
            return (1, 1, i);
        }
        let close = (i..chars.len())
            .find(|&j| chars[j] == '}')
            .unwrap_or_else(|| panic!("regex shim: unterminated quantifier in {pattern:?}"));
        let body: String = chars[i + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("quantifier lower bound"),
                hi.trim().parse().expect("quantifier upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("quantifier count");
                (n, n)
            }
        };
        assert!(min <= max, "regex shim: inverted quantifier in {pattern:?}");
        (min, max, close + 1)
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        use crate::strategy::Any;
        use std::marker::PhantomData;

        /// `prop::bool::ANY` — either boolean.
        pub const ANY: Any<bool> = Any(PhantomData);
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($parm:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $parm = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($parm), " = {:?}; "),+),
                    $(&$parm),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{} failed: {e}\n  inputs: {inputs}",
                        config.cases
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..9, b in -2i64..=2) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-2..=2).contains(&b));
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-z]{2,4}", t in "x[0-9 _-]{0,3}") {
            prop_assert!((2..=4).contains(&s.len()), "len {} of {s:?}", s.len());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(t.starts_with('x') && t.len() <= 4);
            prop_assert!(t[1..].chars().all(|c| c.is_ascii_digit() || " _-".contains(c)));
        }

        #[test]
        fn composite_strategies_generate(
            v in prop::collection::vec((any::<u8>(), 0i64..5, prop::bool::ANY), 1..6),
            tagged in prop_oneof![
                Just(None),
                (0u8..10).prop_map(Some),
            ],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (_, n, _) in &v {
                prop_assert!((0..5).contains(n));
            }
            if let Some(x) = tagged {
                prop_assert!(x < 10);
            }
        }
    }

    #[test]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute: this one is invoked by hand below.
            proptest! {
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        let msg = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("inputs: x ="), "unexpected message: {msg}");
    }

    #[test]
    fn dot_generates_printable_ascii() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        for _ in 0..100 {
            let s = crate::string::generate(".{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
