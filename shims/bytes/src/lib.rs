//! Offline shim for `bytes`: [`Bytes`], [`BytesMut`], and the [`Buf`] /
//! [`BufMut`] traits, covering exactly the little-endian codec surface the
//! WAL uses. Backed by plain `Vec<u8>` — no refcounted slices.

use std::ops::Deref;

/// Read-side cursor over an owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

/// Growable write-side buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential reads from a buffer (little-endian getters).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, n: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_i32_le(&mut self) -> i32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
    fn copy_to_bytes(&mut self, n: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.pos += n;
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn copy_to_bytes(&mut self, n: usize) -> Bytes {
        Bytes::copy_from_slice(self.take(n))
    }
}

/// Sequential writes into a buffer (little-endian putters).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i32_le(-5);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(i64::MIN);
        w.put_slice(b"abc");
        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), i64::MIN);
        assert_eq!(r.copy_to_bytes(3).to_vec(), b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    fn deref_views_track_position() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(&*b, &[1, 2, 3, 4]);
        b.advance(2);
        assert_eq!(&*b, &[3, 4]);
        assert_eq!(b.remaining(), 2);
    }
}
