//! Offline shim for `serde`: provides the `Serialize`/`Deserialize` names
//! (derive macros only; they expand to nothing). See `shims/serde_derive`.

pub use serde_derive::{Deserialize, Serialize};
