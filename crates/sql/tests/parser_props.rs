//! Parser robustness: the lexer and parser must be total — errors, never
//! panics — on arbitrary input, and must roundtrip the paper's own
//! statements.

use proptest::prelude::*;
use youtopia_sql::{lex, parse_script, parse_statement};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// No input makes the lexer or parser panic.
    #[test]
    fn parser_is_total(input in ".{0,200}") {
        let _ = lex(&input);
        let _ = parse_statement(&input);
        let _ = parse_script(&input);
    }

    /// Structured near-SQL inputs: still no panics, and valid productions
    /// parse.
    #[test]
    fn near_sql_is_total(
        table in "[A-Za-z][A-Za-z0-9_]{0,8}",
        col in "[A-Za-z][A-Za-z0-9_]{0,8}",
        n in 0i64..1000,
        s in "[a-zA-Z0-9 ]{0,12}",
    ) {
        let candidates = [
            format!("SELECT {col} FROM {table} WHERE {col} = {n}"),
            format!("SELECT {col} FROM {table} WHERE {col} = '{s}' LIMIT 1"),
            format!("INSERT INTO {table} ({col}) VALUES ({n})"),
            format!("DELETE FROM {table} WHERE {col} <> {n}"),
            format!("UPDATE {table} SET {col} = {n}"),
            format!(
                "SELECT '{s}', {col} INTO ANSWER R WHERE {col} IN \
                 (SELECT {col} FROM {table}) AND ('{s}', {col}) IN ANSWER R CHOOSE 1"
            ),
        ];
        for c in &candidates {
            // Reserved words can collide with generated identifiers; the
            // parser may reject, but must not panic.
            let _ = parse_statement(c);
        }
    }
}

/// The paper's own listings must parse (regression anchor).
#[test]
fn all_paper_listings_parse() {
    let listings = [
        // §2 Mickey.
        "SELECT 'Mickey', fno, fdate INTO ANSWER Reservation \
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
         AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1",
        // §2 Minnie.
        "SELECT 'Minnie', fno, fdate INTO ANSWER Reservation \
         WHERE fno, fdate IN (SELECT fno, fdate FROM Flights F, Airlines A WHERE \
         F.dest='LA' and F.fno = A.fno AND A.airline = 'United') \
         AND ('Mickey', fno, fdate) IN ANSWER Reservation CHOOSE 1",
        // Appendix D workload 1 (statement by statement).
        "SELECT @uid, @hometown FROM User WHERE uid=36513",
        "SELECT @fid FROM Flight WHERE source=@hometown AND destination='FAT'",
        "INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid)",
        // Appendix D workload 2 friend lookup.
        "SELECT uid2 FROM Friends, User as u1, User as u2 \
         WHERE Friends.uid1=@uid AND Friends.uid2=u2.uid AND u1.uid=@uid \
         AND u1.hometown=u2.hometown LIMIT 1",
        // Appendix D workload 3 entangled query.
        "SELECT 36513 AS @uid, 'CAT' AS @destination INTO ANSWER Reserve \
         WHERE (36513, 45747) IN (SELECT uid1, uid2 FROM Friends, User as u1, User as u2 \
         WHERE Friends.uid1=36513 AND Friends.uid2=45747 AND u1.uid=36513 \
         AND u2.uid=45747 AND u1.hometown=u2.hometown) \
         AND (45747, 'PHF') IN ANSWER Reserve CHOOSE 1",
    ];
    for sql in listings {
        parse_statement(sql).unwrap_or_else(|e| panic!("{sql}\n  -> {e}"));
    }
    // Figure 2 as a full script.
    let fig2 = "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\
        SELECT 'Mickey', fno, fdate AS @ArrivalDay INTO ANSWER FlightRes \
        WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
        AND ('Minnie', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\
        SET @StayLength = '2011-05-06' - @ArrivalDay;\
        SELECT 'Mickey', hid, @ArrivalDay, @StayLength INTO ANSWER HotelRes \
        WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA') \
        AND ('Minnie', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes CHOOSE 1;\
        COMMIT;";
    assert_eq!(parse_script(fig2).expect("figure 2").len(), 5);
}
