//! # youtopia-sql
//!
//! The SQL dialect of the *Entangled Transactions* paper: classical
//! statements plus the entangled extension of §2,
//!
//! ```sql
//! SELECT select_expr
//! INTO ANSWER tbl_name [, ANSWER tbl_name] ...
//! [WHERE where_answer_condition]
//! CHOOSE 1
//! ```
//!
//! and the transaction brackets of §3.1 (`BEGIN TRANSACTION [WITH TIMEOUT
//! duration] … COMMIT`), host variables (`@name`, `AS @name` bindings), and
//! the workload statements of Appendix D.
//!
//! Three layers: [`token`] (lexer), [`ast`]+[`parser`] (syntax), and
//! [`lower`] (name resolution to executable `youtopia-storage` queries,
//! with `IN (SELECT …)` flattened into joins).
//!
//! ```
//! use youtopia_sql::{parse_statement, Statement};
//!
//! let st = parse_statement(
//!     "SELECT 'Mickey', fno, fdate INTO ANSWER Reservation \
//!      WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
//!      AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1",
//! ).unwrap();
//! assert!(st.is_entangled());
//! ```

pub mod ast;
pub mod lower;
pub mod parser;
pub mod token;

pub use ast::{ColumnRef, Cond, EntangledSelect, Scalar, Select, SelectItem, Statement, TableRef};
pub use lower::{
    access_plan, lower_const_scalar, lower_row_scalar, lower_select, lower_table_cond, point_probe,
    AccessPlan, IndexProbe, LowerError, LoweredSelect, RangeProbe, VarEnv,
};
pub use parser::{parse_script, parse_statement, ParseError};
pub use token::{lex, LexError, Token};
