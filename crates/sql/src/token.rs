//! Lexer for the paper's SQL dialect.
//!
//! One dialect decision worth calling out: single-quoted literals that match
//! `YYYY-MM-DD` are lexed as **date literals** (the paper writes
//! `SET @StayLength = '2011-05-06' - @ArrivalDay`, which is date
//! arithmetic). Everything else in quotes is a string.

use std::fmt;
use youtopia_storage::Value;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by
    /// the parser).
    Ident(String),
    /// `@name` host variable.
    HostVar(String),
    /// Integer, string or date literal.
    Lit(Value),
    /// Punctuation and operators.
    LParen,
    RParen,
    Comma,
    Semi,
    Star,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::HostVar(s) => write!(f, "@{s}"),
            Token::Lit(v) => write!(f, "{v}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Lexing errors with byte offsets for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

fn looks_like_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter().enumerate().all(|(i, c)| {
            if i == 4 || i == 7 {
                *c == b'-'
            } else {
                c.is_ascii_digit()
            }
        })
}

/// Tokenize a statement or script. `--` comments run to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let b = input.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < b.len() && b[i + 1] == b'-' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b';' => {
                out.push(Token::Semi);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < b.len() && b[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < b.len() && b[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'!' if i + 1 < b.len() && b[i + 1] == b'=' => {
                out.push(Token::Ne);
                i += 2;
            }
            b'\'' | b'`' => {
                // Quoted literal. The paper's text uses typographic quotes in
                // places; we accept plain ' and ` quoting.
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != quote {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(LexError {
                        offset: i,
                        message: "unterminated string".into(),
                    });
                }
                let s = &input[start..j];
                let lit = if looks_like_date(s) {
                    Value::parse_date(s)
                        .map(Token::Lit)
                        .unwrap_or_else(|| Token::Lit(Value::str(s)))
                } else {
                    Token::Lit(Value::str(s))
                };
                out.push(lit);
                i = j + 1;
            }
            b'@' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        offset: i,
                        message: "empty host variable".into(),
                    });
                }
                out.push(Token::HostVar(input[start..j].to_string()));
                i = j;
            }
            b'0'..=b'9' => {
                let start = i;
                let mut j = i;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                let n: i64 = input[start..j].parse().map_err(|_| LexError {
                    offset: start,
                    message: "integer overflow".into(),
                })?;
                out.push(Token::Lit(Value::Int(n)));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_' || b[j] == b'.')
                {
                    j += 1;
                }
                out.push(Token::Ident(input[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let toks = lex("SELECT fno FROM Flights WHERE dest='LA';").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Lit(Value::str("LA"))));
        assert_eq!(*toks.last().unwrap(), Token::Semi);
    }

    #[test]
    fn date_literals_are_typed() {
        let toks = lex("SET @x = '2011-05-06' - @ArrivalDay").unwrap();
        assert!(toks.iter().any(|t| matches!(t, Token::Lit(Value::Date(_)))));
        assert!(toks.contains(&Token::HostVar("x".into())));
        assert!(toks.contains(&Token::Minus));
    }

    #[test]
    fn non_date_strings_stay_strings() {
        let toks = lex("'1234-56-789'").unwrap();
        assert_eq!(toks, vec![Token::Lit(Value::str("1234-56-789"))]);
        let toks = lex("'2011-13-40'").unwrap(); // date-shaped but invalid
        assert_eq!(toks, vec![Token::Lit(Value::str("2011-13-40"))]);
    }

    #[test]
    fn comments_ignored() {
        let toks = lex("SELECT 1 -- (Code to perform flight booking omitted)\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Lit(Value::Int(1)),
                Token::Comma,
                Token::Lit(Value::Int(2)),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex("a <= b >= c <> d != e < f > g = h").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::Le,
                &Token::Ge,
                &Token::Ne,
                &Token::Ne,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq
            ]
        );
    }

    #[test]
    fn qualified_names_kept_whole() {
        let toks = lex("F.dest = A.fno").unwrap();
        assert_eq!(toks[0], Token::Ident("F.dest".into()));
        assert_eq!(toks[2], Token::Ident("A.fno".into()));
    }

    #[test]
    fn errors_reported_with_offset() {
        let err = lex("SELECT 'oops").unwrap_err();
        assert_eq!(err.offset, 7);
        let err = lex("a @ b").unwrap_err();
        assert!(err.message.contains("host variable"));
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn backquotes_accepted() {
        let toks = lex("VALUES (`125`, `United`)").unwrap();
        assert!(toks.contains(&Token::Lit(Value::str("125"))));
        assert!(toks.contains(&Token::Lit(Value::str("United"))));
    }
}
