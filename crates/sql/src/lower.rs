//! Lowering: name resolution from AST to resolved [`SpjQuery`]s /
//! [`Expr`]s, with host-variable substitution.
//!
//! `IN (SELECT …)` subqueries are flattened into the enclosing join — legal
//! because the dialect (like the paper's entangled WHERE clauses) is
//! restricted to select-project-join, so membership is expressible as extra
//! join factors plus equality predicates. Subqueries must be uncorrelated
//! (they may use host variables, which are constants by lowering time).

use crate::ast::{ColumnRef, Cond, Scalar, Select, SelectItem};
use std::collections::HashMap;
use std::fmt;
use std::ops::Bound;
use youtopia_storage::{CmpOp, Expr, IndexKind, SpjQuery, StorageError, TableProvider, Value};

/// Lowering failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    UnknownTable(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    UnboundVariable(String),
    Unsupported(&'static str),
    Storage(StorageError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            LowerError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            LowerError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            LowerError::UnboundVariable(v) => write!(f, "unbound host variable @{v}"),
            LowerError::Unsupported(w) => write!(f, "unsupported construct: {w}"),
            LowerError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<StorageError> for LowerError {
    fn from(e: StorageError) -> Self {
        LowerError::Storage(e)
    }
}

/// Host-variable environment.
pub type VarEnv = HashMap<String, Value>;

/// A lowered SELECT: the executable query plus output metadata.
#[derive(Debug, Clone)]
pub struct LoweredSelect {
    pub query: SpjQuery,
    /// Output column names (alias, else column name, else a placeholder).
    pub names: Vec<String>,
    /// `(output column index, host variable)` bindings from `AS @var` /
    /// bare-`@var` items.
    pub bindings: Vec<(usize, String)>,
}

/// One table visible to name resolution.
struct ScopeEntry {
    binding: String,
    table: String,
    position: usize,
}

struct Scope<'a> {
    db: &'a dyn TableProvider,
    entries: Vec<ScopeEntry>,
}

impl<'a> Scope<'a> {
    fn resolve(&self, c: &ColumnRef) -> Result<(usize, usize), LowerError> {
        match &c.qualifier {
            Some(q) => {
                let e = self
                    .entries
                    .iter()
                    .find(|e| e.binding.eq_ignore_ascii_case(q))
                    .ok_or_else(|| LowerError::UnknownTable(q.clone()))?;
                let idx = self
                    .db
                    .table(&e.table)?
                    .schema()
                    .index_of(&c.column)
                    .ok_or_else(|| LowerError::UnknownColumn(c.to_string()))?;
                Ok((e.position, idx))
            }
            None => {
                // First-match-wins for unqualified names: the paper's own
                // §2 query projects a bare `fno` from `Flights F, Airlines
                // A` (joined on `F.fno = A.fno`), so strict ambiguity
                // rejection would refuse the paper's examples. MySQL-style
                // strictness is traded for fidelity; qualify to override.
                for e in &self.entries {
                    if let Some(idx) = self.db.table(&e.table)?.schema().index_of(&c.column) {
                        return Ok((e.position, idx));
                    }
                }
                Err(LowerError::UnknownColumn(c.column.clone()))
            }
        }
    }
}

fn lower_scalar(s: &Scalar, scope: &Scope<'_>, vars: &VarEnv) -> Result<Expr, LowerError> {
    match s {
        Scalar::Lit(v) => Ok(Expr::Const(v.clone())),
        Scalar::HostVar(n) => vars
            .get(n)
            .cloned()
            .map(Expr::Const)
            .ok_or_else(|| LowerError::UnboundVariable(n.clone())),
        Scalar::Col(c) => {
            let (tbl, col) = scope.resolve(c)?;
            Ok(Expr::Col { tbl, col })
        }
        Scalar::Add(l, r) => Ok(Expr::Add(
            Box::new(lower_scalar(l, scope, vars)?),
            Box::new(lower_scalar(r, scope, vars)?),
        )),
        Scalar::Sub(l, r) => Ok(Expr::Sub(
            Box::new(lower_scalar(l, scope, vars)?),
            Box::new(lower_scalar(r, scope, vars)?),
        )),
    }
}

/// Projection expressions, output column names, and variable bindings
/// (projection index, variable name) accumulated while lowering a SELECT.
type SelectParts = (Vec<Expr>, Vec<String>, Vec<(usize, String)>);

/// Lower a full SELECT, flattening IN-subqueries into the join. `tables`
/// and `conjuncts` accumulate across nesting levels.
fn lower_select_into(
    db: &dyn TableProvider,
    sel: &Select,
    vars: &VarEnv,
    tables: &mut Vec<String>,
    conjuncts: &mut Vec<Expr>,
) -> Result<SelectParts, LowerError> {
    let base = tables.len();
    let mut scope = Scope {
        db,
        entries: Vec::new(),
    };
    for (i, tr) in sel.from.iter().enumerate() {
        db.table(&tr.table)
            .map_err(|_| LowerError::UnknownTable(tr.table.clone()))?;
        scope.entries.push(ScopeEntry {
            binding: tr.binding_name().to_string(),
            table: tr.table.clone(),
            position: base + i,
        });
        tables.push(tr.table.clone());
    }

    lower_cond_into(db, &sel.where_clause, &scope, vars, tables, conjuncts)?;

    // Projection.
    let mut projection = Vec::new();
    let mut names = Vec::new();
    let mut bindings = Vec::new();
    if sel.star {
        for e in &scope.entries {
            let t = db.table(&e.table)?;
            for (ci, col) in t.schema().columns().iter().enumerate() {
                projection.push(Expr::Col {
                    tbl: e.position,
                    col: ci,
                });
                names.push(col.name.clone());
            }
        }
    } else {
        for (i, item) in sel.items.iter().enumerate() {
            projection.push(lower_scalar(&item.expr, &scope, vars)?);
            names.push(item_name(item, i));
            if let Some(b) = &item.bind {
                bindings.push((i, b.clone()));
            }
        }
    }
    Ok((projection, names, bindings))
}

fn item_name(item: &SelectItem, i: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    if let Scalar::Col(c) = &item.expr {
        return c.column.clone();
    }
    format!("col{i}")
}

fn lower_cond_into(
    db: &dyn TableProvider,
    cond: &Cond,
    scope: &Scope<'_>,
    vars: &VarEnv,
    tables: &mut Vec<String>,
    conjuncts: &mut Vec<Expr>,
) -> Result<(), LowerError> {
    for c in cond.conjuncts() {
        match c {
            Cond::Cmp { op, lhs, rhs } => {
                conjuncts.push(Expr::cmp(
                    *op,
                    lower_scalar(lhs, scope, vars)?,
                    lower_scalar(rhs, scope, vars)?,
                ));
            }
            Cond::InSelect { tuple, select } => {
                // Flatten: subquery tables join the outer query; tuple
                // components equate to the subquery's projection.
                if select.distinct || select.limit.is_some() {
                    return Err(LowerError::Unsupported("DISTINCT/LIMIT inside IN subquery"));
                }
                let mut sub_conjs = Vec::new();
                let (sub_proj, _, _) = lower_select_into(db, select, vars, tables, &mut sub_conjs)?;
                if sub_proj.len() != tuple.len() {
                    return Err(LowerError::Unsupported("IN tuple arity mismatch"));
                }
                conjuncts.extend(sub_conjs);
                for (t, p) in tuple.iter().zip(sub_proj) {
                    conjuncts.push(Expr::eq(lower_scalar(t, scope, vars)?, p));
                }
            }
            Cond::InAnswer { .. } => {
                return Err(LowerError::Unsupported(
                    "ANSWER relations outside an entangled query",
                ));
            }
            Cond::Or(l, r) => {
                conjuncts.push(Expr::Or(
                    Box::new(lower_pure_cond(db, l, scope, vars)?),
                    Box::new(lower_pure_cond(db, r, scope, vars)?),
                ));
            }
            Cond::Not(inner) => {
                conjuncts.push(Expr::Not(Box::new(lower_pure_cond(
                    db, inner, scope, vars,
                )?)));
            }
            Cond::True => {}
            Cond::And(..) => unreachable!("conjuncts() flattens ANDs"),
        }
    }
    Ok(())
}

/// Lower a condition that must not introduce new join factors (inside
/// OR/NOT, where flattening would change semantics).
#[allow(clippy::only_used_in_recursion)]
fn lower_pure_cond(
    db: &dyn TableProvider,
    cond: &Cond,
    scope: &Scope<'_>,
    vars: &VarEnv,
) -> Result<Expr, LowerError> {
    match cond {
        Cond::True => Ok(Expr::Const(Value::Bool(true))),
        Cond::Cmp { op, lhs, rhs } => Ok(Expr::cmp(
            *op,
            lower_scalar(lhs, scope, vars)?,
            lower_scalar(rhs, scope, vars)?,
        )),
        Cond::And(l, r) => Ok(Expr::and(
            lower_pure_cond(db, l, scope, vars)?,
            lower_pure_cond(db, r, scope, vars)?,
        )),
        Cond::Or(l, r) => Ok(Expr::Or(
            Box::new(lower_pure_cond(db, l, scope, vars)?),
            Box::new(lower_pure_cond(db, r, scope, vars)?),
        )),
        Cond::Not(c) => Ok(Expr::Not(Box::new(lower_pure_cond(db, c, scope, vars)?))),
        Cond::InSelect { .. } | Cond::InAnswer { .. } => {
            Err(LowerError::Unsupported("IN inside OR/NOT"))
        }
    }
}

/// Lower a classical SELECT to an executable [`SpjQuery`].
pub fn lower_select(
    db: &dyn TableProvider,
    sel: &Select,
    vars: &VarEnv,
) -> Result<LoweredSelect, LowerError> {
    let mut tables = Vec::new();
    let mut conjuncts = Vec::new();
    let (projection, names, bindings) =
        lower_select_into(db, sel, vars, &mut tables, &mut conjuncts)?;
    let query = SpjQuery {
        tables,
        predicate: Expr::and_all(conjuncts),
        projection,
        distinct: sel.distinct,
        limit: sel.limit.map(|l| l as usize),
    };
    Ok(LoweredSelect {
        query,
        names,
        bindings,
    })
}

/// Lower a WHERE clause over a single named table (UPDATE/DELETE): no
/// subqueries, scope = that table alone at position 0.
pub fn lower_table_cond(
    db: &dyn TableProvider,
    table: &str,
    cond: &Cond,
    vars: &VarEnv,
) -> Result<Expr, LowerError> {
    let scope = Scope {
        db,
        entries: vec![ScopeEntry {
            binding: table.to_string(),
            table: table.to_string(),
            position: 0,
        }],
    };
    lower_pure_cond(db, cond, &scope, vars)
}

/// Lower a scalar over a single named table (UPDATE `SET` expressions) to
/// a resolved [`Expr`] whose column references are pre-bound indexes —
/// evaluated per row with `expr.eval(&[row])`, no further name resolution.
pub fn lower_row_scalar(
    db: &dyn TableProvider,
    table: &str,
    s: &Scalar,
    vars: &VarEnv,
) -> Result<Expr, LowerError> {
    let scope = Scope {
        db,
        entries: vec![ScopeEntry {
            binding: table.to_string(),
            table: table.to_string(),
            position: 0,
        }],
    };
    lower_scalar(s, &scope, vars)
}

/// A point-lookup access path found in a lowered single-table predicate:
/// equality conjuncts pin every column of a named secondary index to keys
/// computable before execution (literals / host variables). The executor
/// uses this to replace the O(table) scan by one index probe and to
/// refine table-S locking to table-IS + per-key S.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexProbe {
    /// Name of the named index to probe.
    pub index: String,
    /// The indexed columns' positions in the table schema.
    pub columns: Vec<usize>,
    /// The equality key — a bare value for single-column indexes, a
    /// [`Value::Tuple`] for composite ones.
    pub key: Value,
}

/// A range access path over a btree index: the index's leading columns
/// pinned by equality conjuncts (`prefix`), the next column constrained
/// to the `lo..hi` interval (either side may be unbounded when the prefix
/// is non-empty).
#[derive(Debug, Clone, PartialEq)]
pub struct RangeProbe {
    /// Name of the btree index to walk.
    pub index: String,
    /// The indexed columns' positions in the table schema.
    pub columns: Vec<usize>,
    /// Equality keys for the leading `prefix.len()` index columns.
    pub prefix: Vec<Value>,
    /// Lower bound on index column `prefix.len()`.
    pub lo: Bound<Value>,
    /// Upper bound on index column `prefix.len()`.
    pub hi: Bound<Value>,
}

impl RangeProbe {
    /// The lower bound in the by-reference form the index probes take.
    pub fn lo_ref(&self) -> Bound<&Value> {
        bound_ref(&self.lo)
    }

    /// The upper bound in the by-reference form the index probes take.
    pub fn hi_ref(&self) -> Bound<&Value> {
        bound_ref(&self.hi)
    }
}

/// Convert an owned bound to the by-reference form probes take.
pub fn bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// How a single-table statement will read its table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPlan {
    /// One index probe with an exact key.
    Point(IndexProbe),
    /// An ordered walk of a btree index interval.
    Range(RangeProbe),
    /// Full heap scan.
    Scan,
}

/// Constant constraints a predicate puts on single-table columns:
/// equality pins in predicate order plus the tightest range bounds.
#[derive(Default)]
struct ColConstraints {
    /// `(column, key)` for each `col = const` conjunct, in predicate
    /// order, first conjunct wins per column.
    eq: Vec<(usize, Value)>,
    lo: HashMap<usize, Bound<Value>>,
    hi: HashMap<usize, Bound<Value>>,
}

fn bound_val(b: &Bound<Value>) -> &Value {
    match b {
        Bound::Included(v) | Bound::Excluded(v) => v,
        Bound::Unbounded => unreachable!("constraint maps never hold Unbounded"),
    }
}

impl ColConstraints {
    fn collect(pred: &Expr) -> ColConstraints {
        let mut cons = ColConstraints::default();
        for c in pred.conjuncts() {
            let Expr::Cmp { op, lhs, rhs } = c else {
                continue;
            };
            let (col, other, op) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col { tbl: 0, col }, o) => (*col, o, *op),
                (o, Expr::Col { tbl: 0, col }) => (*col, o, op.flip()),
                _ => continue,
            };
            if other.max_table().is_some() {
                continue;
            }
            let Ok(v) = other.eval(&[]) else { continue };
            match op {
                CmpOp::Eq if !cons.eq.iter().any(|(ec, _)| *ec == col) => {
                    cons.eq.push((col, v));
                }
                CmpOp::Gt => cons.tighten_lo(col, Bound::Excluded(v)),
                CmpOp::Ge => cons.tighten_lo(col, Bound::Included(v)),
                CmpOp::Lt => cons.tighten_hi(col, Bound::Excluded(v)),
                CmpOp::Le => cons.tighten_hi(col, Bound::Included(v)),
                _ => {}
            }
        }
        cons
    }

    fn tighten_lo(&mut self, col: usize, b: Bound<Value>) {
        match self.lo.get(&col) {
            Some(cur)
                if bound_val(cur) > bound_val(&b)
                    || (bound_val(cur) == bound_val(&b) && matches!(cur, Bound::Excluded(_))) => {}
            _ => {
                self.lo.insert(col, b);
            }
        }
    }

    fn tighten_hi(&mut self, col: usize, b: Bound<Value>) {
        match self.hi.get(&col) {
            Some(cur)
                if bound_val(cur) < bound_val(&b)
                    || (bound_val(cur) == bound_val(&b) && matches!(cur, Bound::Excluded(_))) => {}
            _ => {
                self.hi.insert(col, b);
            }
        }
    }

    fn eq_key(&self, col: usize) -> Option<&Value> {
        self.eq.iter().find(|(ec, _)| *ec == col).map(|(_, v)| v)
    }
}

/// Index-aware point detection for a lowered single-table predicate
/// (position 0 = `table`): the **first** `Eq` conjunct in predicate order
/// whose column carries a single-column named index — preferring a
/// hash-served conjunct when several conjuncts are indexed — else a
/// composite probe of the first multi-column index whose every column is
/// pinned. Deterministic by construction; `None` means no point path
/// exists (the statement scans or range-probes).
pub fn point_probe(
    db: &dyn TableProvider,
    table: &str,
    pred: &Expr,
) -> Result<Option<IndexProbe>, LowerError> {
    let t = db.table(table)?;
    let named = t.named_indexes();
    if named.is_empty() {
        return Ok(None);
    }
    let cons = ColConstraints::collect(pred);
    let mut first: Option<IndexProbe> = None;
    for (col, key) in &cons.eq {
        if let Some(ix) = named.on_column(*col) {
            let probe = IndexProbe {
                index: ix.name().to_string(),
                columns: vec![*col],
                key: key.clone(),
            };
            if ix.kind() == IndexKind::Hash {
                return Ok(Some(probe));
            }
            if first.is_none() {
                first = Some(probe);
            }
        }
    }
    if first.is_some() {
        return Ok(first);
    }
    for ix in named.iter() {
        if ix.columns().len() < 2 {
            continue;
        }
        let keys: Option<Vec<Value>> = ix
            .columns()
            .iter()
            .map(|c| cons.eq_key(*c).cloned())
            .collect();
        if let Some(keys) = keys {
            return Ok(Some(IndexProbe {
                index: ix.name().to_string(),
                columns: ix.columns().to_vec(),
                key: Value::Tuple(keys),
            }));
        }
    }
    Ok(None)
}

/// The best range candidate `ix` offers for `cons`: the longest run of
/// equality-pinned leading columns becomes the prefix, the next column
/// takes whatever bounds the predicate pins. `None` when the index is
/// not a btree, is fully pinned (that's a point), or is unconstrained.
fn range_candidate(ix: &youtopia_storage::Index, cons: &ColConstraints) -> Option<RangeProbe> {
    if ix.kind() != IndexKind::Btree {
        return None;
    }
    let cols = ix.columns();
    let mut prefix = Vec::new();
    for c in cols {
        match cons.eq_key(*c) {
            Some(v) => prefix.push(v.clone()),
            None => break,
        }
    }
    if prefix.len() == cols.len() {
        return None; // fully pinned — the point path owns this
    }
    let col = cols[prefix.len()];
    let lo = cons.lo.get(&col).cloned().unwrap_or(Bound::Unbounded);
    let hi = cons.hi.get(&col).cloned().unwrap_or(Bound::Unbounded);
    if prefix.is_empty() && lo == Bound::Unbounded && hi == Bound::Unbounded {
        return None; // unconstrained — a scan in index clothing
    }
    Some(RangeProbe {
        index: ix.name().to_string(),
        columns: cols.to_vec(),
        prefix,
        lo,
        hi,
    })
}

/// Choose how a single-table statement reads `table`: point probe, range
/// probe, or scan — gated by selectivity, not by the mere existence of a
/// probe. A candidate is taken only when its estimated match count is at
/// most half the table (`estimate <= len / 2`); point estimates are the
/// probed posting length, range estimates walk the index with an early
/// exit at the budget. Residual conjuncts are re-applied to every
/// candidate row, so over-approximation is safe.
pub fn access_plan(
    db: &dyn TableProvider,
    table: &str,
    pred: &Expr,
) -> Result<AccessPlan, LowerError> {
    let t = db.table(table)?;
    let named = t.named_indexes();
    if named.is_empty() {
        return Ok(AccessPlan::Scan);
    }
    let budget = t.len() / 2;
    if let Some(p) = point_probe(db, table, pred)? {
        let est = named.get(&p.index).map_or(0, |ix| ix.probe(&p.key).len());
        if est <= budget {
            return Ok(AccessPlan::Point(p));
        }
    }
    let cons = ColConstraints::collect(pred);
    let mut best: Option<(usize, RangeProbe)> = None;
    for ix in named.iter() {
        let Some(rp) = range_candidate(ix, &cons) else {
            continue;
        };
        let Some(est) = ix.estimate_range(&rp.prefix, rp.lo_ref(), rp.hi_ref(), budget + 1) else {
            continue;
        };
        if est <= budget && best.as_ref().is_none_or(|(b, _)| est < *b) {
            best = Some((est, rp));
        }
    }
    Ok(match best {
        Some((_, rp)) => AccessPlan::Range(rp),
        None => AccessPlan::Scan,
    })
}

/// Evaluate a scalar that must not reference any column (INSERT VALUES,
/// SET @var = …).
pub fn lower_const_scalar(s: &Scalar, vars: &VarEnv) -> Result<Value, LowerError> {
    match s {
        Scalar::Lit(v) => Ok(v.clone()),
        Scalar::HostVar(n) => vars
            .get(n)
            .cloned()
            .ok_or_else(|| LowerError::UnboundVariable(n.clone())),
        Scalar::Col(c) => Err(LowerError::UnknownColumn(c.to_string())),
        Scalar::Add(l, r) => {
            let (l, r) = (lower_const_scalar(l, vars)?, lower_const_scalar(r, vars)?);
            l.add(&r)
                .ok_or(LowerError::Unsupported("invalid arithmetic operands"))
        }
        Scalar::Sub(l, r) => {
            let (l, r) = (lower_const_scalar(l, vars)?, lower_const_scalar(r, vars)?);
            l.sub(&r)
                .ok_or(LowerError::Unsupported("invalid arithmetic operands"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Statement;
    use crate::parser::parse_statement;
    use youtopia_storage::{eval_spj, Database, Schema, ValueType};

    fn travel_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Flights",
            Schema::of(&[
                ("fno", ValueType::Int),
                ("fdate", ValueType::Date),
                ("dest", ValueType::Str),
            ]),
        )
        .unwrap();
        db.create_table(
            "Airlines",
            Schema::of(&[("fno", ValueType::Int), ("airline", ValueType::Str)]),
        )
        .unwrap();
        db.create_table(
            "User",
            Schema::of(&[("uid", ValueType::Int), ("hometown", ValueType::Str)]),
        )
        .unwrap();
        for (fno, d, dest) in [(122, 100, "LA"), (123, 101, "LA"), (235, 102, "Paris")] {
            db.insert(
                "Flights",
                vec![Value::Int(fno), Value::Date(d), Value::str(dest)],
            )
            .unwrap();
        }
        for (fno, a) in [(122, "United"), (123, "Delta"), (235, "Delta")] {
            db.insert("Airlines", vec![Value::Int(fno), Value::str(a)])
                .unwrap();
        }
        db.insert("User", vec![Value::Int(36513), Value::str("FAT")])
            .unwrap();
        db
    }

    fn select(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn lower_and_run_simple_select() {
        let db = travel_db();
        let sel = select("SELECT fno FROM Flights WHERE dest = 'LA'");
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        assert_eq!(lowered.names, vec!["fno"]);
        let out = eval_spj(&db, &lowered.query).unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn lower_with_host_vars() {
        let db = travel_db();
        let sel = select("SELECT hometown FROM User WHERE uid = @uid");
        let mut vars = VarEnv::new();
        vars.insert("uid".into(), Value::Int(36513));
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        let out = eval_spj(&db, &lowered.query).unwrap();
        assert_eq!(out.rows, vec![vec![Value::str("FAT")]]);
        // Unbound variable errors.
        assert!(matches!(
            lower_select(&db, &sel, &VarEnv::new()),
            Err(LowerError::UnboundVariable(v)) if v == "uid"
        ));
    }

    #[test]
    fn bare_hostvar_items_produce_bindings() {
        let db = travel_db();
        let sel = select("SELECT @uid, @hometown FROM User WHERE uid = 36513");
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        assert_eq!(
            lowered.bindings,
            vec![(0, "uid".to_string()), (1, "hometown".to_string())]
        );
        let out = eval_spj(&db, &lowered.query).unwrap();
        assert_eq!(out.rows[0][1], Value::str("FAT"));
    }

    #[test]
    fn in_subquery_flattens_to_join() {
        let db = travel_db();
        let sel = select(
            "SELECT fno FROM Flights WHERE fno IN \
             (SELECT fno FROM Airlines WHERE airline = 'Delta')",
        );
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        assert_eq!(lowered.query.tables, vec!["Flights", "Airlines"]);
        let out = eval_spj(&db, &lowered.query).unwrap();
        let fnos: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(fnos, vec![123, 235]);
    }

    #[test]
    fn tuple_in_subquery() {
        let db = travel_db();
        let sel = select(
            "SELECT fno, fdate FROM Flights WHERE (fno, fdate) IN \
             (SELECT fno, fdate FROM Flights WHERE dest = 'Paris')",
        );
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        let out = eval_spj(&db, &lowered.query).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(235), Value::Date(102)]]);
    }

    #[test]
    fn select_star_expands() {
        let db = travel_db();
        let sel = select("SELECT * FROM Airlines WHERE airline = 'United'");
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        assert_eq!(lowered.names, vec!["fno", "airline"]);
        let out = eval_spj(&db, &lowered.query).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(122), Value::str("United")]]);
    }

    #[test]
    fn ambiguous_and_unknown_columns_detected() {
        let db = travel_db();
        // Unqualified ambiguous names resolve to the first FROM entry
        // (dialect choice — the paper's §2 query depends on it).
        let sel = select("SELECT fno FROM Flights, Airlines WHERE airline = 'United'");
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        assert_eq!(
            lowered.query.projection[0],
            youtopia_storage::Expr::Col { tbl: 0, col: 0 },
            "bare fno binds to Flights (first table)"
        );
        let sel = select("SELECT zzz FROM Flights");
        assert!(matches!(
            lower_select(&db, &sel, &VarEnv::new()),
            Err(LowerError::UnknownColumn(_))
        ));
        let sel = select("SELECT x FROM Nope");
        assert!(matches!(
            lower_select(&db, &sel, &VarEnv::new()),
            Err(LowerError::UnknownTable(_))
        ));
    }

    #[test]
    fn qualified_aliases_resolve() {
        let db = travel_db();
        let sel = select(
            "SELECT F.fno FROM Flights F, Airlines A \
             WHERE F.fno = A.fno AND A.airline = 'United'",
        );
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        let out = eval_spj(&db, &lowered.query).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(122)]]);
    }

    #[test]
    fn answer_in_classical_select_rejected() {
        let db = travel_db();
        let sel = select("SELECT fno FROM Flights WHERE (fno) IN ANSWER R");
        assert!(matches!(
            lower_select(&db, &sel, &VarEnv::new()),
            Err(LowerError::Unsupported(_))
        ));
    }

    #[test]
    fn table_cond_lowering_for_update_delete() {
        let db = travel_db();
        let Statement::Delete {
            table,
            where_clause,
        } = parse_statement("DELETE FROM Flights WHERE fno = 122").unwrap()
        else {
            panic!()
        };
        let expr = lower_table_cond(&db, &table, &where_clause, &VarEnv::new()).unwrap();
        let row = vec![Value::Int(122), Value::Date(100), Value::str("LA")];
        assert!(expr.eval_bool(&[&row]).unwrap());
    }

    #[test]
    fn const_scalar_evaluation() {
        let mut vars = VarEnv::new();
        vars.insert("ArrivalDay".into(), Value::Date(100));
        let Statement::SetVar { expr, .. } =
            parse_statement("SET @StayLength = '1970-04-14' - @ArrivalDay").unwrap()
        else {
            panic!()
        };
        // 1970-04-14 is day 103.
        assert_eq!(lower_const_scalar(&expr, &vars).unwrap(), Value::Int(3));
        // Column refs are illegal in constant contexts.
        let bad = Scalar::Col(ColumnRef::bare("x"));
        assert!(lower_const_scalar(&bad, &vars).is_err());
    }

    #[test]
    fn point_probe_detection() {
        let mut db = travel_db();
        db.table_mut("User")
            .unwrap()
            .create_named_index("user_uid", &["uid"], youtopia_storage::IndexKind::Hash)
            .unwrap();
        let mut vars = VarEnv::new();
        vars.insert("uid".into(), Value::Int(36513));
        // Eq on the indexed column with a host-variable key → probe.
        let sel = select("SELECT hometown FROM User WHERE uid = @uid");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        let probe = point_probe(&db, "User", &lowered.query.predicate)
            .unwrap()
            .unwrap();
        assert_eq!(probe.index, "user_uid");
        assert_eq!(probe.columns, vec![0]);
        assert_eq!(probe.key, Value::Int(36513));
        // Eq on an unindexed column → scan.
        let sel = select("SELECT uid FROM User WHERE hometown = 'FAT'");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        assert!(point_probe(&db, "User", &lowered.query.predicate)
            .unwrap()
            .is_none());
        // Range predicate alone → no point probe.
        let sel = select("SELECT uid FROM User WHERE uid > 5");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        assert!(point_probe(&db, "User", &lowered.query.predicate)
            .unwrap()
            .is_none());
        // Unindexed table short-circuits.
        let sel = select("SELECT fno FROM Flights WHERE fno = 122");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        assert!(point_probe(&db, "Flights", &lowered.query.predicate)
            .unwrap()
            .is_none());
    }

    #[test]
    fn point_probe_is_deterministic_across_conjunct_orders() {
        use youtopia_storage::IndexKind;
        // Two single-column indexes on Flights, both btree: the first Eq
        // conjunct in predicate order decides.
        let mut db = travel_db();
        {
            let t = db.table_mut("Flights").unwrap();
            t.create_named_index("f_fno", &["fno"], IndexKind::Btree)
                .unwrap();
            t.create_named_index("f_dest", &["dest"], IndexKind::Btree)
                .unwrap();
        }
        let vars = VarEnv::new();
        let sel = select("SELECT fno FROM Flights WHERE fno = 122 AND dest = 'LA'");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        let p = point_probe(&db, "Flights", &lowered.query.predicate)
            .unwrap()
            .unwrap();
        assert_eq!(p.index, "f_fno", "first conjunct wins");
        let sel = select("SELECT fno FROM Flights WHERE dest = 'LA' AND fno = 122");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        let p = point_probe(&db, "Flights", &lowered.query.predicate)
            .unwrap()
            .unwrap();
        assert_eq!(p.index, "f_dest", "first conjunct wins in the other order");
        // When one of the indexed conjuncts is hash-served, it wins in
        // BOTH conjunct orders — the plan no longer depends on predicate
        // phrasing.
        let mut db = travel_db();
        {
            let t = db.table_mut("User").unwrap();
            t.create_named_index("u_uid", &["uid"], IndexKind::Hash)
                .unwrap();
            t.create_named_index("u_home", &["hometown"], IndexKind::Btree)
                .unwrap();
        }
        for sql in [
            "SELECT uid FROM User WHERE uid = 36513 AND hometown = 'FAT'",
            "SELECT uid FROM User WHERE hometown = 'FAT' AND uid = 36513",
        ] {
            let lowered = lower_select(&db, &select(sql), &vars).unwrap();
            let p = point_probe(&db, "User", &lowered.query.predicate)
                .unwrap()
                .unwrap();
            assert_eq!(p.index, "u_uid", "hash preferred for {sql}");
        }
    }

    #[test]
    fn composite_point_probe_builds_tuple_key() {
        use youtopia_storage::IndexKind;
        let mut db = travel_db();
        db.table_mut("Flights")
            .unwrap()
            .create_named_index("f_df", &["dest", "fdate"], IndexKind::Btree)
            .unwrap();
        let vars = VarEnv::new();
        let sel = select("SELECT fno FROM Flights WHERE fdate = '1970-04-12' AND dest = 'LA'");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        let p = point_probe(&db, "Flights", &lowered.query.predicate)
            .unwrap()
            .unwrap();
        assert_eq!(p.index, "f_df");
        assert_eq!(p.columns, vec![2, 1]);
        assert_eq!(
            p.key,
            Value::Tuple(vec![Value::str("LA"), Value::Date(101)])
        );
        // Only one column pinned → not a point; becomes a prefix range
        // (dest = 'Paris' matches 1 of 3 rows, inside the cost gate).
        let sel = select("SELECT fno FROM Flights WHERE dest = 'Paris'");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        assert!(point_probe(&db, "Flights", &lowered.query.predicate)
            .unwrap()
            .is_none());
        let plan = access_plan(&db, "Flights", &lowered.query.predicate).unwrap();
        let AccessPlan::Range(rp) = plan else {
            panic!("expected range plan, got {plan:?}")
        };
        assert_eq!(rp.index, "f_df");
        assert_eq!(rp.prefix, vec![Value::str("Paris")]);
        assert_eq!(rp.lo, Bound::Unbounded);
        assert_eq!(rp.hi, Bound::Unbounded);
    }

    #[test]
    fn range_plans_and_cost_gate() {
        use youtopia_storage::IndexKind;
        let mut db = travel_db();
        db.table_mut("Flights")
            .unwrap()
            .create_named_index("f_date", &["fdate"], IndexKind::Btree)
            .unwrap();
        let vars = VarEnv::new();
        // BETWEEN lowers to a closed range on the btree column; bounds from
        // both desugared conjuncts land in one RangeProbe.
        let sel =
            select("SELECT fno FROM Flights WHERE fdate BETWEEN '1970-04-11' AND '1970-04-11'");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        let plan = access_plan(&db, "Flights", &lowered.query.predicate).unwrap();
        let AccessPlan::Range(rp) = plan else {
            panic!("expected range plan")
        };
        assert_eq!(rp.index, "f_date");
        assert!(rp.prefix.is_empty());
        assert_eq!(rp.lo, Bound::Included(Value::Date(100)));
        assert_eq!(rp.hi, Bound::Included(Value::Date(100)));
        // Strict bounds tighten closed ones (matches only Date(101)).
        let sel = select("SELECT fno FROM Flights WHERE fdate >= '1970-04-11' AND fdate > '1970-04-11' AND fdate < '1970-04-13'");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        let AccessPlan::Range(rp) = access_plan(&db, "Flights", &lowered.query.predicate).unwrap()
        else {
            panic!("expected range plan")
        };
        assert_eq!(rp.lo, Bound::Excluded(Value::Date(100)));
        assert_eq!(rp.hi, Bound::Excluded(Value::Date(102)));
        // The cost gate rejects a range matching more than half the table:
        // all three flights fall in a wide interval → scan.
        let sel =
            select("SELECT fno FROM Flights WHERE fdate BETWEEN '1970-01-01' AND '1975-01-01'");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        assert_eq!(
            access_plan(&db, "Flights", &lowered.query.predicate).unwrap(),
            AccessPlan::Scan
        );
        // An unindexed predicate scans.
        let sel = select("SELECT fno FROM Flights WHERE fno > 5");
        let lowered = lower_select(&db, &sel, &vars).unwrap();
        assert_eq!(
            access_plan(&db, "Flights", &lowered.query.predicate).unwrap(),
            AccessPlan::Scan
        );
    }

    #[test]
    fn or_conditions_lower_without_flattening() {
        let db = travel_db();
        let sel = select("SELECT fno FROM Flights WHERE dest = 'LA' OR dest = 'Paris'");
        let lowered = lower_select(&db, &sel, &VarEnv::new()).unwrap();
        let out = eval_spj(&db, &lowered.query).unwrap();
        assert_eq!(out.rows.len(), 3);
        // IN inside OR is rejected (would change semantics if flattened).
        let sel =
            select("SELECT fno FROM Flights WHERE dest = 'X' OR fno IN (SELECT fno FROM Airlines)");
        assert!(matches!(
            lower_select(&db, &sel, &VarEnv::new()),
            Err(LowerError::Unsupported(_))
        ));
    }
}
