//! Abstract syntax for the paper's dialect: classical statements plus the
//! entangled `SELECT … INTO ANSWER … CHOOSE k` form of §2 and the
//! transaction brackets of §3.1.

use std::fmt;
use std::time::Duration;
use youtopia_storage::{CmpOp, IndexKind, Value, ValueType};

/// A possibly-qualified column reference (`dest` or `F.dest`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    pub qualifier: Option<String>,
    pub column: String,
}

impl ColumnRef {
    pub fn bare(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: None,
            column: column.into(),
        }
    }

    pub fn qualified(q: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            qualifier: Some(q.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// Scalar expressions (name-based, unresolved).
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    Lit(Value),
    Col(ColumnRef),
    /// `@name` host variable; bound by the transaction's environment.
    HostVar(String),
    Add(Box<Scalar>, Box<Scalar>),
    Sub(Box<Scalar>, Box<Scalar>),
}

impl Scalar {
    pub fn lit(v: impl Into<Value>) -> Scalar {
        Scalar::Lit(v.into())
    }

    /// All host variables mentioned.
    pub fn host_vars(&self, out: &mut Vec<String>) {
        match self {
            Scalar::HostVar(n) => out.push(n.clone()),
            Scalar::Add(l, r) | Scalar::Sub(l, r) => {
                l.host_vars(out);
                r.host_vars(out);
            }
            _ => {}
        }
    }
}

/// Boolean conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    True,
    Cmp {
        op: CmpOp,
        lhs: Scalar,
        rhs: Scalar,
    },
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Not(Box<Cond>),
    /// `(a, b) IN (SELECT …)` — tuple membership in a subquery.
    InSelect {
        tuple: Vec<Scalar>,
        select: Box<Select>,
    },
    /// `(a, b) IN ANSWER R` — the entanglement postcondition (§2).
    InAnswer {
        tuple: Vec<Scalar>,
        answer: String,
    },
}

impl Cond {
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::True, x) | (x, Cond::True) => x,
            (a, b) => Cond::And(Box::new(a), Box::new(b)),
        }
    }

    /// Split into top-level conjuncts.
    pub fn conjuncts(&self) -> Vec<&Cond> {
        let mut out = Vec::new();
        fn walk<'a>(c: &'a Cond, out: &mut Vec<&'a Cond>) {
            match c {
                Cond::And(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                Cond::True => {}
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Append every base-table name referenced by IN-subqueries anywhere
    /// in this condition (recursively).
    pub fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            Cond::And(l, r) | Cond::Or(l, r) => {
                l.collect_tables(out);
                r.collect_tables(out);
            }
            Cond::Not(c) => c.collect_tables(out),
            Cond::InSelect { select, .. } => select.collect_tables(out),
            Cond::True | Cond::Cmp { .. } | Cond::InAnswer { .. } => {}
        }
    }

    /// Does any part of this condition reference an ANSWER relation?
    pub fn mentions_answer(&self) -> bool {
        match self {
            Cond::InAnswer { .. } => true,
            Cond::And(l, r) | Cond::Or(l, r) => l.mentions_answer() || r.mentions_answer(),
            Cond::Not(c) => c.mentions_answer(),
            Cond::InSelect { select, .. } => select.where_clause.mentions_answer(),
            _ => false,
        }
    }
}

/// One item of a SELECT list. `bind` carries the `AS @var` host-variable
/// binding of §3.1 ("the programmer may directly bind the values returned
/// by an entangled query to host variables").
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Scalar,
    pub alias: Option<String>,
    pub bind: Option<String>,
}

impl SelectItem {
    pub fn plain(expr: Scalar) -> SelectItem {
        SelectItem {
            expr,
            alias: None,
            bind: None,
        }
    }
}

/// A table reference with optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    pub table: String,
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table is known by in the query.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A classical SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub items: Vec<SelectItem>,
    /// `SELECT *`.
    pub star: bool,
    pub from: Vec<TableRef>,
    pub where_clause: Cond,
    pub distinct: bool,
    pub limit: Option<u64>,
}

impl Select {
    /// Every base-table name this SELECT references: the FROM list plus
    /// IN-subqueries, recursively. This is the latch footprint a statement
    /// pins (read guards on per-table handles) before lowering against a
    /// catalog snapshot; duplicates are kept (the pinning layer dedups).
    pub fn collect_tables(&self, out: &mut Vec<String>) {
        for tr in &self.from {
            out.push(tr.table.clone());
        }
        self.where_clause.collect_tables(out);
    }
}

/// An entangled query (§2):
/// `SELECT … INTO ANSWER R [, ANSWER S] WHERE … CHOOSE k`.
#[derive(Debug, Clone, PartialEq)]
pub struct EntangledSelect {
    pub items: Vec<SelectItem>,
    /// Answer relations the head contributes to. Nearly always one; when
    /// several are listed the same head tuple is contributed to each.
    pub into: Vec<String>,
    pub where_clause: Cond,
    /// `CHOOSE k` — how many coordinated answers to produce (the paper
    /// always uses 1).
    pub choose: u64,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<(String, ValueType)>,
    },
    /// `CREATE INDEX name ON table (col [, col …]) [USING HASH|BTREE]`.
    /// Named secondary index; multi-column lists build composite keys.
    /// `USING` defaults to `HASH`.
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
        kind: IndexKind,
    },
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        values: Vec<Scalar>,
    },
    Select(Select),
    Update {
        table: String,
        sets: Vec<(String, Scalar)>,
        where_clause: Cond,
    },
    Delete {
        table: String,
        where_clause: Cond,
    },
    SetVar {
        name: String,
        expr: Scalar,
    },
    Begin {
        timeout: Option<Duration>,
    },
    Commit,
    Rollback,
    Entangled(EntangledSelect),
}

impl Statement {
    /// Is this an entangled query?
    pub fn is_entangled(&self) -> bool {
        matches!(self, Statement::Entangled(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_and_identity() {
        let c = Cond::True.and(Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Scalar::lit(1i64),
            rhs: Scalar::lit(1i64),
        });
        assert!(matches!(c, Cond::Cmp { .. }));
        let c2 = c.clone().and(Cond::True);
        assert_eq!(c, c2);
    }

    #[test]
    fn conjunct_split() {
        let a = Cond::Cmp {
            op: CmpOp::Eq,
            lhs: Scalar::lit(1i64),
            rhs: Scalar::lit(1i64),
        };
        let b = Cond::Cmp {
            op: CmpOp::Lt,
            lhs: Scalar::lit(1i64),
            rhs: Scalar::lit(2i64),
        };
        let c = a.clone().and(b.clone());
        assert_eq!(c.conjuncts().len(), 2);
        assert_eq!(Cond::True.conjuncts().len(), 0);
    }

    #[test]
    fn mentions_answer_traverses() {
        let inner = Cond::InAnswer {
            tuple: vec![Scalar::lit(1i64)],
            answer: "R".into(),
        };
        assert!(inner.mentions_answer());
        let nested = Cond::Not(Box::new(Cond::Or(Box::new(Cond::True), Box::new(inner))));
        assert!(nested.mentions_answer());
        assert!(!Cond::True.mentions_answer());
    }

    #[test]
    fn host_var_collection() {
        let s = Scalar::Sub(
            Box::new(Scalar::lit(Value::Date(10))),
            Box::new(Scalar::HostVar("ArrivalDay".into())),
        );
        let mut vars = Vec::new();
        s.host_vars(&mut vars);
        assert_eq!(vars, vec!["ArrivalDay"]);
    }

    #[test]
    fn table_ref_binding_name() {
        let t = TableRef {
            table: "User".into(),
            alias: Some("u1".into()),
        };
        assert_eq!(t.binding_name(), "u1");
        let t = TableRef {
            table: "User".into(),
            alias: None,
        };
        assert_eq!(t.binding_name(), "User");
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::bare("dest").to_string(), "dest");
        assert_eq!(ColumnRef::qualified("F", "dest").to_string(), "F.dest");
    }
}
