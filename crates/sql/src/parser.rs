//! Recursive-descent parser for the dialect.
//!
//! Grammar highlights, straight from the paper:
//!
//! ```text
//! entangled := SELECT item, …  INTO ANSWER R [, ANSWER S]
//!              [WHERE cond]  CHOOSE k
//! cond      := conjunction/disjunction of comparisons,
//!              (a, b, …) IN (SELECT …)        -- grounding subquery
//!              (a, b, …) IN ANSWER R          -- postcondition
//! txn       := BEGIN TRANSACTION [WITH TIMEOUT n unit] ; … ; COMMIT
//! ```
//!
//! Tuple-IN accepts both parenthesized and bare tuples (`fno, fdate IN
//! (SELECT …)` appears unparenthesized in the paper's §2 examples).

use crate::ast::*;
use crate::token::{lex, LexError, Token};
use std::fmt;
use std::time::Duration;
use youtopia_storage::{CmpOp, IndexKind, Value, ValueType};

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    Lex(LexError),
    Unexpected {
        at: usize,
        found: String,
        expected: String,
    },
    Eof {
        expected: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                at,
                found,
                expected,
            } => {
                write!(
                    f,
                    "parse error at token {at}: found `{found}`, expected {expected}"
                )
            }
            ParseError::Eof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parse one statement (optionally `;`-terminated).
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let st = p.statement()?;
    p.eat(&Token::Semi);
    p.expect_eof()?;
    Ok(st)
}

/// Parse a `;`-separated script (e.g. an entire entangled transaction,
/// Figure 2).
pub fn parse_script(input: &str) -> Result<Vec<Statement>, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat(&Token::Semi) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(kw))
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&t.to_string()))
        }
    }

    fn err(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::Unexpected {
                at: self.pos,
                found: t.to_string(),
                expected: expected.to_string(),
            },
            None => ParseError::Eof {
                expected: expected.to_string(),
            },
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(ParseError::Unexpected {
                at: self.pos,
                found: self.peek().expect("not eof").to_string(),
                expected: "end of input".into(),
            })
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("identifier")),
        }
    }

    fn int_lit(&mut self) -> Result<i64, ParseError> {
        match self.peek() {
            Some(Token::Lit(Value::Int(n))) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.err("integer literal")),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.is_kw("CREATE") {
            self.create()
        } else if self.is_kw("INSERT") {
            self.insert()
        } else if self.is_kw("SELECT") {
            self.select_or_entangled()
        } else if self.is_kw("UPDATE") {
            self.update()
        } else if self.is_kw("DELETE") {
            self.delete()
        } else if self.is_kw("SET") {
            self.set_var()
        } else if self.is_kw("BEGIN") {
            self.begin()
        } else if self.eat_kw("COMMIT") {
            Ok(Statement::Commit)
        } else if self.eat_kw("ROLLBACK") {
            Ok(Statement::Rollback)
        } else {
            Err(self.err("statement"))
        }
    }

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("CREATE")?;
        if self.is_kw("INDEX") {
            return self.create_index();
        }
        self.create_table()
    }

    /// `CREATE INDEX name ON table (col [, col …]) [USING HASH|BTREE]`.
    fn create_index(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("INDEX")?;
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = vec![self.ident()?];
        while self.eat(&Token::Comma) {
            columns.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        let kind = if self.eat_kw("USING") {
            let k = self.ident()?;
            match k.to_ascii_uppercase().as_str() {
                "HASH" => IndexKind::Hash,
                "BTREE" => IndexKind::Btree,
                _ => return Err(self.err("HASH or BTREE")),
            }
        } else {
            IndexKind::Hash
        };
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
            kind,
        })
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.type_name()?;
            columns.push((col, ty));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn type_name(&mut self) -> Result<ValueType, ParseError> {
        let t = self.ident()?;
        let up = t.to_ascii_uppercase();
        // VARCHAR(40)-style arity is accepted and ignored.
        let ty = match up.as_str() {
            "INT" | "INTEGER" | "BIGINT" => ValueType::Int,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => ValueType::Str,
            "DATE" => ValueType::Date,
            "BOOL" | "BOOLEAN" => ValueType::Bool,
            _ => return Err(self.err("type name")),
        };
        if self.eat(&Token::LParen) {
            self.int_lit()?;
            self.expect(&Token::RParen)?;
        }
        Ok(ty)
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = None;
        if self.eat(&Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            columns = Some(cols);
        }
        self.expect_kw("VALUES")?;
        self.expect(&Token::LParen)?;
        let mut values = Vec::new();
        loop {
            values.push(self.scalar()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::Insert {
            table,
            columns,
            values,
        })
    }

    fn update(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            sets.push((col, self.scalar()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            self.cond()?
        } else {
            Cond::True
        };
        Ok(Statement::Update {
            table,
            sets,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            self.cond()?
        } else {
            Cond::True
        };
        Ok(Statement::Delete {
            table,
            where_clause,
        })
    }

    fn set_var(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("SET")?;
        let name = match self.next() {
            Some(Token::HostVar(n)) => n,
            _ => return Err(self.err("@variable")),
        };
        self.expect(&Token::Eq)?;
        Ok(Statement::SetVar {
            name,
            expr: self.scalar()?,
        })
    }

    fn begin(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("BEGIN")?;
        self.eat_kw("TRANSACTION");
        let mut timeout = None;
        if self.eat_kw("WITH") {
            self.expect_kw("TIMEOUT")?;
            let n = self.int_lit()? as u64;
            let unit = self.ident()?;
            let secs = match unit.to_ascii_uppercase().as_str() {
                "MS" | "MILLISECOND" | "MILLISECONDS" => {
                    timeout = Some(Duration::from_millis(n));
                    None
                }
                "SECOND" | "SECONDS" => Some(n),
                "MINUTE" | "MINUTES" => Some(n * 60),
                "HOUR" | "HOURS" => Some(n * 3600),
                "DAY" | "DAYS" => Some(n * 86400),
                _ => return Err(self.err("time unit")),
            };
            if let Some(s) = secs {
                timeout = Some(Duration::from_secs(s));
            }
        }
        Ok(Statement::Begin { timeout })
    }

    fn select_or_entangled(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        let mut star = false;
        let mut items = Vec::new();
        if self.eat(&Token::Star) {
            star = true;
        } else {
            loop {
                items.push(self.select_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("INTO") {
            // Entangled form.
            self.expect_kw("ANSWER")?;
            let mut into = vec![self.ident()?];
            while self.eat(&Token::Comma) {
                self.expect_kw("ANSWER")?;
                into.push(self.ident()?);
            }
            let where_clause = if self.eat_kw("WHERE") {
                self.cond()?
            } else {
                Cond::True
            };
            self.expect_kw("CHOOSE")?;
            let choose = self.int_lit()? as u64;
            return Ok(Statement::Entangled(EntangledSelect {
                items,
                into,
                where_clause,
                choose,
            }));
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            self.cond()?
        } else {
            Cond::True
        };
        let limit = if self.eat_kw("LIMIT") {
            Some(self.int_lit()? as u64)
        } else {
            None
        };
        // In a *classical* select, a bare `@var` item (Appendix D:
        // `SELECT @uid, @hometown FROM User WHERE uid=36513`) selects the
        // like-named column and binds it to the variable. In entangled
        // selects (handled above) a bare `@var` stays a host-variable
        // value, as in Figure 2's hotel query.
        let items = items
            .into_iter()
            .map(|mut item| {
                if item.bind.is_none() && item.alias.is_none() {
                    if let Scalar::HostVar(n) = &item.expr {
                        let n = n.clone();
                        item.expr = Scalar::Col(ColumnRef::bare(n.clone()));
                        item.bind = Some(n);
                    }
                }
                item
            })
            .collect();
        Ok(Statement::Select(Select {
            items,
            star,
            from,
            where_clause,
            distinct,
            limit,
        }))
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        let expr = self.scalar()?;
        let mut alias = None;
        let mut bind = None;
        if self.eat_kw("AS") {
            match self.next() {
                Some(Token::HostVar(v)) => bind = Some(v),
                Some(Token::Ident(a)) => alias = Some(a),
                _ => return Err(self.err("alias or @variable after AS")),
            }
        }
        Ok(SelectItem { expr, alias, bind })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        let mut alias = None;
        if self.eat_kw("AS") {
            alias = Some(self.ident()?);
        } else if let Some(Token::Ident(s)) = self.peek() {
            // Bare alias (`Flights F`) — but keywords terminate the list.
            const STOPPERS: [&str; 8] = [
                "WHERE", "LIMIT", "CHOOSE", "ORDER", "GROUP", "AND", "OR", "ON",
            ];
            if !STOPPERS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                alias = Some(self.ident()?);
            }
        }
        Ok(TableRef { table, alias })
    }

    // ---- conditions ----

    fn cond(&mut self) -> Result<Cond, ParseError> {
        self.or_cond()
    }

    fn or_cond(&mut self) -> Result<Cond, ParseError> {
        let mut left = self.and_cond()?;
        while self.eat_kw("OR") {
            let right = self.and_cond()?;
            left = Cond::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_cond(&mut self) -> Result<Cond, ParseError> {
        let mut left = self.not_cond()?;
        while self.eat_kw("AND") {
            let right = self.not_cond()?;
            left = Cond::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_cond(&mut self) -> Result<Cond, ParseError> {
        if self.eat_kw("NOT") {
            return Ok(Cond::Not(Box::new(self.not_cond()?)));
        }
        self.primary_cond()
    }

    /// Primary conditions need one disambiguation: a leading `(` may open a
    /// parenthesized condition or a tuple for `IN`. We try the tuple first
    /// and backtrack.
    fn primary_cond(&mut self) -> Result<Cond, ParseError> {
        if self.peek() == Some(&Token::LParen) {
            let save = self.pos;
            if let Ok(cond) = self.paren_tuple_in() {
                return Ok(cond);
            }
            self.pos = save;
            self.expect(&Token::LParen)?;
            let c = self.cond()?;
            self.expect(&Token::RParen)?;
            return Ok(c);
        }
        // Bare scalar list: `fno, fdate IN (…)` or single comparison.
        let mut tuple = vec![self.scalar()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            tuple.push(self.scalar()?);
        }
        if self.is_kw("IN") {
            self.pos += 1;
            return self.in_target(tuple);
        }
        if tuple.len() != 1 {
            return Err(self.err("IN after tuple"));
        }
        let lhs = tuple.pop().expect("len 1");
        if self.eat_kw("BETWEEN") {
            // Desugar `x BETWEEN lo AND hi` into `x >= lo AND x <= hi`;
            // the planner recognizes the pair as one closed range.
            let lo = self.scalar()?;
            self.expect_kw("AND")?;
            let hi = self.scalar()?;
            return Ok(Cond::And(
                Box::new(Cond::Cmp {
                    op: CmpOp::Ge,
                    lhs: lhs.clone(),
                    rhs: lo,
                }),
                Box::new(Cond::Cmp {
                    op: CmpOp::Le,
                    lhs,
                    rhs: hi,
                }),
            ));
        }
        let op = self.cmp_op()?;
        let rhs = self.scalar()?;
        Ok(Cond::Cmp { op, lhs, rhs })
    }

    fn paren_tuple_in(&mut self) -> Result<Cond, ParseError> {
        self.expect(&Token::LParen)?;
        let mut tuple = vec![self.scalar()?];
        while self.eat(&Token::Comma) {
            tuple.push(self.scalar()?);
        }
        self.expect(&Token::RParen)?;
        if !self.eat_kw("IN") {
            return Err(self.err("IN"));
        }
        self.in_target(tuple)
    }

    fn in_target(&mut self, tuple: Vec<Scalar>) -> Result<Cond, ParseError> {
        if self.eat_kw("ANSWER") {
            let answer = self.ident()?;
            return Ok(Cond::InAnswer { tuple, answer });
        }
        self.expect(&Token::LParen)?;
        let st = self.select_or_entangled()?;
        self.expect(&Token::RParen)?;
        match st {
            Statement::Select(s) => Ok(Cond::InSelect {
                tuple,
                select: Box::new(s),
            }),
            _ => Err(self.err("classical subquery inside IN")),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => return Err(self.err("comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    // ---- scalars ----

    fn scalar(&mut self) -> Result<Scalar, ParseError> {
        let mut left = self.term()?;
        loop {
            if self.eat(&Token::Plus) {
                let right = self.term()?;
                left = Scalar::Add(Box::new(left), Box::new(right));
            } else if self.eat(&Token::Minus) {
                let right = self.term()?;
                left = Scalar::Sub(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn term(&mut self) -> Result<Scalar, ParseError> {
        match self.peek().cloned() {
            Some(Token::Lit(v)) => {
                self.pos += 1;
                Ok(Scalar::Lit(v))
            }
            Some(Token::Minus) => {
                self.pos += 1;
                match self.next() {
                    Some(Token::Lit(Value::Int(n))) => Ok(Scalar::Lit(Value::Int(-n))),
                    _ => Err(self.err("integer after unary minus")),
                }
            }
            Some(Token::HostVar(n)) => {
                self.pos += 1;
                Ok(Scalar::HostVar(n))
            }
            Some(Token::Ident(name)) if !is_reserved(&name) => {
                self.pos += 1;
                Ok(Scalar::Col(split_colref(&name)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let s = self.scalar()?;
                self.expect(&Token::RParen)?;
                Ok(s)
            }
            _ => Err(self.err("scalar expression")),
        }
    }
}

/// Keywords that may not be used as bare column references.
fn is_reserved(s: &str) -> bool {
    const RESERVED: [&str; 19] = [
        "SELECT", "FROM", "WHERE", "INTO", "ANSWER", "CHOOSE", "AND", "OR", "NOT", "IN", "AS",
        "LIMIT", "VALUES", "SET", "COMMIT", "ROLLBACK", "BEGIN", "DISTINCT", "BETWEEN",
    ];
    RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k))
}

fn split_colref(name: &str) -> ColumnRef {
    match name.split_once('.') {
        Some((q, c)) => ColumnRef::qualified(q, c),
        None => ColumnRef::bare(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_insert_roundtrip() {
        let st = parse_statement("CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT)").unwrap();
        match st {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "Flights");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[1], ("fdate".to_string(), ValueType::Date));
            }
            other => panic!("wrong statement {other:?}"),
        }
        let st = parse_statement("INSERT INTO Reserve (uid, fid) VALUES (@uid, @fid);").unwrap();
        match st {
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                assert_eq!(table, "Reserve");
                assert_eq!(columns.unwrap(), vec!["uid", "fid"]);
                assert_eq!(
                    values,
                    vec![Scalar::HostVar("uid".into()), Scalar::HostVar("fid".into())]
                );
            }
            other => panic!("wrong statement {other:?}"),
        }
    }

    #[test]
    fn create_index_forms() {
        let st = parse_statement("CREATE INDEX reserve_uid ON Reserve (uid)").unwrap();
        assert_eq!(
            st,
            Statement::CreateIndex {
                name: "reserve_uid".into(),
                table: "Reserve".into(),
                columns: vec!["uid".into()],
                kind: IndexKind::Hash,
            }
        );
        let st = parse_statement("create index f_date on Flights (fdate) using btree;").unwrap();
        assert!(matches!(
            st,
            Statement::CreateIndex {
                kind: IndexKind::Btree,
                ..
            }
        ));
        let st = parse_statement("CREATE INDEX f_df ON Flights (dest, fdate) USING BTREE").unwrap();
        assert_eq!(
            st,
            Statement::CreateIndex {
                name: "f_df".into(),
                table: "Flights".into(),
                columns: vec!["dest".into(), "fdate".into()],
                kind: IndexKind::Btree,
            }
        );
        assert!(parse_statement("CREATE INDEX i ON T (c) USING SKIPLIST").is_err());
        assert!(
            parse_statement("CREATE INDEX i ON T c").is_err(),
            "parens required"
        );
        assert!(
            parse_statement("CREATE INDEX i ON T ()").is_err(),
            "at least one column"
        );
    }

    #[test]
    fn between_desugars_to_closed_range() {
        let st = parse_statement(
            "SELECT fno FROM Flights WHERE fdate BETWEEN '2011-05-01' AND '2011-05-07'",
        )
        .unwrap();
        let Statement::Select(s) = st else { panic!() };
        let conjs = s.where_clause.conjuncts();
        assert_eq!(conjs.len(), 2);
        let lo = Value::parse_date("2011-05-01").unwrap();
        let hi = Value::parse_date("2011-05-07").unwrap();
        assert!(
            matches!(conjs[0], Cond::Cmp { op: CmpOp::Ge, rhs: Scalar::Lit(v), .. } if *v == lo)
        );
        assert!(
            matches!(conjs[1], Cond::Cmp { op: CmpOp::Le, rhs: Scalar::Lit(v), .. } if *v == hi)
        );
        // BETWEEN binds tighter than AND: a trailing conjunct still parses.
        let st = parse_statement(
            "SELECT fno FROM Flights WHERE fdate BETWEEN '2011-05-01' AND '2011-05-07' \
             AND dest = 'LA'",
        )
        .unwrap();
        let Statement::Select(s) = st else { panic!() };
        assert_eq!(s.where_clause.conjuncts().len(), 3);
        // BETWEEN is reserved: not usable as a bare column name.
        assert!(parse_statement("SELECT between FROM T").is_err());
    }

    #[test]
    fn mickeys_entangled_query_parses() {
        // Verbatim from §2 (modulo typographic quotes).
        let sql = "SELECT 'Mickey', fno, fdate INTO ANSWER Reservation \
                   WHERE fno, fdate IN \
                   (SELECT fno, fdate FROM Flights WHERE dest='LA') \
                   AND ('Minnie', fno, fdate) IN ANSWER Reservation \
                   CHOOSE 1";
        let st = parse_statement(sql).unwrap();
        let Statement::Entangled(eq) = st else {
            panic!("expected entangled")
        };
        assert_eq!(eq.into, vec!["Reservation"]);
        assert_eq!(eq.choose, 1);
        assert_eq!(eq.items.len(), 3);
        assert_eq!(eq.items[0].expr, Scalar::lit("Mickey"));
        let conjs = eq.where_clause.conjuncts();
        assert_eq!(conjs.len(), 2);
        assert!(matches!(conjs[0], Cond::InSelect { tuple, .. } if tuple.len() == 2));
        assert!(
            matches!(conjs[1], Cond::InAnswer { tuple, answer } if tuple.len() == 3 && answer == "Reservation")
        );
    }

    #[test]
    fn minnies_query_with_join_subquery() {
        let sql = "SELECT 'Minnie', fno, fdate INTO ANSWER Reservation \
                   WHERE fno, fdate IN \
                   (SELECT fno, fdate FROM Flights F, Airlines A WHERE \
                    F.dest='LA' and F.fno = A.fno AND A.airline = 'United') \
                   AND ('Mickey', fno, fdate) IN ANSWER Reservation \
                   CHOOSE 1";
        let st = parse_statement(sql).unwrap();
        let Statement::Entangled(eq) = st else {
            panic!()
        };
        let Cond::InSelect { select, .. } = eq.where_clause.conjuncts()[0] else {
            panic!("expected InSelect")
        };
        assert_eq!(select.from.len(), 2);
        assert_eq!(select.from[0].alias.as_deref(), Some("F"));
        // Qualified column refs split correctly.
        let conjs = select.where_clause.conjuncts();
        assert!(matches!(
            conjs[0],
            Cond::Cmp { lhs: Scalar::Col(c), .. } if c.qualifier.as_deref() == Some("F") && c.column == "dest"
        ));
    }

    #[test]
    fn figure2_transaction_script() {
        let sql = "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\
            SELECT 'Mickey', fno, fdate AS @ArrivalDay INTO ANSWER FlightRes \
            WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
            AND ('Minnie', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\
            -- (Code to perform flight booking omitted)\n\
            SET @StayLength = '2011-05-06' - @ArrivalDay;\
            SELECT 'Mickey', hid, @ArrivalDay, @StayLength INTO ANSWER HotelRes \
            WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA') \
            AND ('Minnie', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes CHOOSE 1;\
            COMMIT;";
        let sts = parse_script(sql).unwrap();
        assert_eq!(sts.len(), 5);
        assert_eq!(
            sts[0],
            Statement::Begin {
                timeout: Some(Duration::from_secs(2 * 86400))
            }
        );
        let Statement::Entangled(flight) = &sts[1] else {
            panic!()
        };
        assert_eq!(flight.items[2].bind.as_deref(), Some("ArrivalDay"));
        assert!(matches!(&sts[2], Statement::SetVar { name, .. } if name == "StayLength"));
        let Statement::Entangled(hotel) = &sts[3] else {
            panic!()
        };
        // Host variables appear inside the entangled head and postcondition.
        assert_eq!(hotel.items[2].expr, Scalar::HostVar("ArrivalDay".into()));
        assert_eq!(sts[4], Statement::Commit);
    }

    #[test]
    fn appendix_d_social_workload() {
        let sql = "SELECT uid2 FROM Friends, User as u1, User as u2 \
                   WHERE Friends.uid1=@uid AND Friends.uid2=u2.uid \
                   AND u1.uid=@uid AND u1.hometown=u2.hometown LIMIT 1";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(s.from.len(), 3);
        assert_eq!(s.from[1].binding_name(), "u1");
        assert_eq!(s.limit, Some(1));
        assert_eq!(s.where_clause.conjuncts().len(), 4);
    }

    #[test]
    fn bare_hostvar_select_items_bind() {
        let sql = "SELECT @uid, @hometown FROM User WHERE uid=36513";
        let Statement::Select(s) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.items[0].bind.as_deref(), Some("uid"));
        assert_eq!(s.items[0].expr, Scalar::Col(ColumnRef::bare("uid")));
        assert_eq!(s.items[1].bind.as_deref(), Some("hometown"));
    }

    #[test]
    fn appendix_d_entangled_reserve() {
        let sql = "SELECT 36513 AS @uid, 'CAT' AS @destination INTO ANSWER Reserve \
            WHERE (36513, 45747) IN \
            (SELECT uid1, uid2 FROM Friends, User as u1, User as u2 \
             WHERE Friends.uid1=36513 AND Friends.uid2=45747 \
             AND u1.uid=36513 AND u2.uid=45747 AND u1.hometown=u2.hometown) \
            AND (45747, 'PHF') IN ANSWER Reserve CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(eq.items[0].bind.as_deref(), Some("uid"));
        assert_eq!(eq.items[1].bind.as_deref(), Some("destination"));
        assert!(eq.where_clause.mentions_answer());
    }

    #[test]
    fn update_delete_set() {
        let st =
            parse_statement("UPDATE Hotels SET price = 100, city = 'LA' WHERE hid = 3").unwrap();
        assert!(matches!(st, Statement::Update { ref sets, .. } if sets.len() == 2));
        let st = parse_statement("DELETE FROM Reserve WHERE uid = 10").unwrap();
        assert!(matches!(st, Statement::Delete { .. }));
        let st = parse_statement("DELETE FROM Reserve").unwrap();
        assert!(
            matches!(st, Statement::Delete { ref where_clause, .. } if *where_clause == Cond::True)
        );
        let st = parse_statement("SET @x = @y + 1").unwrap();
        assert!(matches!(st, Statement::SetVar { .. }));
    }

    #[test]
    fn begin_variants() {
        assert_eq!(
            parse_statement("BEGIN").unwrap(),
            Statement::Begin { timeout: None }
        );
        assert_eq!(
            parse_statement("BEGIN TRANSACTION").unwrap(),
            Statement::Begin { timeout: None }
        );
        assert_eq!(
            parse_statement("BEGIN TRANSACTION WITH TIMEOUT 500 MS").unwrap(),
            Statement::Begin {
                timeout: Some(Duration::from_millis(500))
            }
        );
        assert_eq!(
            parse_statement("BEGIN WITH TIMEOUT 3 MINUTES").unwrap(),
            Statement::Begin {
                timeout: Some(Duration::from_secs(180))
            }
        );
    }

    #[test]
    fn select_star_and_distinct() {
        let Statement::Select(s) =
            parse_statement("SELECT * FROM Airlines WHERE airline = 'United'").unwrap()
        else {
            panic!()
        };
        assert!(s.star);
        let Statement::Select(s) = parse_statement("SELECT DISTINCT dest FROM Flights").unwrap()
        else {
            panic!()
        };
        assert!(s.distinct);
    }

    #[test]
    fn parenthesized_conditions() {
        let Statement::Select(s) = parse_statement(
            "SELECT fno FROM Flights WHERE (dest = 'LA' OR dest = 'SF') AND fno > 100",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(s.where_clause.conjuncts().len(), 2);
        assert!(matches!(s.where_clause.conjuncts()[0], Cond::Or(..)));
    }

    #[test]
    fn negative_literals_and_arithmetic() {
        let Statement::SetVar { expr, .. } = parse_statement("SET @x = -5 + 3").unwrap() else {
            panic!()
        };
        assert_eq!(
            expr,
            Scalar::Add(Box::new(Scalar::lit(-5i64)), Box::new(Scalar::lit(3i64)))
        );
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(matches!(parse_statement(""), Err(ParseError::Eof { .. })));
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("BEGIN WITH TIMEOUT 2 FORTNIGHTS").is_err());
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
        assert!(
            parse_statement("SELECT 1 INTO ANSWER R WHERE 1=1").is_err(),
            "missing CHOOSE"
        );
        let err = parse_statement("SELECT 1 extra garbage ; SELECT").unwrap_err();
        assert!(matches!(err, ParseError::Unexpected { .. }));
    }

    #[test]
    fn multiple_answer_relations() {
        let sql = "SELECT 'x' INTO ANSWER A, ANSWER B WHERE ('y') IN ANSWER A CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(eq.into, vec!["A", "B"]);
    }

    #[test]
    fn script_handles_blank_statements() {
        let sts = parse_script(";;SELECT 1;;COMMIT;;").unwrap();
        assert_eq!(sts.len(), 2);
    }
}
