//! Property tests for the heap table: a model-based check against a
//! straightforward `HashMap` reference model.

use proptest::prelude::*;
use std::collections::HashMap;
use youtopia_storage::{RowId, Schema, Table, Value, ValueType};

#[derive(Debug, Clone)]
enum OpK {
    Insert(i64),
    Delete(u8),
    Update(u8, i64),
    Lookup(i64),
}

fn arb_op() -> impl Strategy<Value = OpK> {
    prop_oneof![
        any::<i64>().prop_map(OpK::Insert),
        any::<u8>().prop_map(OpK::Delete),
        (any::<u8>(), any::<i64>()).prop_map(|(r, v)| OpK::Update(r, v)),
        any::<i64>().prop_map(OpK::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The table agrees with a reference model under arbitrary op
    /// sequences, with and without an index on the value column.
    #[test]
    fn table_matches_reference_model(
        ops in prop::collection::vec(arb_op(), 1..60),
        with_index in any::<bool>(),
    ) {
        let mut table = Table::new("t", Schema::of(&[("v", ValueType::Int)]));
        if with_index {
            table.create_index(&["v"]).expect("index");
        }
        let mut model: HashMap<u64, i64> = HashMap::new();
        let mut ids: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                OpK::Insert(v) => {
                    let id = table.insert(vec![Value::Int(v)]).expect("insert");
                    model.insert(id.0, v);
                    ids.push(id.0);
                }
                OpK::Delete(r) => {
                    if ids.is_empty() { continue; }
                    let id = ids[r as usize % ids.len()];
                    let t = table.delete(RowId(id));
                    let m = model.remove(&id);
                    prop_assert_eq!(t.is_some(), m.is_some());
                }
                OpK::Update(r, v) => {
                    if ids.is_empty() { continue; }
                    let id = ids[r as usize % ids.len()];
                    let t = table.update(RowId(id), vec![Value::Int(v)]).expect("schema ok");
                    if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(id) {
                        prop_assert!(t.is_some());
                        e.insert(v);
                    } else {
                        prop_assert!(t.is_none());
                    }
                }
                OpK::Lookup(v) => {
                    let got: Vec<u64> =
                        table.lookup(&[(0, &Value::Int(v))]).iter().map(|(id, _)| id.0).collect();
                    let mut want: Vec<u64> = model
                        .iter()
                        .filter(|(_, &mv)| mv == v)
                        .map(|(&id, _)| id)
                        .collect();
                    let mut got_sorted = got.clone();
                    got_sorted.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got_sorted, want);
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Final scan agrees with the model.
        let mut scanned: Vec<(u64, i64)> = table
            .scan()
            .map(|(id, row)| (id.0, row[0].as_int().expect("int")))
            .collect();
        scanned.sort_unstable();
        let mut expected: Vec<(u64, i64)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(scanned, expected);
    }
}
