//! Named secondary indexes: per-table [`IndexSet`]s of [`Index`]es over one
//! or more columns, each hash- or btree-backed.
//!
//! These are the *declared* indexes `CREATE INDEX` builds — distinct from
//! the anonymous multi-column hash indexes [`crate::Table::create_index`]
//! keeps for join pushdown. A named index maps a key — the indexed column's
//! value, or a [`Value::Tuple`] of the column values for a composite index —
//! to the [`RowId`]s of rows holding it. Postings are *supersets* of the
//! live heap: the table adds a posting inside the same mutation that touches
//! the heap, but removal is deferred to vacuum so that multi-version
//! snapshot readers can probe the live index and find rows whose current
//! heap state has moved on (see `Table::resync_named_indexes`). Every probe
//! consumer therefore re-checks liveness/visibility and the key predicate.
//!
//! [`IndexKind::Hash`] serves equality probes in O(1); [`IndexKind::Btree`]
//! additionally serves ordered range probes ([`Index::probe_range`]) —
//! including prefix ranges over composite keys, because a tuple prefix sorts
//! immediately before all its extensions. Durability is the engine's
//! business: index *definitions* are logged and carried in checkpoint
//! images, index *contents* are always rebuilt from the recovered heap (see
//! `youtopia-wal`), which is why this module needs no persistence of its
//! own.

use crate::table::{Row, RowId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// The backing structure of a named index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Hash map: equality probes only.
    Hash,
    /// Ordered map: equality and range probes.
    Btree,
}

impl IndexKind {
    /// The SQL keyword naming this kind (`USING HASH` / `USING BTREE`).
    pub fn keyword(&self) -> &'static str {
        match self {
            IndexKind::Hash => "HASH",
            IndexKind::Btree => "BTREE",
        }
    }
}

/// What one latched range probe hands a next-key-locking reader: the
/// in-range `(key, postings)` entries in key order, plus the successor
/// key beyond the range (`None` when the range runs off the index).
pub type RangeEntries = (Vec<(Value, Vec<RowId>)>, Option<Value>);

/// Key → row-id postings, in the shape the kind dictates.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum IndexData {
    Hash(HashMap<Value, Vec<RowId>>),
    Btree(BTreeMap<Value, Vec<RowId>>),
}

/// One named secondary index over one or more columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Index {
    name: String,
    columns: Vec<usize>,
    column_names: Vec<String>,
    kind: IndexKind,
    data: IndexData,
}

impl Index {
    fn new(name: String, columns: Vec<usize>, column_names: Vec<String>, kind: IndexKind) -> Index {
        assert!(!columns.is_empty(), "index must cover at least one column");
        let data = match kind {
            IndexKind::Hash => IndexData::Hash(HashMap::new()),
            IndexKind::Btree => IndexData::Btree(BTreeMap::new()),
        };
        Index {
            name,
            columns,
            column_names,
            kind,
            data,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Position of the first indexed column in the table's schema.
    pub fn column(&self) -> usize {
        self.columns[0]
    }

    /// Positions of every indexed column, in key order.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    pub fn column_name(&self) -> &str {
        &self.column_names[0]
    }

    pub fn column_names(&self) -> &[String] {
        &self.column_names
    }

    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// The index key of a row: the bare column value for a single-column
    /// index, a [`Value::Tuple`] in column order for a composite one.
    pub fn key_of(&self, row: &Row) -> Value {
        if let [c] = self.columns.as_slice() {
            row[*c].clone()
        } else {
            Value::Tuple(self.columns.iter().map(|c| row[*c].clone()).collect())
        }
    }

    /// Row ids whose index key equals `key` (unordered; may include ids the
    /// caller must still check for liveness/visibility and key match —
    /// postings are a superset of the live heap between vacuums).
    pub fn probe(&self, key: &Value) -> &[RowId] {
        match &self.data {
            IndexData::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
            IndexData::Btree(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Walk the keys matching `prefix` on the leading columns whose next
    /// component falls within `(lo, hi)`, in key order. The visitor returns
    /// `false` to stop early. Returns `None` for hash indexes; otherwise
    /// `Some(successor)` — the first existing key *past* the range (the
    /// next-key lock target), or `None` inside when the range runs off the
    /// end of the index. The successor is meaningless if the visitor
    /// stopped the walk.
    fn visit_range(
        &self,
        prefix: &[Value],
        lo: Bound<&Value>,
        hi: Bound<&Value>,
        mut visit: impl FnMut(&Value, &[RowId]) -> bool,
    ) -> Option<Option<Value>> {
        let m = match &self.data {
            IndexData::Hash(_) => return None,
            IndexData::Btree(m) => m,
        };
        // Starting point: for bare keys the lower bound itself; for
        // composite keys the tuple `prefix ++ [lo]` — a proper prefix of
        // every full-arity key it bounds, so `Included` is always safe and
        // the `Excluded` edge is enforced by the per-key check below.
        let start: Bound<Value> = if prefix.is_empty() && self.columns.len() == 1 {
            match lo {
                Bound::Included(v) => Bound::Included(v.clone()),
                Bound::Excluded(v) => Bound::Excluded(v.clone()),
                Bound::Unbounded => Bound::Unbounded,
            }
        } else {
            let mut head = prefix.to_vec();
            match lo {
                Bound::Included(v) | Bound::Excluded(v) => head.push(v.clone()),
                Bound::Unbounded => {}
            }
            Bound::Included(Value::Tuple(head))
        };
        let pos = prefix.len();
        for (key, ids) in m.range::<Value, _>((start, Bound::Unbounded)) {
            let comp = if self.columns.len() == 1 {
                key
            } else {
                let Value::Tuple(parts) = key else {
                    return Some(Some(key.clone()));
                };
                if parts[..pos] != *prefix {
                    // Ran off the prefix run; this key is the successor.
                    return Some(Some(key.clone()));
                }
                &parts[pos]
            };
            match lo {
                Bound::Included(v) if comp < v => continue,
                Bound::Excluded(v) if comp <= v => continue,
                _ => {}
            }
            match hi {
                Bound::Included(v) if comp > v => return Some(Some(key.clone())),
                Bound::Excluded(v) if comp >= v => return Some(Some(key.clone())),
                _ => {}
            }
            if !visit(key, ids) {
                return Some(None);
            }
        }
        Some(None)
    }

    /// Row ids whose index key matches `prefix` on the leading columns and
    /// whose next component falls within the bounds, in key order. `None`
    /// for hash indexes, which cannot serve ranges. Like [`Index::probe`],
    /// the result may include stale postings the caller must re-check.
    pub fn probe_range(
        &self,
        prefix: &[Value],
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<Vec<RowId>> {
        let mut out = Vec::new();
        self.visit_range(prefix, lo, hi, |_, ids| {
            out.extend_from_slice(ids);
            true
        })?;
        Some(out)
    }

    /// In-range `(key, ids)` entries plus the successor key beyond the
    /// range — everything a next-key-locking range read needs from one
    /// latched probe. `None` for hash indexes.
    pub fn probe_range_entries(
        &self,
        prefix: &[Value],
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Option<RangeEntries> {
        let mut out = Vec::new();
        let successor = self.visit_range(prefix, lo, hi, |key, ids| {
            out.push((key.clone(), ids.to_vec()));
            true
        })?;
        Some((out, successor))
    }

    /// Posting count within the range, capped at `cap` — the selectivity
    /// guess the planner's cost gate compares against the table length.
    /// `None` for hash indexes.
    pub fn estimate_range(
        &self,
        prefix: &[Value],
        lo: Bound<&Value>,
        hi: Bound<&Value>,
        cap: usize,
    ) -> Option<usize> {
        let mut n = 0usize;
        self.visit_range(prefix, lo, hi, |_, ids| {
            n += ids.len();
            n <= cap
        })?;
        Some(n.min(cap.saturating_add(1)))
    }

    /// The first indexed key strictly greater than `key` — the next-key
    /// lock target a btree inserter must take before posting `key`.
    /// `Some(None)` means `key` would land past every existing key (lock
    /// the EOF sentinel); `None` means the index is a hash (no key order,
    /// no phantom protocol).
    pub fn successor(&self, key: &Value) -> Option<Option<Value>> {
        let m = match &self.data {
            IndexData::Hash(_) => return None,
            IndexData::Btree(m) => m,
        };
        Some(
            m.range::<Value, _>((Bound::Excluded(key), Bound::Unbounded))
                .next()
                .map(|(k, _)| k.clone()),
        )
    }

    /// Number of distinct keys currently indexed.
    pub fn key_count(&self) -> usize {
        match &self.data {
            IndexData::Hash(m) => m.len(),
            IndexData::Btree(m) => m.len(),
        }
    }

    /// All postings as `(key, sorted row ids)`, sorted by key — the
    /// canonical form coherence tests compare against a heap-rebuilt
    /// oracle.
    pub fn entries(&self) -> Vec<(Value, Vec<RowId>)> {
        let mut out: Vec<(Value, Vec<RowId>)> = match &self.data {
            IndexData::Hash(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            IndexData::Btree(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        };
        for (_, ids) in &mut out {
            ids.sort_unstable();
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn insert(&mut self, id: RowId, key: Value) {
        let ids = match &mut self.data {
            IndexData::Hash(m) => m.entry(key).or_default(),
            IndexData::Btree(m) => m.entry(key).or_default(),
        };
        // Dedup: a row re-covered by vacuum resync or by a version install
        // after the heap mutation already posted it must appear once.
        if !ids.contains(&id) {
            ids.push(id);
        }
    }

    fn clear(&mut self) {
        match &mut self.data {
            IndexData::Hash(m) => m.clear(),
            IndexData::Btree(m) => m.clear(),
        }
    }
}

/// All named indexes of one table, maintained as a unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IndexSet {
    indexes: Vec<Index>,
}

impl IndexSet {
    /// Declare an index. Idempotent when an index of the same name,
    /// columns and kind already exists (returns `false`); errors if the
    /// name is taken by a different definition.
    pub fn create(
        &mut self,
        name: &str,
        columns: Vec<usize>,
        column_names: Vec<String>,
        kind: IndexKind,
    ) -> Result<bool, String> {
        if let Some(ix) = self.get(name) {
            if ix.columns == columns && ix.kind == kind {
                return Ok(false);
            }
            return Err(format!(
                "index {name} already exists with a different definition"
            ));
        }
        self.indexes
            .push(Index::new(name.to_string(), columns, column_names, kind));
        Ok(true)
    }

    /// Find an index by name (ASCII-case-insensitive, like the catalog).
    pub fn get(&self, name: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.name.eq_ignore_ascii_case(name))
    }

    /// The first single-column index over `column`, preferring a hash
    /// index for the equality probes the executor issues most.
    pub fn on_column(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .filter(|ix| ix.columns.as_slice() == [column])
            .min_by_key(|ix| match ix.kind {
                IndexKind::Hash => 0,
                IndexKind::Btree => 1,
            })
    }

    /// A single-column btree index over `column`, for range probes.
    pub fn btree_on_column(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.columns.as_slice() == [column] && ix.kind == IndexKind::Btree)
    }

    /// A copy carrying the same definitions but no contents.
    pub fn defs_only(&self) -> IndexSet {
        IndexSet {
            indexes: self
                .indexes
                .iter()
                .map(|ix| {
                    Index::new(
                        ix.name.clone(),
                        ix.columns.clone(),
                        ix.column_names.clone(),
                        ix.kind,
                    )
                })
                .collect(),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &Index> + '_ {
        self.indexes.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    // -- maintenance, called by the owning table inside heap mutations --

    /// Post `row` under its key in every index (idempotent per row/key).
    pub(crate) fn insert_row(&mut self, id: RowId, row: &Row) {
        for ix in &mut self.indexes {
            let key = ix.key_of(row);
            ix.insert(id, key);
        }
    }

    /// Post the new key of an updated row wherever it changed, leaving the
    /// old posting in place for snapshot readers (vacuum reclaims it).
    /// Returns whether any index key actually changed.
    pub(crate) fn post_update(&mut self, id: RowId, old: &Row, new: &Row) -> bool {
        let mut changed = false;
        for ix in &mut self.indexes {
            let new_key = ix.key_of(new);
            if ix.key_of(old) != new_key {
                ix.insert(id, new_key);
                changed = true;
            }
        }
        changed
    }

    pub(crate) fn clear(&mut self) {
        for ix in &mut self.indexes {
            ix.clear();
        }
    }

    /// Rebuild every index's contents from the given rows (recovery,
    /// vacuum resync). Callers feeding both live rows and retained version
    /// rows get the history-union postings snapshot reads probe.
    pub(crate) fn rebuild<'a>(&mut self, rows: impl Iterator<Item = (RowId, &'a Row)>) {
        self.clear();
        for (id, row) in rows {
            self.insert_row(id, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn row(v: i64) -> Row {
        vec![Value::Int(v), Value::str("x")]
    }

    fn set() -> IndexSet {
        let mut s = IndexSet::default();
        s.create("h", vec![0], vec!["a".into()], IndexKind::Hash)
            .unwrap();
        s.create("b", vec![0], vec!["a".into()], IndexKind::Btree)
            .unwrap();
        s
    }

    fn remove_row(s: &mut IndexSet, id: RowId, row: &Row) {
        // Posting removal is vacuum's job now; tests emulate it by
        // rebuilding from the surviving rows.
        let survivors: Vec<(RowId, Row)> = s
            .get("b")
            .unwrap()
            .entries()
            .into_iter()
            .flat_map(|(k, ids)| ids.into_iter().map(move |i| (i, vec![k.clone()])))
            .filter(|(i, _)| *i != id)
            .map(|(i, k)| (i, vec![k[0].clone(), Value::str("x")]))
            .collect();
        let _ = row;
        s.rebuild(survivors.iter().map(|(i, r)| (*i, r)));
    }

    #[test]
    fn create_is_idempotent_and_conflicts_error() {
        let mut s = set();
        assert_eq!(
            s.create("h", vec![0], vec!["a".into()], IndexKind::Hash),
            Ok(false)
        );
        assert!(s
            .create("H", vec![1], vec!["b".into()], IndexKind::Hash)
            .is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn probe_and_maintenance() {
        let mut s = set();
        s.insert_row(RowId(0), &row(5));
        s.insert_row(RowId(1), &row(5));
        s.insert_row(RowId(2), &row(9));
        s.insert_row(RowId(2), &row(9)); // dedup: same row/key posts once
        let h = s.get("h").unwrap();
        assert_eq!(h.probe(&Value::Int(5)), &[RowId(0), RowId(1)]);
        assert_eq!(h.probe(&Value::Int(9)), &[RowId(2)]);
        assert_eq!(h.probe(&Value::Int(7)), &[] as &[RowId]);
        remove_row(&mut s, RowId(0), &row(5));
        assert_eq!(s.get("b").unwrap().probe(&Value::Int(5)), &[RowId(1)]);
    }

    #[test]
    fn range_probe_btree_only() {
        let mut s = set();
        for (i, v) in [3, 1, 7, 5].into_iter().enumerate() {
            s.insert_row(RowId(i as u64), &row(v));
        }
        let b = s.get("b").unwrap();
        let ids = b
            .probe_range(
                &[],
                Bound::Included(&Value::Int(3)),
                Bound::Excluded(&Value::Int(7)),
            )
            .unwrap();
        assert_eq!(ids, vec![RowId(0), RowId(3)], "key order: 3 then 5");
        assert!(s
            .get("h")
            .unwrap()
            .probe_range(&[], Bound::Unbounded, Bound::Unbounded)
            .is_none());
        // The successor of [3, 7) is the first key past the range: 7.
        let (entries, succ) = b
            .probe_range_entries(
                &[],
                Bound::Included(&Value::Int(3)),
                Bound::Excluded(&Value::Int(7)),
            )
            .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(succ, Some(Value::Int(7)));
        // An unbounded tail has no successor (EOF).
        let (_, succ) = b
            .probe_range_entries(&[], Bound::Excluded(&Value::Int(5)), Bound::Unbounded)
            .unwrap();
        assert_eq!(succ, None);
    }

    #[test]
    fn composite_prefix_range_probe() {
        let mut s = IndexSet::default();
        s.create(
            "ab",
            vec![0, 1],
            vec!["a".into(), "b".into()],
            IndexKind::Btree,
        )
        .unwrap();
        let mk = |a: i64, b: i64| vec![Value::Int(a), Value::Int(b)];
        for (i, (a, b)) in [(1, 10), (2, 10), (2, 20), (2, 30), (3, 5)]
            .iter()
            .enumerate()
        {
            s.insert_row(RowId(i as u64), &mk(*a, *b));
        }
        let ix = s.get("ab").unwrap();
        assert_eq!(
            ix.key_of(&mk(2, 20)),
            Value::Tuple(vec![Value::Int(2), Value::Int(20)])
        );
        // Prefix a=2, b in [10, 30): rows 1 and 2, in key order.
        let ids = ix
            .probe_range(
                &[Value::Int(2)],
                Bound::Included(&Value::Int(10)),
                Bound::Excluded(&Value::Int(30)),
            )
            .unwrap();
        assert_eq!(ids, vec![RowId(1), RowId(2)]);
        // Unbounded within the prefix: all a=2 rows; successor is the
        // first key of the next prefix run.
        let (entries, succ) = ix
            .probe_range_entries(&[Value::Int(2)], Bound::Unbounded, Bound::Unbounded)
            .unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(succ, Some(Value::Tuple(vec![Value::Int(3), Value::Int(5)])));
        // Full-key point probes still work on the composite key.
        assert_eq!(
            ix.probe(&Value::Tuple(vec![Value::Int(2), Value::Int(20)])),
            &[RowId(2)]
        );
        // Cost-gate estimate caps early.
        assert_eq!(
            ix.estimate_range(&[Value::Int(2)], Bound::Unbounded, Bound::Unbounded, 2),
            Some(3)
        );
        assert_eq!(
            ix.estimate_range(&[Value::Int(2)], Bound::Unbounded, Bound::Unbounded, 10),
            Some(3)
        );
    }

    #[test]
    fn entries_are_canonical_and_rebuild_matches() {
        let mut s = set();
        s.insert_row(RowId(1), &row(4));
        s.insert_row(RowId(0), &row(4));
        s.insert_row(RowId(2), &row(2));
        let before = s.get("b").unwrap().entries();
        assert_eq!(before[0].0, Value::Int(2));
        assert_eq!(before[1].1, vec![RowId(0), RowId(1)], "ids sorted");
        let rows = [(RowId(1), row(4)), (RowId(0), row(4)), (RowId(2), row(2))];
        let mut rebuilt = s.clone();
        rebuilt.rebuild(rows.iter().map(|(id, r)| (*id, r)));
        assert_eq!(rebuilt.get("b").unwrap().entries(), before);
        assert_eq!(rebuilt.get("h").unwrap().entries(), before);
        assert_eq!(s.get("h").unwrap().key_count(), 2);
    }

    proptest! {
        /// `probe_range` over a btree index equals filtering a scan of the
        /// posted rows by the same bounds — including duplicate keys and
        /// both `Excluded` edges.
        #[test]
        fn probe_range_equals_filtered_scan(
            keys in prop::collection::vec(-20i64..20, 0..60),
            lo in -25i64..25,
            span in 0i64..12,
            lo_excl in any::<bool>(),
            hi_excl in any::<bool>(),
        ) {
            let mut s = IndexSet::default();
            s.create("b", vec![0], vec!["a".into()], IndexKind::Btree).unwrap();
            let rows: Vec<Row> = keys.iter().map(|k| row(*k)).collect();
            for (i, r) in rows.iter().enumerate() {
                s.insert_row(RowId(i as u64), r);
            }
            let hi = lo + span;
            let (lo_v, hi_v) = (Value::Int(lo), Value::Int(hi));
            let lo_b = if lo_excl { Bound::Excluded(&lo_v) } else { Bound::Included(&lo_v) };
            let hi_b = if hi_excl { Bound::Excluded(&hi_v) } else { Bound::Included(&hi_v) };
            let mut probed = s.get("b").unwrap().probe_range(&[], lo_b, hi_b).unwrap();
            probed.sort_unstable();
            let mut scanned: Vec<RowId> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    let k = r[0].as_int().unwrap();
                    (if lo_excl { k > lo } else { k >= lo })
                        && (if hi_excl { k < hi } else { k <= hi })
                })
                .map(|(i, _)| RowId(i as u64))
                .collect();
            scanned.sort_unstable();
            prop_assert_eq!(probed, scanned);
            // The estimate agrees with the true count when uncapped.
            let est = s.get("b").unwrap()
                .estimate_range(&[], lo_b, hi_b, usize::MAX >> 1)
                .unwrap();
            prop_assert_eq!(est, scanned.len());
        }

        /// Composite-key prefix ranges equal the two-column filtered scan.
        #[test]
        fn composite_probe_range_equals_filtered_scan(
            pairs in prop::collection::vec((-4i64..4, -10i64..10), 0..40),
            a in -5i64..5,
            lo in -12i64..12,
            span in 0i64..8,
            lo_excl in any::<bool>(),
            hi_excl in any::<bool>(),
        ) {
            let mut s = IndexSet::default();
            s.create("ab", vec![0, 1], vec!["a".into(), "b".into()], IndexKind::Btree).unwrap();
            let rows: Vec<Row> = pairs
                .iter()
                .map(|(a, b)| vec![Value::Int(*a), Value::Int(*b)])
                .collect();
            for (i, r) in rows.iter().enumerate() {
                s.insert_row(RowId(i as u64), r);
            }
            let hi = lo + span;
            let (lo_v, hi_v) = (Value::Int(lo), Value::Int(hi));
            let lo_b = if lo_excl { Bound::Excluded(&lo_v) } else { Bound::Included(&lo_v) };
            let hi_b = if hi_excl { Bound::Excluded(&hi_v) } else { Bound::Included(&hi_v) };
            let prefix = [Value::Int(a)];
            let mut probed = s.get("ab").unwrap().probe_range(&prefix, lo_b, hi_b).unwrap();
            probed.sort_unstable();
            let mut scanned: Vec<RowId> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    let (ka, kb) = (r[0].as_int().unwrap(), r[1].as_int().unwrap());
                    ka == a
                        && (if lo_excl { kb > lo } else { kb >= lo })
                        && (if hi_excl { kb < hi } else { kb <= hi })
                })
                .map(|(i, _)| RowId(i as u64))
                .collect();
            scanned.sort_unstable();
            prop_assert_eq!(probed, scanned);
        }
    }
}
