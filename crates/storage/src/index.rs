//! Named secondary indexes: per-table [`IndexSet`]s of single-column
//! [`Index`]es, each hash- or btree-backed.
//!
//! These are the *declared* indexes `CREATE INDEX` builds — distinct from
//! the anonymous multi-column hash indexes [`crate::Table::create_index`]
//! keeps for join pushdown. A named index maps one column's value to the
//! [`RowId`]s of the live rows holding it; the table maintains every member
//! of its set inside the same mutation that touches the heap (under the
//! table's write latch), so index and heap can never be observed diverged.
//!
//! [`IndexKind::Hash`] serves equality probes in O(1); [`IndexKind::Btree`]
//! additionally serves ordered range probes ([`Index::probe_range`]).
//! Durability is the engine's business: index *definitions* are logged and
//! carried in checkpoint images, index *contents* are always rebuilt from
//! the recovered heap (see `youtopia-wal`), which is why this module needs
//! no persistence of its own.

use crate::table::{Row, RowId};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// The backing structure of a named index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Hash map: equality probes only.
    Hash,
    /// Ordered map: equality and range probes.
    Btree,
}

impl IndexKind {
    /// The SQL keyword naming this kind (`USING HASH` / `USING BTREE`).
    pub fn keyword(&self) -> &'static str {
        match self {
            IndexKind::Hash => "HASH",
            IndexKind::Btree => "BTREE",
        }
    }
}

/// Key → row-id postings, in the shape the kind dictates.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum IndexData {
    Hash(HashMap<Value, Vec<RowId>>),
    Btree(BTreeMap<Value, Vec<RowId>>),
}

/// One named single-column secondary index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Index {
    name: String,
    column: usize,
    column_name: String,
    kind: IndexKind,
    data: IndexData,
}

impl Index {
    fn new(name: String, column: usize, column_name: String, kind: IndexKind) -> Index {
        let data = match kind {
            IndexKind::Hash => IndexData::Hash(HashMap::new()),
            IndexKind::Btree => IndexData::Btree(BTreeMap::new()),
        };
        Index {
            name,
            column,
            column_name,
            kind,
            data,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Position of the indexed column in the table's schema.
    pub fn column(&self) -> usize {
        self.column
    }

    pub fn column_name(&self) -> &str {
        &self.column_name
    }

    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Row ids whose indexed column equals `key` (unordered; may include
    /// ids the caller must still check for liveness/visibility).
    pub fn probe(&self, key: &Value) -> &[RowId] {
        match &self.data {
            IndexData::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
            IndexData::Btree(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Row ids whose indexed column falls in the given bounds, in key
    /// order. `None` for hash indexes, which cannot serve ranges.
    pub fn probe_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Option<Vec<RowId>> {
        match &self.data {
            IndexData::Hash(_) => None,
            IndexData::Btree(m) => Some(
                m.range::<Value, _>((lo, hi))
                    .flat_map(|(_, ids)| ids.iter().copied())
                    .collect(),
            ),
        }
    }

    /// Number of distinct keys currently indexed.
    pub fn key_count(&self) -> usize {
        match &self.data {
            IndexData::Hash(m) => m.len(),
            IndexData::Btree(m) => m.len(),
        }
    }

    /// All postings as `(key, sorted row ids)`, sorted by key — the
    /// canonical form coherence tests compare against a heap-rebuilt
    /// oracle.
    pub fn entries(&self) -> Vec<(Value, Vec<RowId>)> {
        let mut out: Vec<(Value, Vec<RowId>)> = match &self.data {
            IndexData::Hash(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            IndexData::Btree(m) => m.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        };
        for (_, ids) in &mut out {
            ids.sort_unstable();
        }
        out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn insert(&mut self, id: RowId, key: Value) {
        match &mut self.data {
            IndexData::Hash(m) => m.entry(key).or_default().push(id),
            IndexData::Btree(m) => m.entry(key).or_default().push(id),
        }
    }

    fn remove(&mut self, id: RowId, key: &Value) {
        let drained = match &mut self.data {
            IndexData::Hash(m) => {
                if let Some(v) = m.get_mut(key) {
                    v.retain(|r| *r != id);
                    v.is_empty()
                } else {
                    false
                }
            }
            IndexData::Btree(m) => {
                if let Some(v) = m.get_mut(key) {
                    v.retain(|r| *r != id);
                    v.is_empty()
                } else {
                    false
                }
            }
        };
        if drained {
            match &mut self.data {
                IndexData::Hash(m) => {
                    m.remove(key);
                }
                IndexData::Btree(m) => {
                    m.remove(key);
                }
            }
        }
    }

    fn clear(&mut self) {
        match &mut self.data {
            IndexData::Hash(m) => m.clear(),
            IndexData::Btree(m) => m.clear(),
        }
    }
}

/// All named indexes of one table, maintained as a unit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IndexSet {
    indexes: Vec<Index>,
}

impl IndexSet {
    /// Declare an index. Idempotent when an index of the same name,
    /// column and kind already exists (returns `false`); errors if the
    /// name is taken by a different definition.
    pub fn create(
        &mut self,
        name: &str,
        column: usize,
        column_name: &str,
        kind: IndexKind,
    ) -> Result<bool, String> {
        if let Some(ix) = self.get(name) {
            if ix.column == column && ix.kind == kind {
                return Ok(false);
            }
            return Err(format!(
                "index {name} already exists with a different definition"
            ));
        }
        self.indexes.push(Index::new(
            name.to_string(),
            column,
            column_name.to_string(),
            kind,
        ));
        Ok(true)
    }

    /// Find an index by name (ASCII-case-insensitive, like the catalog).
    pub fn get(&self, name: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.name.eq_ignore_ascii_case(name))
    }

    /// The first index over `column`, preferring a hash index for the
    /// equality probes the executor issues most.
    pub fn on_column(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .filter(|ix| ix.column == column)
            .min_by_key(|ix| match ix.kind {
                IndexKind::Hash => 0,
                IndexKind::Btree => 1,
            })
    }

    /// A btree index over `column`, for range probes.
    pub fn btree_on_column(&self, column: usize) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|ix| ix.column == column && ix.kind == IndexKind::Btree)
    }

    /// A copy carrying the same definitions but no contents (snapshot
    /// materialization clones definitions, then rebuilds from the copy).
    pub fn defs_only(&self) -> IndexSet {
        IndexSet {
            indexes: self
                .indexes
                .iter()
                .map(|ix| Index::new(ix.name.clone(), ix.column, ix.column_name.clone(), ix.kind))
                .collect(),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &Index> + '_ {
        self.indexes.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    // -- maintenance, called by the owning table inside heap mutations --

    pub(crate) fn insert_row(&mut self, id: RowId, row: &Row) {
        for ix in &mut self.indexes {
            ix.insert(id, row[ix.column].clone());
        }
    }

    pub(crate) fn remove_row(&mut self, id: RowId, row: &Row) {
        for ix in &mut self.indexes {
            ix.remove(id, &row[ix.column]);
        }
    }

    pub(crate) fn update_row(&mut self, id: RowId, old: &Row, new: &Row) {
        for ix in &mut self.indexes {
            if old[ix.column] != new[ix.column] {
                ix.remove(id, &old[ix.column]);
                ix.insert(id, new[ix.column].clone());
            }
        }
    }

    pub(crate) fn clear(&mut self) {
        for ix in &mut self.indexes {
            ix.clear();
        }
    }

    /// Rebuild every index's contents from the given live rows (recovery,
    /// snapshot materialization).
    pub(crate) fn rebuild<'a>(&mut self, rows: impl Iterator<Item = (RowId, &'a Row)>) {
        self.clear();
        for (id, row) in rows {
            self.insert_row(id, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Row {
        vec![Value::Int(v), Value::str("x")]
    }

    fn set() -> IndexSet {
        let mut s = IndexSet::default();
        s.create("h", 0, "a", IndexKind::Hash).unwrap();
        s.create("b", 0, "a", IndexKind::Btree).unwrap();
        s
    }

    #[test]
    fn create_is_idempotent_and_conflicts_error() {
        let mut s = set();
        assert_eq!(s.create("h", 0, "a", IndexKind::Hash), Ok(false));
        assert!(s.create("H", 1, "b", IndexKind::Hash).is_err());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn probe_and_maintenance() {
        let mut s = set();
        s.insert_row(RowId(0), &row(5));
        s.insert_row(RowId(1), &row(5));
        s.insert_row(RowId(2), &row(9));
        let h = s.get("h").unwrap();
        assert_eq!(h.probe(&Value::Int(5)), &[RowId(0), RowId(1)]);
        assert_eq!(h.probe(&Value::Int(7)), &[] as &[RowId]);
        s.remove_row(RowId(0), &row(5));
        assert_eq!(s.get("b").unwrap().probe(&Value::Int(5)), &[RowId(1)]);
        s.update_row(RowId(1), &row(5), &row(9));
        assert!(s.get("h").unwrap().probe(&Value::Int(5)).is_empty());
        let mut nine = s.get("b").unwrap().probe(&Value::Int(9)).to_vec();
        nine.sort_unstable();
        assert_eq!(nine, vec![RowId(1), RowId(2)]);
    }

    #[test]
    fn range_probe_btree_only() {
        let mut s = set();
        for (i, v) in [3, 1, 7, 5].into_iter().enumerate() {
            s.insert_row(RowId(i as u64), &row(v));
        }
        let b = s.get("b").unwrap();
        let ids = b
            .probe_range(
                Bound::Included(&Value::Int(3)),
                Bound::Excluded(&Value::Int(7)),
            )
            .unwrap();
        assert_eq!(ids, vec![RowId(0), RowId(3)], "key order: 3 then 5");
        assert!(s
            .get("h")
            .unwrap()
            .probe_range(Bound::Unbounded, Bound::Unbounded)
            .is_none());
    }

    #[test]
    fn entries_are_canonical_and_rebuild_matches() {
        let mut s = set();
        s.insert_row(RowId(1), &row(4));
        s.insert_row(RowId(0), &row(4));
        s.insert_row(RowId(2), &row(2));
        let before = s.get("b").unwrap().entries();
        assert_eq!(before[0].0, Value::Int(2));
        assert_eq!(before[1].1, vec![RowId(0), RowId(1)], "ids sorted");
        let rows = [(RowId(1), row(4)), (RowId(0), row(4)), (RowId(2), row(2))];
        let mut rebuilt = s.clone();
        rebuilt.rebuild(rows.iter().map(|(id, r)| (*id, r)));
        assert_eq!(rebuilt.get("b").unwrap().entries(), before);
        assert_eq!(rebuilt.get("h").unwrap().entries(), before);
        assert_eq!(s.get("h").unwrap().key_count(), 2);
    }
}
