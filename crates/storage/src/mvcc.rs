//! Multi-version row storage: per-row version chains keyed by commit
//! timestamp, and the snapshot registry that hands out read timestamps.
//!
//! ## Why versions exist
//!
//! Strict 2PL alone makes every reader queue behind writers (an S lock
//! conflicts with IX/X), even when the reader is a pure SELECT transaction
//! that could happily run against a slightly older committed state. This
//! module gives the storage substrate a second, lock-free read path:
//!
//! * every committed write **installs a version** — `(commit timestamp,
//!   row value)` — into the row's [`VersionChain`] (a deletion installs a
//!   tombstone version);
//! * a read-only transaction **pins a snapshot**: the current *stable
//!   frontier* of the [`SnapshotRegistry`] (the largest timestamp `F` such
//!   that every commit with timestamp ≤ `F` has fully installed its
//!   versions);
//! * the **visibility rule**: at snapshot `S`, a row's visible value is
//!   the newest version with `ts <= S` (none, or a tombstone, means the
//!   row does not exist at `S`). Uncommitted working state never enters a
//!   chain, so a snapshot can never observe dirty or half-committed data.
//!
//! ## Garbage collection
//!
//! Versions accumulate as writers commit. [`VersionChain::prune`] reclaims
//! every version that is superseded by a newer version whose timestamp is
//! still at or below the *horizon* — the oldest timestamp any live
//! snapshot still pins ([`SnapshotRegistry::horizon`]). Pruning is safe
//! because a reader pinned at `S >= horizon` resolves to the newest
//! version `<= S`, and the newest version `<= horizon` (the one pruning
//! keeps) is at or below that.
//!
//! Writers and entangled grounding reads never look at chains: they run on
//! the working slots under 2PL exactly as before (the §3.3.3 argument for
//! grounding-read S locks is untouched).
//!
//! ## Example: snapshot visibility vs. read-your-writes
//!
//! The locked path reads the *working* state (a transaction sees its own
//! uncommitted writes); the snapshot path sees only versions installed at
//! or before its pin:
//!
//! ```
//! use youtopia_storage::{Schema, Table, Value, ValueType};
//!
//! let mut t = Table::new("Accounts", Schema::of(&[("balance", ValueType::Int)]));
//! let id = t.insert(vec![Value::Int(100)]).unwrap();
//! t.install_version(id, 1, Some(vec![Value::Int(100)])); // committed @ ts 1
//!
//! // A writer (holding its 2PL X lock) updates the working row…
//! t.update(id, vec![Value::Int(42)]).unwrap();
//! // …and *it* reads its own write through the working state:
//! assert_eq!(t.get(id).unwrap()[0], Value::Int(42));
//! // …but a snapshot pinned at ts 1 still sees the committed value:
//! assert_eq!(t.snapshot_at(1).get(id).unwrap()[0], Value::Int(100));
//!
//! // Only at commit does the new version become visible to later pins:
//! t.install_version(id, 2, Some(vec![Value::Int(42)]));
//! assert_eq!(t.snapshot_at(2).get(id).unwrap()[0], Value::Int(42));
//! assert_eq!(t.snapshot_at(1).get(id).unwrap()[0], Value::Int(100));
//! ```

use crate::table::Row;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// A commit timestamp. `0` is "before all data"; the bootstrap commit
/// installs at `1`.
pub type CommitTs = u64;

/// One committed version of a row: its value as of `ts`, or a tombstone
/// (`None`) if the row was deleted by the commit at `ts`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Version {
    pub ts: CommitTs,
    pub row: Option<Row>,
}

/// The committed history of one row slot, oldest first.
///
/// Installs arrive in timestamp order *per chain*: conflicting writers are
/// serialized by 2PL (the second writer can only touch the row after the
/// first released its locks, which happens after the first installed), so
/// a chain never needs sorting. [`VersionChain::visible`] still scans for
/// the maximum qualifying timestamp, so the rule holds even for
/// hand-assembled chains.
///
/// ```
/// use youtopia_storage::mvcc::VersionChain;
/// use youtopia_storage::Value;
///
/// let mut chain = VersionChain::default();
/// chain.install(2, Some(vec![Value::Int(10)]));
/// chain.install(5, Some(vec![Value::Int(20)]));
/// chain.install(9, None); // deleted at ts 9
///
/// assert!(chain.visible(1).is_none(), "before the first version");
/// assert_eq!(chain.visible(2).unwrap()[0], Value::Int(10));
/// assert_eq!(chain.visible(7).unwrap()[0], Value::Int(20));
/// assert!(chain.visible(9).is_none(), "tombstone hides the row");
///
/// // GC: with no snapshot older than ts 6 alive, ts-2 is superseded.
/// assert_eq!(chain.prune(6), 1);
/// assert_eq!(chain.visible(7).unwrap()[0], Value::Int(20));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VersionChain {
    versions: Vec<Version>,
}

impl VersionChain {
    /// Install the committed value (or tombstone) of this row at `ts`.
    /// A chain keeps **one** version per commit timestamp: when a
    /// transaction touches the same row several times (insert → update →
    /// delete), later installs at the same `ts` replace the earlier ones —
    /// only the transaction's final state is a committed version.
    pub fn install(&mut self, ts: CommitTs, row: Option<Row>) {
        if let Some(last) = self.versions.last_mut() {
            if last.ts == ts {
                last.row = row;
                return;
            }
        }
        self.versions.push(Version { ts, row });
    }

    /// The row value visible to a snapshot pinned at `ts`: the newest
    /// version with `version.ts <= ts`; `None` if no version qualifies or
    /// the qualifying version is a tombstone.
    pub fn visible(&self, ts: CommitTs) -> Option<&Row> {
        self.versions
            .iter()
            .filter(|v| v.ts <= ts)
            .max_by_key(|v| v.ts)
            .and_then(|v| v.row.as_ref())
    }

    /// Drop every version that no live snapshot can reach: a version is
    /// reclaimable when a *newer* version with `ts <= horizon` supersedes
    /// it. Tombstones at or below the horizon with nothing newer are also
    /// dropped (the row is dead for every reachable snapshot). Returns the
    /// number of versions reclaimed.
    pub fn prune(&mut self, horizon: CommitTs) -> usize {
        let newest_at_horizon = self
            .versions
            .iter()
            .filter(|v| v.ts <= horizon)
            .map(|v| v.ts)
            .max();
        let Some(keep) = newest_at_horizon else {
            return 0;
        };
        let before = self.versions.len();
        self.versions
            .retain(|v| v.ts > keep || (v.ts == keep && v.row.is_some()));
        before - self.versions.len()
    }

    /// Iterate the non-tombstone row values of every retained version —
    /// the keys vacuum must keep posted in the named indexes so snapshot
    /// readers can probe for rows whose working state has moved on.
    pub fn version_rows(&self) -> impl Iterator<Item = &Row> + '_ {
        self.versions.iter().filter_map(|v| v.row.as_ref())
    }

    /// The largest timestamp of any retained version (0 if none).
    pub fn max_ts(&self) -> CommitTs {
        self.versions.iter().map(|v| v.ts).max().unwrap_or(0)
    }

    /// Number of versions currently retained.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// Drop all history (used when a recovered table is re-sealed).
    pub fn clear(&mut self) {
        self.versions.clear();
    }
}

/// Hands out commit timestamps to writers and snapshot timestamps to
/// readers, and tracks which snapshots are still alive (the GC horizon).
///
/// The subtlety is out-of-order completion: commit batches *reserve*
/// timestamps in publish order but may finish installing their versions in
/// any order (they run on different scheduler threads). The **stable
/// frontier** only advances to `ts` once every batch with a timestamp
/// `<= ts` has completed, so a reader pinned at the frontier can never
/// observe a half-installed commit — and never misses a fully-installed
/// one below its pin.
#[derive(Debug, Default)]
pub struct SnapshotRegistry {
    /// Next timestamp to hand to a reserving commit batch (frontier-ahead).
    next: AtomicU64,
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// Largest `ts` with every reservation `<= ts` completed.
    frontier: CommitTs,
    /// Completed reservations above the frontier (waiting on a gap).
    completed: BTreeSet<CommitTs>,
    /// Live snapshot pins: timestamp → refcount.
    pins: BTreeMap<CommitTs, usize>,
}

impl SnapshotRegistry {
    pub fn new() -> SnapshotRegistry {
        SnapshotRegistry::default()
    }

    /// Reserve the next commit timestamp (called once per commit batch,
    /// before its WAL publish, so the `Commit` records can carry it).
    pub fn reserve(&self) -> CommitTs {
        self.next.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Mark a reserved timestamp as fully installed. Returns the new
    /// stable frontier (which may still be below `ts` if an older batch
    /// has not completed yet).
    pub fn complete(&self, ts: CommitTs) -> CommitTs {
        let mut g = self.inner.lock();
        g.completed.insert(ts);
        loop {
            let next = g.frontier + 1;
            if !g.completed.remove(&next) {
                break;
            }
            g.frontier = next;
        }
        g.frontier
    }

    /// The current stable frontier.
    pub fn frontier(&self) -> CommitTs {
        self.inner.lock().frontier
    }

    /// Pin a snapshot at the stable frontier; pair with
    /// [`SnapshotRegistry::unpin`].
    pub fn pin(&self) -> CommitTs {
        let mut g = self.inner.lock();
        let ts = g.frontier;
        *g.pins.entry(ts).or_insert(0) += 1;
        ts
    }

    /// Release a pin taken by [`SnapshotRegistry::pin`].
    pub fn unpin(&self, ts: CommitTs) {
        let mut g = self.inner.lock();
        if let Some(n) = g.pins.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                g.pins.remove(&ts);
            }
        }
    }

    /// The GC horizon: the oldest live snapshot, or the frontier when no
    /// snapshot is pinned. Versions superseded at or below this are
    /// unreachable.
    pub fn horizon(&self) -> CommitTs {
        let g = self.inner.lock();
        g.pins.keys().next().copied().unwrap_or(g.frontier)
    }

    /// Number of live pins (diagnostics/tests).
    pub fn live_pins(&self) -> usize {
        self.inner.lock().pins.values().sum()
    }

    /// Reset after recovery: the clock restarts at `ts` (all pre-crash
    /// snapshots are gone; the recovered state is sealed at `ts`).
    pub fn reset_to(&self, ts: CommitTs) {
        self.next.store(ts, Ordering::SeqCst);
        let mut g = self.inner.lock();
        g.frontier = ts;
        g.completed.clear();
        g.pins.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(v: i64) -> Row {
        vec![Value::Int(v)]
    }

    #[test]
    fn visibility_picks_newest_at_or_below() {
        let mut c = VersionChain::default();
        c.install(2, Some(row(10)));
        c.install(4, Some(row(20)));
        assert!(c.visible(0).is_none());
        assert!(c.visible(1).is_none());
        assert_eq!(c.visible(2).unwrap()[0], Value::Int(10));
        assert_eq!(c.visible(3).unwrap()[0], Value::Int(10));
        assert_eq!(c.visible(4).unwrap()[0], Value::Int(20));
        assert_eq!(c.visible(u64::MAX).unwrap()[0], Value::Int(20));
    }

    #[test]
    fn tombstones_hide_rows() {
        let mut c = VersionChain::default();
        c.install(1, Some(row(1)));
        c.install(3, None);
        c.install(5, Some(row(2)));
        assert_eq!(c.visible(2).unwrap()[0], Value::Int(1));
        assert!(c.visible(3).is_none());
        assert!(c.visible(4).is_none());
        assert_eq!(c.visible(5).unwrap()[0], Value::Int(2));
    }

    #[test]
    fn prune_keeps_the_horizon_version_and_everything_newer() {
        let mut c = VersionChain::default();
        c.install(1, Some(row(1)));
        c.install(3, Some(row(3)));
        c.install(7, Some(row(7)));
        assert_eq!(c.prune(0), 0, "nothing reachable to supersede");
        assert_eq!(c.prune(4), 1, "ts-1 superseded by ts-3");
        assert_eq!(c.len(), 2);
        assert_eq!(c.visible(4).unwrap()[0], Value::Int(3));
        assert_eq!(c.prune(7), 1, "ts-3 superseded by ts-7");
        assert_eq!(c.visible(9).unwrap()[0], Value::Int(7));
        assert_eq!(c.prune(9), 0, "latest version never pruned");
    }

    #[test]
    fn prune_drops_dead_tombstones() {
        let mut c = VersionChain::default();
        c.install(1, Some(row(1)));
        c.install(2, None);
        assert_eq!(c.prune(5), 2, "tombstone + its predecessor both dead");
        assert!(c.is_empty());
        // But a tombstone above the horizon survives.
        let mut c = VersionChain::default();
        c.install(1, Some(row(1)));
        c.install(9, None);
        assert_eq!(c.prune(5), 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn registry_frontier_waits_for_gaps() {
        let r = SnapshotRegistry::new();
        let t1 = r.reserve();
        let t2 = r.reserve();
        assert_eq!((t1, t2), (1, 2));
        // t2 completes first: the frontier must not jump over t1.
        assert_eq!(r.complete(t2), 0);
        assert_eq!(r.frontier(), 0);
        assert_eq!(r.complete(t1), 2, "gap filled, frontier covers both");
        assert_eq!(r.frontier(), 2);
    }

    #[test]
    fn pins_hold_the_horizon_back() {
        let r = SnapshotRegistry::new();
        let t1 = r.reserve();
        r.complete(t1);
        let s1 = r.pin();
        assert_eq!(s1, 1);
        let t2 = r.reserve();
        r.complete(t2);
        assert_eq!(r.frontier(), 2);
        assert_eq!(r.horizon(), 1, "oldest live pin, not the frontier");
        let s2 = r.pin();
        assert_eq!(s2, 2);
        r.unpin(s1);
        assert_eq!(r.horizon(), 2);
        r.unpin(s2);
        assert_eq!(r.horizon(), 2, "no pins: horizon = frontier");
        assert_eq!(r.live_pins(), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let r = SnapshotRegistry::new();
        let t = r.reserve();
        r.complete(t);
        r.pin();
        r.reset_to(7);
        assert_eq!(r.frontier(), 7);
        assert_eq!(r.live_pins(), 0);
        assert_eq!(r.reserve(), 8, "clock restarts past the seal point");
    }
}
