//! # youtopia-storage
//!
//! The relational storage substrate for the *Entangled Transactions*
//! reproduction (Gupta et al., PVLDB 4(7), 2011).
//!
//! The paper's prototype is a middle tier over MySQL/InnoDB; this crate is
//! the from-scratch replacement for the parts of that DBMS the middleware
//! actually exercises: a catalog of in-memory heap tables with stable row
//! ids, hash indexes, typed values (including the dates the travel scenario
//! manipulates), resolved scalar expressions, and a select-project-join
//! evaluator used both for classical statements and for *grounding*
//! entangled queries (Appendix A of the paper).
//!
//! Concurrency *control* and durability deliberately live elsewhere
//! (`youtopia-lock` and `youtopia-wal`): this crate is the data plane,
//! mirroring how the paper's middleware treats the DBMS as a data service
//! and layers entanglement logic on top. It comes in two forms sharing one
//! [`TableProvider`] interface: the single-threaded [`Database`]
//! (recovery, oracles, tests) and the [`ConcurrentCatalog`] of
//! independently lockable per-table handles the engine's hot path runs on
//! — physical latches only; transaction isolation stays with the lock
//! manager above.
//!
//! Since the multi-version work, tables carry a third face: per-row
//! [`mvcc::VersionChain`]s of *committed* values keyed by commit
//! timestamp, serving lock-free snapshot reads for read-only transactions
//! ([`Table::snapshot_at`], [`CatalogSnapshot::snapshot_tables`]). Writers
//! install versions only at commit; the [`mvcc::SnapshotRegistry`] tracks
//! the stable frontier readers pin and the horizon the garbage collector
//! prunes behind. See the [`mvcc`] module docs for the visibility and GC
//! rules.
//!
//! ```
//! use youtopia_storage::{Database, Schema, Value, ValueType};
//!
//! let mut db = Database::new();
//! db.create_table(
//!     "Flights",
//!     Schema::of(&[("fno", ValueType::Int), ("dest", ValueType::Str)]),
//! ).unwrap();
//! db.insert("Flights", vec![Value::Int(122), Value::str("LA")]).unwrap();
//! assert_eq!(db.table("Flights").unwrap().len(), 1);
//! ```

pub mod catalog;
pub mod concurrent;
pub mod expr;
pub mod index;
pub mod mvcc;
pub mod query;
pub mod schema;
pub mod shard;
pub mod table;
pub mod value;

pub use catalog::{Database, StorageError, TableProvider};
pub use concurrent::{CatalogSnapshot, ConcurrentCatalog, SnapshotTables, TableHandle, TableView};
pub use expr::{CmpOp, EvalError, Expr};
pub use index::{Index, IndexKind, IndexSet};
pub use mvcc::{CommitTs, SnapshotRegistry, VersionChain};
pub use query::{eval_spj, eval_spj_counted, eval_spj_rows, QueryOutput, ScanStats, SpjQuery};
pub use schema::{Column, Schema, SchemaError};
pub use shard::shard_of_table;
pub use table::{Row, RowId, Table};
pub use value::{Value, ValueType};
