//! Runtime values stored in tables and produced by queries.
//!
//! The paper's travel scenario needs integers, strings, dates (flight dates,
//! arrival days, `SET @StayLength = '2011-05-06' - @ArrivalDay` performs date
//! arithmetic) and booleans. All variants are totally ordered and hashable so
//! they can serve as join keys, index keys and unification constants in the
//! entangled-query engine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single column value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. Sorts before everything else; equal only to itself here
    /// (we use identity semantics, not three-valued logic, because the
    /// paper's dialect never compares NULLs).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Calendar date, stored as days since 1970-01-01.
    Date(i32),
    /// UTF-8 string.
    Str(String),
    /// Composite value: the key form of a multi-column index entry.
    /// Derived `Ord` compares element-wise, so a tuple sorts before every
    /// tuple it is a proper prefix of — which is exactly the property
    /// prefix range scans over composite btree keys rely on.
    Tuple(Vec<Value>),
}

impl Value {
    /// The type tag of this value, for schema checking.
    pub fn ty(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Date(_) => ValueType::Date,
            Value::Str(_) => ValueType::Str,
            Value::Tuple(_) => ValueType::Tuple,
        }
    }

    /// True if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Parse an ISO `YYYY-MM-DD` date into a [`Value::Date`].
    ///
    /// Uses a proleptic-Gregorian day count; good for the full i32 range of
    /// years the workloads use.
    pub fn parse_date(s: &str) -> Option<Value> {
        let mut it = s.split('-');
        let y: i64 = it.next()?.parse().ok()?;
        let m: i64 = it.next()?.parse().ok()?;
        let d: i64 = it.next()?.parse().ok()?;
        if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
            return None;
        }
        Some(Value::Date(days_from_civil(y, m, d) as i32))
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Date accessor (days since epoch).
    pub fn as_date(&self) -> Option<i32> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Bool accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Subtraction as used by `SET @StayLength = date1 - date2`:
    /// date − date = int (days), int − int = int, date − int = date.
    pub fn sub(&self, rhs: &Value) -> Option<Value> {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a - b)),
            (Value::Date(a), Value::Date(b)) => Some(Value::Int((*a as i64) - (*b as i64))),
            (Value::Date(a), Value::Int(b)) => Some(Value::Date(a - *b as i32)),
            _ => None,
        }
    }

    /// Addition: int + int = int, date + int = date, int + date = date.
    pub fn add(&self, rhs: &Value) -> Option<Value> {
        match (self, rhs) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a + b)),
            (Value::Date(a), Value::Int(b)) => Some(Value::Date(a + *b as i32)),
            (Value::Int(a), Value::Date(b)) => Some(Value::Date(b + *a as i32)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Date(d) => {
                let (y, m, dd) = civil_from_days(*d as i64);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Type tags for schema declarations and checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    Null,
    Bool,
    Int,
    Date,
    Str,
    Tuple,
}

impl ValueType {
    /// Whether a value of type `v` may be stored in a column of this type.
    /// NULL is storable anywhere (columns are implicitly nullable).
    pub fn accepts(&self, v: ValueType) -> bool {
        v == ValueType::Null || *self == v
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "NULL",
            ValueType::Bool => "BOOL",
            ValueType::Int => "INT",
            ValueType::Date => "DATE",
            ValueType::Str => "TEXT",
            ValueType::Tuple => "TUPLE",
        };
        f.write_str(s)
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian civil date
/// (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe - 719468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for s in [
            "1970-01-01",
            "2011-05-06",
            "2011-05-03",
            "1999-12-31",
            "2400-02-29",
        ] {
            let v = Value::parse_date(s).unwrap();
            assert_eq!(v.to_string(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn date_epoch_is_zero() {
        assert_eq!(Value::parse_date("1970-01-01"), Some(Value::Date(0)));
        assert_eq!(Value::parse_date("1970-01-02"), Some(Value::Date(1)));
    }

    #[test]
    fn bad_dates_rejected() {
        assert_eq!(Value::parse_date("2011-13-01"), None);
        assert_eq!(Value::parse_date("2011-00-01"), None);
        assert_eq!(Value::parse_date("2011-01-32"), None);
        assert_eq!(Value::parse_date("not-a-date"), None);
        assert_eq!(Value::parse_date("2011-01"), None);
        assert_eq!(Value::parse_date("2011-01-01-01"), None);
    }

    #[test]
    fn date_arithmetic() {
        let a = Value::parse_date("2011-05-03").unwrap();
        let b = Value::parse_date("2011-05-06").unwrap();
        assert_eq!(b.sub(&a), Some(Value::Int(3)));
        assert_eq!(a.add(&Value::Int(3)), Some(b.clone()));
        assert_eq!(b.sub(&Value::Int(3)), Some(a));
        assert_eq!(Value::Int(10).sub(&Value::Int(4)), Some(Value::Int(6)));
        assert_eq!(Value::str("x").sub(&Value::Int(1)), None);
    }

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vs = [
            Value::str("b"),
            Value::Int(2),
            Value::Null,
            Value::Bool(true),
            Value::Date(5),
            Value::Int(1),
            Value::str("a"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        let ints: Vec<_> = vs.iter().filter_map(|v| v.as_int()).collect();
        assert_eq!(ints, vec![1, 2]);
    }

    #[test]
    fn type_acceptance() {
        assert!(ValueType::Int.accepts(ValueType::Int));
        assert!(ValueType::Int.accepts(ValueType::Null));
        assert!(!ValueType::Int.accepts(ValueType::Str));
        assert!(ValueType::Str.accepts(Value::str("x").ty()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::str("LA").to_string(), "LA");
    }

    #[test]
    fn tuple_prefix_sorts_before_extensions() {
        // The composite-key invariant: `(a)` < `(a, x)` for every `x`, and
        // tuples order lexicographically by component.
        let prefix = Value::Tuple(vec![Value::Int(5)]);
        let low = Value::Tuple(vec![Value::Int(5), Value::Null]);
        let high = Value::Tuple(vec![Value::Int(5), Value::str("zz")]);
        let next = Value::Tuple(vec![Value::Int(6)]);
        assert!(prefix < low && low < high && high < next);
        assert_eq!(
            Value::Tuple(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "(1, 2)"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Date(3).as_date(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }
}
