//! Table schemas and the error type shared across the storage crate.

use crate::value::{Value, ValueType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    pub name: String,
    pub ty: ValueType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns. Column names are case-insensitive, matching
/// the paper's SQL examples which mix cases freely.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; returns an error on duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Schema, SchemaError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|o| o.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(SchemaError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on
    /// duplicates (intended for statically-known schemas in tests/workloads).
    pub fn of(cols: &[(&str, ValueType)]) -> Schema {
        Schema::new(cols.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("static schema must not contain duplicate columns")
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Check that a row matches this schema (arity and column types).
    pub fn check_row(&self, row: &[Value]) -> Result<(), SchemaError> {
        if row.len() != self.columns.len() {
            return Err(SchemaError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if !c.ty.accepts(v.ty()) {
                return Err(SchemaError::TypeMismatch {
                    column: c.name.clone(),
                    expected: c.ty,
                    got: v.ty(),
                });
            }
        }
        Ok(())
    }
}

/// Errors raised by schema construction and row validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    DuplicateColumn(String),
    ArityMismatch {
        expected: usize,
        got: usize,
    },
    TypeMismatch {
        column: String,
        expected: ValueType,
        got: ValueType,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateColumn(c) => write!(f, "duplicate column `{c}`"),
            SchemaError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            SchemaError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(f, "column `{column}` expects {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights() -> Schema {
        Schema::of(&[
            ("fno", ValueType::Int),
            ("fdate", ValueType::Date),
            ("dest", ValueType::Str),
        ])
    }

    #[test]
    fn index_is_case_insensitive() {
        let s = flights();
        assert_eq!(s.index_of("FNO"), Some(0));
        assert_eq!(s.index_of("fdate"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = Schema::new(vec![
            Column::new("a", ValueType::Int),
            Column::new("A", ValueType::Str),
        ])
        .unwrap_err();
        assert_eq!(err, SchemaError::DuplicateColumn("A".into()));
    }

    #[test]
    fn row_checking() {
        let s = flights();
        assert!(s
            .check_row(&[Value::Int(122), Value::Date(1), Value::str("LA")])
            .is_ok());
        // NULL is allowed in any column.
        assert!(s
            .check_row(&[Value::Null, Value::Null, Value::Null])
            .is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(122), Value::Date(1)]),
            Err(SchemaError::ArityMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            s.check_row(&[Value::str("x"), Value::Date(1), Value::str("LA")]),
            Err(SchemaError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn arity_and_accessors() {
        let s = flights();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(2).unwrap().name, "dest");
        assert!(s.column(3).is_none());
        assert_eq!(s.columns().len(), 3);
    }
}
