//! The catalog: a named collection of tables forming one database.
//!
//! The engine wraps a [`Database`] in shared-state synchronization at a
//! higher layer; the catalog itself is a plain single-threaded structure so
//! the isolation story lives entirely in the lock manager, as in the paper's
//! prototype (which delegated locking to the DBMS).

use crate::schema::Schema;
use crate::table::{Row, RowId, Table};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by catalog and data operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    NoSuchTable(String),
    TableExists(String),
    NoSuchRow { table: String, row: RowId },
    Schema(crate::schema::SchemaError),
    NoSuchColumn { table: String, column: String },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            StorageError::TableExists(t) => write!(f, "table `{t}` already exists"),
            StorageError::NoSuchRow { table, row } => write!(f, "no row {row} in `{table}`"),
            StorageError::Schema(e) => write!(f, "schema error: {e}"),
            StorageError::NoSuchColumn { table, column } => {
                write!(f, "no column `{column}` in `{table}`")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<crate::schema::SchemaError> for StorageError {
    fn from(e: crate::schema::SchemaError) -> Self {
        StorageError::Schema(e)
    }
}

/// Read access to tables by (case-insensitive) name.
///
/// Implemented by the single-threaded [`Database`] and by pinned views over
/// the concurrent catalog ([`crate::concurrent::TableView`]), so lowering,
/// grounding and SPJ evaluation run identically against either: a plain
/// owned database (recovery, oracles, tests) or a set of latched table
/// handles inside the engine's hot path.
pub trait TableProvider {
    /// Look up a table by name.
    fn table(&self, name: &str) -> Result<&Table, StorageError>;
}

/// A database: table name → table. Names are case-insensitive and stored
/// lower-cased; the original casing is kept inside [`Table::name`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl TableProvider for Database {
    fn table(&self, name: &str) -> Result<&Table, StorageError> {
        Database::table(self, name)
    }
}

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    pub(crate) fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Assemble a database from already-built tables (keys are re-derived
    /// from each table's own name).
    pub fn from_tables(tables: impl IntoIterator<Item = Table>) -> Database {
        Database {
            tables: tables
                .into_iter()
                .map(|t| (Self::key(t.name()), t))
                .collect(),
        }
    }

    /// Decompose into the owned tables (used to load a recovered database
    /// into a concurrent catalog).
    pub fn into_tables(self) -> impl Iterator<Item = Table> {
        self.tables.into_values()
    }

    /// Create a table; errors if one with the same (case-insensitive) name
    /// exists.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), StorageError> {
        let key = Self::key(name);
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        self.tables.insert(key, Table::new(name, schema));
        Ok(())
    }

    /// Adopt an already-built table (the key is re-derived from its own
    /// name; replaces any existing entry). Used when merging per-shard
    /// recovery partitions, whose table sets are disjoint.
    pub fn adopt_table(&mut self, t: Table) {
        self.tables.insert(Self::key(t.name()), t);
    }

    /// Create a table, replacing any existing one (used by recovery).
    pub fn create_or_replace_table(&mut self, name: &str, schema: Schema) {
        self.tables
            .insert(Self::key(name), Table::new(name, schema));
    }

    pub fn drop_table(&mut self, name: &str) -> Result<(), StorageError> {
        self.tables
            .remove(&Self::key(name))
            .map(|_| ())
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// All table names, in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name().to_string()).collect()
    }

    /// Insert convenience used pervasively by workloads and tests.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<RowId, StorageError> {
        Ok(self.table_mut(table)?.insert(row)?)
    }

    /// Fetch a row by id.
    pub fn get(&self, table: &str, id: RowId) -> Result<&Row, StorageError> {
        self.table(table)?
            .get(id)
            .ok_or_else(|| StorageError::NoSuchRow {
                table: table.to_string(),
                row: id,
            })
    }

    /// Delete a row by id, returning the before-image.
    pub fn delete(&mut self, table: &str, id: RowId) -> Result<Row, StorageError> {
        let t = self.table_mut(table)?;
        t.delete(id).ok_or_else(|| StorageError::NoSuchRow {
            table: table.to_string(),
            row: id,
        })
    }

    /// Update a row by id, returning the before-image.
    pub fn update(&mut self, table: &str, id: RowId, new: Row) -> Result<Row, StorageError> {
        let t = self.table_mut(table)?;
        t.update(id, new)?.ok_or_else(|| StorageError::NoSuchRow {
            table: table.to_string(),
            row: id,
        })
    }

    /// Total live rows across all tables (diagnostics).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Materialize the full contents of a table as sorted rows — the
    /// canonical form used for final-state equivalence checks
    /// (oracle-serializability compares *final databases*, Def. C.7).
    pub fn canonical_rows(&self, table: &str) -> Result<Vec<Row>, StorageError> {
        let mut rows: Vec<Row> = self.table(table)?.scan().map(|(_, r)| r.clone()).collect();
        rows.sort();
        Ok(rows)
    }

    /// Canonical form of the entire database: table name → sorted rows.
    pub fn canonical(&self) -> BTreeMap<String, Vec<Row>> {
        self.tables
            .iter()
            .map(|(k, t)| {
                (k.clone(), {
                    let mut rows: Vec<Row> = t.scan().map(|(_, r)| r.clone()).collect();
                    rows.sort();
                    rows
                })
            })
            .collect()
    }

    /// Column index lookup with a storage-flavoured error.
    pub fn column_index(&self, table: &str, column: &str) -> Result<usize, StorageError> {
        self.table(table)?
            .schema()
            .index_of(column)
            .ok_or_else(|| StorageError::NoSuchColumn {
                table: table.to_string(),
                column: column.to_string(),
            })
    }

    /// Convenience: scan a table filtering on equality pairs
    /// (column name, value).
    pub fn select_eq(
        &self,
        table: &str,
        eqs: &[(&str, Value)],
    ) -> Result<Vec<(RowId, Row)>, StorageError> {
        let t = self.table(table)?;
        let pairs: Vec<(usize, &Value)> =
            eqs.iter()
                .map(|(c, v)| {
                    t.schema().index_of(c).map(|i| (i, v)).ok_or_else(|| {
                        StorageError::NoSuchColumn {
                            table: table.to_string(),
                            column: c.to_string(),
                        }
                    })
                })
                .collect::<Result<_, _>>()?;
        Ok(t.lookup(&pairs)
            .into_iter()
            .map(|(id, r)| (id, r.clone()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Flights",
            Schema::of(&[("fno", ValueType::Int), ("dest", ValueType::Str)]),
        )
        .unwrap();
        db.insert("Flights", vec![Value::Int(122), Value::str("LA")])
            .unwrap();
        db.insert("Flights", vec![Value::Int(235), Value::str("Paris")])
            .unwrap();
        db
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let db = db();
        assert!(db.has_table("flights"));
        assert!(db.has_table("FLIGHTS"));
        assert_eq!(db.table("fLiGhTs").unwrap().len(), 2);
        assert!(matches!(
            db.table("nope"),
            Err(StorageError::NoSuchTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let err = db
            .create_table("FLIGHTS", Schema::of(&[("x", ValueType::Int)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::TableExists(_)));
    }

    #[test]
    fn drop_table() {
        let mut db = db();
        db.drop_table("Flights").unwrap();
        assert!(!db.has_table("Flights"));
        assert!(db.drop_table("Flights").is_err());
    }

    #[test]
    fn crud_via_catalog() {
        let mut db = db();
        let id = db
            .insert("Flights", vec![Value::Int(300), Value::str("SF")])
            .unwrap();
        assert_eq!(db.get("Flights", id).unwrap()[1], Value::str("SF"));
        let before = db
            .update("Flights", id, vec![Value::Int(300), Value::str("NYC")])
            .unwrap();
        assert_eq!(before[1], Value::str("SF"));
        let gone = db.delete("Flights", id).unwrap();
        assert_eq!(gone[1], Value::str("NYC"));
        assert!(matches!(
            db.get("Flights", id),
            Err(StorageError::NoSuchRow { .. })
        ));
    }

    #[test]
    fn canonical_rows_sorted_and_stable() {
        let mut db = db();
        db.insert("Flights", vec![Value::Int(1), Value::str("AA")])
            .unwrap();
        let rows = db.canonical_rows("Flights").unwrap();
        assert_eq!(rows[0][0], Value::Int(1));
        let all = db.canonical();
        assert_eq!(all.len(), 1);
        assert_eq!(all["flights"].len(), 3);
    }

    #[test]
    fn select_eq_with_and_without_index() {
        let mut db = db();
        let hits = db
            .select_eq("Flights", &[("dest", Value::str("LA"))])
            .unwrap();
        assert_eq!(hits.len(), 1);
        db.table_mut("Flights")
            .unwrap()
            .create_index(&["dest"])
            .unwrap();
        let hits = db
            .select_eq("Flights", &[("dest", Value::str("LA"))])
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert!(db.select_eq("Flights", &[("bogus", Value::Null)]).is_err());
    }

    #[test]
    fn totals_and_names() {
        let db = db();
        assert_eq!(db.total_rows(), 2);
        assert_eq!(db.table_names(), vec!["Flights".to_string()]);
        assert_eq!(db.column_index("Flights", "dest").unwrap(), 1);
        assert!(db.column_index("Flights", "zzz").is_err());
    }
}
