//! Heap tables: slot-addressed in-memory row storage with stable [`RowId`]s,
//! plus optional hash indexes maintained on mutation.
//!
//! `RowId`s are never reused within a table's lifetime, so WAL records and
//! lock-manager resources can refer to them stably across
//! insert/delete/update sequences — the property ARIES-style undo/redo and
//! row-granularity locking both depend on.

use crate::index::{IndexKind, IndexSet};
use crate::mvcc::{CommitTs, VersionChain};
use crate::schema::{Schema, SchemaError};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Stable identifier of a row within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A stored row.
pub type Row = Vec<Value>;

/// A secondary hash index over a fixed set of columns.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HashIndex {
    cols: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<RowId>>,
}

impl HashIndex {
    fn key(&self, row: &[Value]) -> Vec<Value> {
        self.cols.iter().map(|&c| row[c].clone()).collect()
    }

    fn insert(&mut self, id: RowId, row: &[Value]) {
        self.map.entry(self.key(row)).or_default().push(id);
    }

    fn remove(&mut self, id: RowId, row: &[Value]) {
        let key = self.key(row);
        if let Some(v) = self.map.get_mut(&key) {
            v.retain(|r| *r != id);
            if v.is_empty() {
                self.map.remove(&key);
            }
        }
    }
}

/// An in-memory heap table.
///
/// Two read paths share the slot array's `RowId` space:
///
/// * the **working state** (`slots`) — what locked execution reads and
///   mutates in place; a transaction sees its own uncommitted writes here,
///   protected by its 2PL locks;
/// * the **committed history** (`chains`, parallel to `slots`) — per-row
///   [`VersionChain`]s that only ever receive values at commit time
///   ([`Table::install_version`]) and serve lock-free snapshot reads
///   ([`Table::snapshot_at`], [`Table::snapshot_scan`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Slot array; `None` marks a deleted row (tombstone). Index = RowId.
    slots: Vec<Option<Row>>,
    live: usize,
    indexes: Vec<HashIndex>,
    /// Named secondary indexes (`CREATE INDEX`), maintained as a
    /// *history-union superset* of the heap: every mutating method below
    /// posts new keys inside the same critical section that touches
    /// `slots`, but postings for removed or re-keyed rows linger until
    /// [`Table::resync_named_indexes`] (vacuum) reclaims them. The slack is
    /// what lets snapshot readers probe the live index for rows whose
    /// working state has moved on; every probe consumer re-checks
    /// liveness/visibility and the key predicate.
    named: IndexSet,
    /// Set when a named posting may have gone stale (delete, re-keying
    /// update, version prune); cleared by [`Table::resync_named_indexes`].
    postings_dirty: bool,
    /// Committed version history per slot (grown lazily; a slot with no
    /// chain has no committed versions yet). Index = RowId.
    chains: Vec<VersionChain>,
    /// Bumped on every committed-history mutation (install / seal /
    /// prune / truncate). Two calls to [`Table::snapshot_at`] with the
    /// same epoch and non-decreasing timestamps see identical data, which
    /// is what lets the engine memoize materializations of read-mostly
    /// tables instead of copying them per transaction.
    version_epoch: u64,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            slots: Vec::new(),
            live: 0,
            indexes: Vec::new(),
            named: IndexSet::default(),
            postings_dirty: false,
            chains: Vec::new(),
            version_epoch: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live (non-deleted) rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Create a hash index on the named columns. Idempotent for identical
    /// column sets. Returns the index's internal id.
    pub fn create_index(&mut self, columns: &[&str]) -> Result<usize, SchemaError> {
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .index_of(c)
                    .ok_or_else(|| SchemaError::DuplicateColumn(format!("unknown column {c}")))
            })
            .collect::<Result<_, _>>()?;
        if let Some(pos) = self.indexes.iter().position(|ix| ix.cols == cols) {
            return Ok(pos);
        }
        let mut ix = HashIndex {
            cols,
            map: HashMap::new(),
        };
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                ix.insert(RowId(i as u64), row);
            }
        }
        self.indexes.push(ix);
        Ok(self.indexes.len() - 1)
    }

    /// Declare a named secondary index over one or more columns and
    /// backfill it from the current heap and retained version history.
    /// Idempotent for an identical definition (returns `false`); a name
    /// clash with a different definition is an error.
    pub fn create_named_index(
        &mut self,
        name: &str,
        columns: &[&str],
        kind: IndexKind,
    ) -> Result<bool, SchemaError> {
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .index_of(c)
                    .ok_or_else(|| SchemaError::DuplicateColumn(format!("unknown column {c}")))
            })
            .collect::<Result<_, _>>()?;
        let created = self
            .named
            .create(
                name,
                cols,
                columns.iter().map(|c| c.to_string()).collect(),
                kind,
            )
            .map_err(SchemaError::DuplicateColumn)?;
        if created {
            self.rebuild_named_indexes();
        }
        Ok(created)
    }

    /// The table's named secondary indexes.
    pub fn named_indexes(&self) -> &IndexSet {
        &self.named
    }

    /// Rebuild every named index's contents from scratch: the live heap
    /// plus every retained committed version — the history-union postings
    /// snapshot readers probe (recovery, index creation, vacuum; normal
    /// execution maintains incrementally).
    pub fn rebuild_named_indexes(&mut self) {
        let slots = &self.slots;
        self.named.rebuild(
            slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r))),
        );
        for (i, chain) in self.chains.iter().enumerate() {
            for row in chain.version_rows() {
                self.named.insert_row(RowId(i as u64), row);
            }
        }
        self.postings_dirty = false;
    }

    /// Reclaim stale named-index postings if any mutation since the last
    /// resync may have produced one. Called by vacuum, after version
    /// pruning, so postings converge back to exactly the heap ∪ retained
    /// history. Returns whether a rebuild ran.
    pub fn resync_named_indexes(&mut self) -> bool {
        if !self.postings_dirty || self.named.is_empty() {
            return false;
        }
        self.rebuild_named_indexes();
        true
    }

    /// Insert a row, returning its new stable id.
    pub fn insert(&mut self, row: Row) -> Result<RowId, SchemaError> {
        self.schema.check_row(&row)?;
        let id = RowId(self.slots.len() as u64);
        for ix in &mut self.indexes {
            ix.insert(id, &row);
        }
        self.named.insert_row(id, &row);
        self.slots.push(Some(row));
        self.live += 1;
        Ok(id)
    }

    /// Re-insert a row at a specific id (used only by recovery redo, which
    /// replays inserts in LSN order so ids always land at or past the end).
    pub fn insert_at(&mut self, id: RowId, row: Row) -> Result<(), SchemaError> {
        self.schema.check_row(&row)?;
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        if self.slots[idx].is_none() {
            self.live += 1;
        } else if let Some(old) = &self.slots[idx] {
            let old = old.clone();
            for ix in &mut self.indexes {
                ix.remove(id, &old);
            }
            // Named postings for the old contents linger (vacuum's job).
            self.postings_dirty = !self.named.is_empty();
        }
        for ix in &mut self.indexes {
            ix.insert(id, &row);
        }
        self.named.insert_row(id, &row);
        self.slots[idx] = Some(row);
        Ok(())
    }

    /// Fetch a live row.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slots.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    /// Delete a row, returning its prior contents (the before-image the WAL
    /// needs).
    pub fn delete(&mut self, id: RowId) -> Option<Row> {
        let slot = self.slots.get_mut(id.0 as usize)?;
        let old = slot.take()?;
        for ix in &mut self.indexes {
            ix.remove(id, &old);
        }
        // The named posting stays: a snapshot reader pinned before this
        // delete commits must still find the row by probing. Vacuum
        // reclaims it once no retained version needs it.
        if !self.named.is_empty() {
            self.postings_dirty = true;
        }
        self.live -= 1;
        Some(old)
    }

    /// Overwrite a row in place, returning the before-image.
    pub fn update(&mut self, id: RowId, new: Row) -> Result<Option<Row>, SchemaError> {
        self.schema.check_row(&new)?;
        let Some(slot) = self.slots.get_mut(id.0 as usize) else {
            return Ok(None);
        };
        let Some(old) = slot.replace(new) else {
            *slot = None;
            return Ok(None);
        };
        let new_ref = slot.as_ref().expect("just replaced");
        let new_clone = new_ref.clone();
        for ix in &mut self.indexes {
            ix.remove(id, &old);
            ix.insert(id, &new_clone);
        }
        // Post the new key; the old key's posting stays for snapshot
        // readers until vacuum reclaims it.
        if self.named.post_update(id, &old, &new_clone) {
            self.postings_dirty = true;
        }
        Ok(Some(old))
    }

    /// Iterate over live rows in id order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u64), r)))
    }

    /// Look up rows by an exact match on an indexed column set; falls back to
    /// a scan when no index covers the columns. `pairs` maps column index →
    /// required value.
    pub fn lookup(&self, pairs: &[(usize, &Value)]) -> Vec<(RowId, &Row)> {
        if let Some(hits) = self.lookup_indexed(pairs) {
            return hits;
        }
        self.scan()
            .filter(|(_, row)| pairs.iter().all(|(c, v)| &row[*c] == *v))
            .collect()
    }

    /// The index-served half of [`Table::lookup`]: `None` when no anonymous
    /// or named index covers `pairs` (callers that need to know whether a
    /// probe or a scan happened — scan accounting — use this directly).
    pub fn lookup_indexed(&self, pairs: &[(usize, &Value)]) -> Option<Vec<(RowId, &Row)>> {
        // Try to find an index whose column set is exactly covered.
        for ix in &self.indexes {
            if ix.cols.len() == pairs.len()
                && ix.cols.iter().all(|c| pairs.iter().any(|(pc, _)| pc == c))
            {
                let mut key = vec![Value::Null; ix.cols.len()];
                for (pos, col) in ix.cols.iter().enumerate() {
                    let (_, v) = pairs.iter().find(|(pc, _)| pc == col).expect("covered");
                    key[pos] = (*v).clone();
                }
                return Some(
                    ix.map
                        .get(&key)
                        .map(|ids| {
                            ids.iter()
                                .filter_map(|id| self.get(*id).map(|r| (*id, r)))
                                .collect()
                        })
                        .unwrap_or_default(),
                );
            }
        }
        // Single-column probes can also ride a named (`CREATE INDEX`)
        // index; candidates are liveness-checked like any posting, and the
        // key is re-checked because postings are a history-union superset
        // (a re-keyed row's old posting lingers until vacuum).
        if let [(col, v)] = pairs {
            if let Some(ix) = self.named.on_column(*col) {
                return Some(
                    ix.probe(v)
                        .iter()
                        .filter_map(|id| self.get(*id).filter(|r| &r[*col] == *v).map(|r| (*id, r)))
                        .collect(),
                );
            }
        }
        None
    }

    /// Remove every row (used by tests and recovery reset).
    pub fn truncate(&mut self) {
        self.slots.clear();
        self.live = 0;
        for ix in &mut self.indexes {
            ix.map.clear();
        }
        self.named.clear();
        self.postings_dirty = false;
        self.chains.clear();
        self.version_epoch += 1;
    }

    /// Snapshot all live rows (id, row) — used to build read-only copies.
    pub fn rows_cloned(&self) -> Vec<(RowId, Row)> {
        self.scan().map(|(id, r)| (id, r.clone())).collect()
    }

    // ---- multi-version read path (see `crate::mvcc`) ----

    /// Install the committed value of row `id` at commit timestamp `ts`
    /// (`None` = the commit deleted the row). Called only by the commit
    /// path, after the write's redo record is durable — working state and
    /// uncommitted data never enter a chain.
    pub fn install_version(&mut self, id: RowId, ts: CommitTs, row: Option<Row>) {
        let idx = id.0 as usize;
        if idx >= self.chains.len() {
            self.chains.resize_with(idx + 1, VersionChain::default);
        }
        self.chains[idx].install(ts, row);
        self.version_epoch += 1;
    }

    /// Iterate the rows visible to a snapshot pinned at `ts`, in id order.
    pub fn snapshot_scan(&self, ts: CommitTs) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.chains
            .iter()
            .enumerate()
            .filter_map(move |(i, c)| c.visible(ts).map(|r| (RowId(i as u64), r)))
    }

    /// Materialize an owned copy of this table as visible at snapshot `ts`
    /// (same schema, same `RowId`s). This is what the snapshot read path
    /// evaluates multi-table SELECTs against: an immutable table nobody
    /// latches or locks. The copy carries **no** index contents — neither
    /// named nor anonymous — because snapshot point/range probes go to the
    /// *live* table's history-union indexes ([`Table::visible_row`] applies
    /// visibility per candidate), so per-snapshot index rebuilds no longer
    /// exist; scans over the copy serve everything else.
    pub fn snapshot_at(&self, ts: CommitTs) -> Table {
        let mut t = Table::new(self.name.clone(), self.schema.clone());
        for (id, row) in self.snapshot_scan(ts) {
            let idx = id.0 as usize;
            if idx >= t.slots.len() {
                t.slots.resize(idx + 1, None);
            }
            t.slots[idx] = Some(row.clone());
            t.live += 1;
        }
        t
    }

    /// The committed value of row `id` visible to a snapshot pinned at
    /// `ts` — the per-candidate visibility filter behind index-aware
    /// snapshot reads: probe the live history-union index, then resolve
    /// each posting through the row's version chain.
    pub fn visible_row(&self, id: RowId, ts: CommitTs) -> Option<&Row> {
        self.chains.get(id.0 as usize).and_then(|c| c.visible(ts))
    }

    /// Seal the current working state as the one committed version of
    /// every live row at `ts`, discarding all prior history. Used at
    /// bootstrap (the setup script's commit) and after recovery, where the
    /// loaded state carries only the latest committed rows.
    pub fn seal_versions(&mut self, ts: CommitTs) {
        self.chains.clear();
        self.chains
            .resize_with(self.slots.len(), VersionChain::default);
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(row) = slot {
                self.chains[i].install(ts, Some(row.clone()));
            }
        }
        self.version_epoch += 1;
    }

    /// Prune versions unreachable from any snapshot at or after `horizon`
    /// (see [`VersionChain::prune`]); returns how many were reclaimed.
    pub fn prune_versions(&mut self, horizon: CommitTs) -> usize {
        let pruned = self.chains.iter_mut().map(|c| c.prune(horizon)).sum();
        if pruned > 0 {
            self.version_epoch += 1;
            // Pruned versions may leave orphaned history-union postings.
            if !self.named.is_empty() {
                self.postings_dirty = true;
            }
        }
        pruned
    }

    /// Total retained versions across all chains (diagnostics/tests).
    pub fn version_count(&self) -> usize {
        self.chains.iter().map(|c| c.len()).sum()
    }

    /// The committed-history epoch (see the field docs): unchanged epoch +
    /// non-decreasing snapshot timestamps ⇒ identical visible data.
    pub fn version_epoch(&self) -> u64 {
        self.version_epoch
    }

    /// The largest commit timestamp of any retained version (0 if none).
    /// A materialization built at pin `ts` with `max_version_ts() <= ts`
    /// is *clean*: no not-yet-visible version was already in the chains,
    /// so (at the same epoch) the copy also serves later pins.
    pub fn max_version_ts(&self) -> CommitTs {
        self.chains.iter().map(|c| c.max_ts()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    fn flights_table() -> Table {
        let mut t = Table::new(
            "Flights",
            Schema::of(&[
                ("fno", ValueType::Int),
                ("fdate", ValueType::Date),
                ("dest", ValueType::Str),
            ]),
        );
        // Figure 1(a) of the paper.
        t.insert(vec![Value::Int(122), Value::Date(100), Value::str("LA")])
            .unwrap();
        t.insert(vec![Value::Int(123), Value::Date(101), Value::str("LA")])
            .unwrap();
        t.insert(vec![Value::Int(124), Value::Date(100), Value::str("LA")])
            .unwrap();
        t.insert(vec![Value::Int(235), Value::Date(102), Value::str("Paris")])
            .unwrap();
        t
    }

    #[test]
    fn insert_get_len() {
        let t = flights_table();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.get(RowId(0)).unwrap()[0], Value::Int(122));
        assert!(t.get(RowId(9)).is_none());
    }

    #[test]
    fn delete_leaves_tombstone_and_preserves_ids() {
        let mut t = flights_table();
        let old = t.delete(RowId(1)).unwrap();
        assert_eq!(old[0], Value::Int(123));
        assert_eq!(t.len(), 3);
        assert!(t.get(RowId(1)).is_none());
        // Remaining ids unchanged.
        assert_eq!(t.get(RowId(2)).unwrap()[0], Value::Int(124));
        // Double delete is a no-op.
        assert!(t.delete(RowId(1)).is_none());
        // New insert gets a fresh id, not the tombstoned one.
        let id = t
            .insert(vec![Value::Int(500), Value::Date(1), Value::str("SF")])
            .unwrap();
        assert_eq!(id, RowId(4));
    }

    #[test]
    fn update_returns_before_image() {
        let mut t = flights_table();
        let before = t
            .update(
                RowId(0),
                vec![Value::Int(122), Value::Date(100), Value::str("SFO")],
            )
            .unwrap()
            .unwrap();
        assert_eq!(before[2], Value::str("LA"));
        assert_eq!(t.get(RowId(0)).unwrap()[2], Value::str("SFO"));
        // Updating a missing row returns None.
        assert!(t
            .update(
                RowId(99),
                vec![Value::Int(1), Value::Date(1), Value::str("x")]
            )
            .unwrap()
            .is_none());
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = flights_table();
        assert!(t
            .insert(vec![Value::str("bad"), Value::Date(1), Value::str("LA")])
            .is_err());
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn scan_skips_tombstones() {
        let mut t = flights_table();
        t.delete(RowId(0)).unwrap();
        let ids: Vec<u64> = t.scan().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn index_lookup_matches_scan() {
        let mut t = flights_table();
        t.create_index(&["dest"]).unwrap();
        let la = t.lookup(&[(2, &Value::str("LA"))]);
        assert_eq!(la.len(), 3);
        let paris = t.lookup(&[(2, &Value::str("Paris"))]);
        assert_eq!(paris.len(), 1);
        assert_eq!(paris[0].1[0], Value::Int(235));
        // No match.
        assert!(t.lookup(&[(2, &Value::str("Tokyo"))]).is_empty());
    }

    #[test]
    fn index_maintained_on_mutation() {
        let mut t = flights_table();
        t.create_index(&["dest"]).unwrap();
        t.delete(RowId(0)).unwrap();
        assert_eq!(t.lookup(&[(2, &Value::str("LA"))]).len(), 2);
        t.update(
            RowId(1),
            vec![Value::Int(123), Value::Date(101), Value::str("Paris")],
        )
        .unwrap();
        assert_eq!(t.lookup(&[(2, &Value::str("LA"))]).len(), 1);
        assert_eq!(t.lookup(&[(2, &Value::str("Paris"))]).len(), 2);
        let id = t
            .insert(vec![Value::Int(900), Value::Date(50), Value::str("LA")])
            .unwrap();
        let la = t.lookup(&[(2, &Value::str("LA"))]);
        assert!(la.iter().any(|(rid, _)| *rid == id));
        assert_eq!(la.len(), 2);
    }

    #[test]
    fn multi_column_index() {
        let mut t = flights_table();
        t.create_index(&["fdate", "dest"]).unwrap();
        let hits = t.lookup(&[(1, &Value::Date(100)), (2, &Value::str("LA"))]);
        assert_eq!(hits.len(), 2);
        // Unindexed combination falls back to scan and still works.
        let hits = t.lookup(&[(0, &Value::Int(122))]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn create_index_idempotent_and_unknown_column() {
        let mut t = flights_table();
        let a = t.create_index(&["dest"]).unwrap();
        let b = t.create_index(&["dest"]).unwrap();
        assert_eq!(a, b);
        assert!(t.create_index(&["nope"]).is_err());
    }

    #[test]
    fn insert_at_for_recovery() {
        let mut t = Table::new("T", Schema::of(&[("a", ValueType::Int)]));
        t.insert_at(RowId(3), vec![Value::Int(30)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId(3)).unwrap()[0], Value::Int(30));
        assert!(t.get(RowId(0)).is_none());
        // Overwrite at same slot keeps live count correct.
        t.insert_at(RowId(3), vec![Value::Int(31)]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId(3)).unwrap()[0], Value::Int(31));
        // Next fresh insert goes after.
        let id = t.insert(vec![Value::Int(99)]).unwrap();
        assert_eq!(id, RowId(4));
    }

    #[test]
    fn version_install_and_snapshot_scan() {
        let mut t = flights_table();
        t.seal_versions(1);
        assert_eq!(t.version_count(), 4);
        // Working mutation is invisible to snapshots until installed.
        t.update(
            RowId(0),
            vec![Value::Int(122), Value::Date(100), Value::str("SFO")],
        )
        .unwrap();
        t.delete(RowId(3)).unwrap();
        let snap1 = t.snapshot_at(1);
        assert_eq!(snap1.len(), 4);
        assert_eq!(snap1.get(RowId(0)).unwrap()[2], Value::str("LA"));
        assert_eq!(snap1.get(RowId(3)).unwrap()[2], Value::str("Paris"));
        // Commit installs the update + a tombstone at ts 2.
        t.install_version(
            RowId(0),
            2,
            Some(vec![Value::Int(122), Value::Date(100), Value::str("SFO")]),
        );
        t.install_version(RowId(3), 2, None);
        let snap2 = t.snapshot_at(2);
        assert_eq!(snap2.len(), 3);
        assert_eq!(snap2.get(RowId(0)).unwrap()[2], Value::str("SFO"));
        assert!(snap2.get(RowId(3)).is_none());
        // The older snapshot is unchanged (that is the point).
        let snap1 = t.snapshot_at(1);
        assert_eq!(snap1.get(RowId(0)).unwrap()[2], Value::str("LA"));
        assert_eq!(
            t.snapshot_scan(2).count(),
            3,
            "scan agrees with materialization"
        );
    }

    #[test]
    fn prune_versions_respects_the_horizon() {
        let mut t = flights_table();
        t.seal_versions(1);
        t.install_version(
            RowId(0),
            2,
            Some(vec![Value::Int(1), Value::Date(1), Value::str("A")]),
        );
        t.install_version(
            RowId(0),
            3,
            Some(vec![Value::Int(2), Value::Date(2), Value::str("B")]),
        );
        assert_eq!(t.version_count(), 6);
        // A snapshot at ts 2 is still live: only the ts-1 version of row 0
        // is superseded below the horizon.
        assert_eq!(t.prune_versions(2), 1);
        assert_eq!(t.snapshot_at(2).get(RowId(0)).unwrap()[2], Value::str("A"));
        // Horizon catches up: ts-2 goes too.
        assert_eq!(t.prune_versions(3), 1);
        assert_eq!(t.snapshot_at(3).get(RowId(0)).unwrap()[2], Value::str("B"));
    }

    #[test]
    fn snapshot_of_unsealed_table_is_empty() {
        let t = flights_table();
        assert_eq!(t.snapshot_at(u64::MAX).len(), 0);
        assert_eq!(t.version_count(), 0);
    }

    #[test]
    fn truncate_resets() {
        let mut t = flights_table();
        t.create_index(&["dest"]).unwrap();
        t.truncate();
        assert_eq!(t.len(), 0);
        assert!(t.lookup(&[(2, &Value::str("LA"))]).is_empty());
        assert!(t.scan().next().is_none());
    }
}
