//! The concurrent catalog: per-table handles instead of one global latch.
//!
//! [`ConcurrentCatalog`] maps table names to independently lockable
//! [`TableHandle`]s (`Arc<RwLock<Table>>`), so transactions working on
//! disjoint tables — and readers sharing a table — proceed in parallel.
//! The latches here are *physical* protection only (one row operation, or
//! one batch of read guards, at a time); *logical* isolation between
//! transactions is carried entirely by the Strict-2PL lock manager layered
//! above. This mirrors the paper's architecture, where the middleware
//! delegated both to the DBMS; splitting them lets the storage substrate
//! exploit the concurrency that 2PL already guarantees is safe.
//!
//! Deadlock discipline: a thread never blocks on anything else (2PL locks,
//! channels, other latches acquired singly) while holding a latch, and
//! multi-table read views acquire their guards in sorted name order
//! ([`CatalogSnapshot::read_view`]), so latch waits cannot form cycles.

use crate::catalog::{Database, StorageError, TableProvider};
use crate::mvcc::CommitTs;
use crate::schema::Schema;
use crate::table::Table;
use parking_lot::{RwLock, RwLockReadGuard};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An independently lockable table.
pub type TableHandle = Arc<RwLock<Table>>;

/// A named collection of independently lockable tables.
///
/// The outer map lock is touched only by DDL (`create_table`, [`Self::load`])
/// and by [`Self::snapshot`]; statement execution pins a snapshot once and
/// never takes the map lock again.
#[derive(Default)]
pub struct ConcurrentCatalog {
    tables: RwLock<BTreeMap<String, TableHandle>>,
}

impl fmt::Debug for ConcurrentCatalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConcurrentCatalog")
            .field("tables", &self.table_names())
            .finish()
    }
}

impl ConcurrentCatalog {
    pub fn new() -> ConcurrentCatalog {
        ConcurrentCatalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Create a table; errors if one with the same (case-insensitive) name
    /// exists.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), StorageError> {
        let mut tables = self.tables.write();
        let key = Self::key(name);
        if tables.contains_key(&key) {
            return Err(StorageError::TableExists(name.to_string()));
        }
        tables.insert(key, Arc::new(RwLock::new(Table::new(name, schema))));
        Ok(())
    }

    /// The handle for one table (an `Arc` clone; cheap).
    pub fn handle(&self, name: &str) -> Result<TableHandle, StorageError> {
        self.tables
            .read()
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&Self::key(name))
    }

    /// All table names, in deterministic (sorted-key) order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables
            .read()
            .values()
            .map(|t| t.read().name().to_string())
            .collect()
    }

    /// Pin the current set of table handles. Snapshots are immutable maps
    /// of `Arc`s: once taken, no catalog-map lock is needed again, and the
    /// handles stay valid regardless of later DDL.
    pub fn snapshot(&self) -> CatalogSnapshot {
        CatalogSnapshot {
            tables: self.tables.read().clone(),
        }
    }

    /// Replace the entire contents with a recovered [`Database`]. Callers
    /// must ensure no transactions are in flight (recovery semantics).
    pub fn load(&self, db: Database) {
        let mut tables = self.tables.write();
        tables.clear();
        for t in db.into_tables() {
            tables.insert(Self::key(t.name()), Arc::new(RwLock::new(t)));
        }
    }

    /// Materialize a consistent point-in-time copy as a single-threaded
    /// [`Database`] (diagnostics, tests, oracle runs — not the statement
    /// hot path). All table read guards are held for the duration of the
    /// copy (acquired in sorted order, per the module's deadlock
    /// discipline), so no writer can be half-visible across tables.
    pub fn materialize(&self) -> Database {
        let snapshot = self.snapshot();
        let view = snapshot.read_all();
        Database::from_tables(view.guards.values().map(|g| (**g).clone()))
    }
}

/// An immutable, pinned set of table handles (see
/// [`ConcurrentCatalog::snapshot`]).
#[derive(Clone, Default)]
pub struct CatalogSnapshot {
    tables: BTreeMap<String, TableHandle>,
}

impl fmt::Debug for CatalogSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CatalogSnapshot")
            .field("tables", &self.tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl CatalogSnapshot {
    /// The handle for one table.
    pub fn handle(&self, name: &str) -> Result<&TableHandle, StorageError> {
        self.tables
            .get(&ConcurrentCatalog::key(name))
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// Acquire read guards on the named tables (deduplicated; acquired in
    /// sorted key order so concurrent multi-table readers cannot deadlock).
    /// Unknown names are skipped — the resulting view reports
    /// [`StorageError::NoSuchTable`] on lookup, letting lowering produce
    /// its own (better) unknown-table errors.
    pub fn read_view<S: AsRef<str>>(&self, names: &[S]) -> TableView<'_> {
        let mut keys: Vec<String> = names
            .iter()
            .map(|n| ConcurrentCatalog::key(n.as_ref()))
            .collect();
        keys.sort();
        keys.dedup();
        TableView {
            guards: keys
                .into_iter()
                .filter_map(|k| self.tables.get(&k).map(|h| (k, h.read())))
                .collect(),
        }
    }

    /// All table names in the snapshot (display-cased), in deterministic
    /// sorted-key order. Each name takes one short read latch.
    pub fn table_names(&self) -> Vec<String> {
        self.tables
            .values()
            .map(|h| h.read().name().to_string())
            .collect()
    }

    /// Materialize the named tables as visible at snapshot timestamp `ts`
    /// (see [`Table::snapshot_at`]): each table takes one short read latch
    /// for the copy (sorted key order, per the module's deadlock
    /// discipline) and the result is an owned, immutable
    /// [`SnapshotTables`] that no reader ever latches or locks again.
    /// Unknown names are skipped, mirroring [`CatalogSnapshot::read_view`].
    pub fn snapshot_tables<S: AsRef<str>>(&self, names: &[S], ts: CommitTs) -> SnapshotTables {
        let mut keys: Vec<String> = names
            .iter()
            .map(|n| ConcurrentCatalog::key(n.as_ref()))
            .collect();
        keys.sort();
        keys.dedup();
        SnapshotTables {
            ts,
            tables: keys
                .into_iter()
                .filter_map(|k| {
                    self.tables
                        .get(&k)
                        .map(|h| (k, Arc::new(h.read().snapshot_at(ts))))
                })
                .collect(),
        }
    }

    /// Read guards on every table in the snapshot.
    pub fn read_all(&self) -> TableView<'_> {
        TableView {
            // BTreeMap iteration is already in sorted key order.
            guards: self
                .tables
                .iter()
                .map(|(k, h)| (k.clone(), h.read()))
                .collect(),
        }
    }
}

/// A set of held table read guards, usable wherever a read-only
/// [`Database`] was: lowering, grounding, SPJ evaluation.
pub struct TableView<'a> {
    guards: BTreeMap<String, RwLockReadGuard<'a, Table>>,
}

impl fmt::Debug for TableView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TableView")
            .field("tables", &self.guards.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl TableView<'_> {
    /// Iterate the held tables in deterministic (sorted-key) order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.guards.values().map(|g| &**g)
    }
}

impl TableProvider for TableView<'_> {
    fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.guards
            .get(&ConcurrentCatalog::key(name))
            .map(|g| &**g)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }
}

/// An owned set of tables materialized as of one snapshot timestamp
/// ([`CatalogSnapshot::snapshot_tables`]). Usable wherever a read-only
/// [`Database`] was — lowering, SPJ evaluation — but backed by committed
/// versions instead of latched working state: evaluating against it takes
/// no latches and no 2PL locks. Tables are `Arc`-shared so a transaction
/// can cache materializations across its statements cheaply.
#[derive(Debug, Clone, Default)]
pub struct SnapshotTables {
    ts: CommitTs,
    tables: BTreeMap<String, Arc<Table>>,
}

impl SnapshotTables {
    /// Assemble a view from already-materialized tables (e.g. the
    /// engine's epoch-keyed materialization cache). Keys are derived from
    /// each table's own name, case-insensitively.
    pub fn from_parts(
        ts: CommitTs,
        tables: impl IntoIterator<Item = Arc<Table>>,
    ) -> SnapshotTables {
        SnapshotTables {
            ts,
            tables: tables
                .into_iter()
                .map(|t| (ConcurrentCatalog::key(t.name()), t))
                .collect(),
        }
    }

    /// The snapshot timestamp these tables were materialized at.
    pub fn ts(&self) -> CommitTs {
        self.ts
    }

    /// Merge in tables from another materialization at the same timestamp
    /// (used when lowering discovers tables beyond the statement's
    /// syntactic footprint). Existing entries win.
    pub fn absorb(&mut self, other: SnapshotTables) {
        debug_assert_eq!(self.ts, other.ts, "snapshots must share a timestamp");
        for (k, t) in other.tables {
            self.tables.entry(k).or_insert(t);
        }
    }

    /// Whether the named table is already materialized.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&ConcurrentCatalog::key(name))
    }

    /// Insert or **replace** one table (unlike [`SnapshotTables::absorb`],
    /// which keeps existing entries). Used when a probing reader upgrades
    /// an index-less materialization to an indexed one mid-transaction.
    pub fn upsert(&mut self, t: Arc<Table>) {
        self.tables.insert(ConcurrentCatalog::key(t.name()), t);
    }
}

impl TableProvider for SnapshotTables {
    fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(&ConcurrentCatalog::key(name))
            .map(|t| &**t)
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{Value, ValueType};

    fn catalog() -> ConcurrentCatalog {
        let c = ConcurrentCatalog::new();
        c.create_table(
            "Flights",
            Schema::of(&[("fno", ValueType::Int), ("dest", ValueType::Str)]),
        )
        .unwrap();
        c.handle("Flights")
            .unwrap()
            .write()
            .insert(vec![Value::Int(122), Value::str("LA")])
            .unwrap();
        c
    }

    #[test]
    fn create_lookup_and_duplicates() {
        let c = catalog();
        assert!(c.has_table("FLIGHTS"));
        assert!(matches!(
            c.create_table("flights", Schema::of(&[("x", ValueType::Int)])),
            Err(StorageError::TableExists(_))
        ));
        assert!(matches!(
            c.handle("nope"),
            Err(StorageError::NoSuchTable(_))
        ));
        assert_eq!(c.table_names(), vec!["Flights".to_string()]);
    }

    #[test]
    fn snapshot_pins_handles_across_ddl() {
        let c = catalog();
        let snap = c.snapshot();
        c.create_table("Later", Schema::of(&[("x", ValueType::Int)]))
            .unwrap();
        // The old snapshot does not see the new table…
        assert!(snap.handle("Later").is_err());
        // …but its pinned handles still reach live data.
        assert_eq!(snap.handle("Flights").unwrap().read().len(), 1);
        assert!(c.snapshot().handle("Later").is_ok());
    }

    #[test]
    fn read_view_provides_tables_and_reports_missing() {
        let c = catalog();
        let snap = c.snapshot();
        let view = snap.read_view(&["Flights", "Ghost", "flights"]);
        assert_eq!(TableProvider::table(&view, "fLiGhTs").unwrap().len(), 1);
        assert!(matches!(
            TableProvider::table(&view, "Ghost"),
            Err(StorageError::NoSuchTable(_))
        ));
        let all = snap.read_all();
        assert_eq!(TableProvider::table(&all, "Flights").unwrap().len(), 1);
    }

    #[test]
    fn concurrent_readers_and_disjoint_writers() {
        let c = Arc::new(catalog());
        c.create_table(
            "Hotels",
            Schema::of(&[("hid", ValueType::Int), ("city", ValueType::Str)]),
        )
        .unwrap();
        let mut workers = Vec::new();
        for i in 0..4i64 {
            let c = Arc::clone(&c);
            workers.push(std::thread::spawn(move || {
                let snap = c.snapshot();
                let target = if i % 2 == 0 { "Flights" } else { "Hotels" };
                for j in 0..50 {
                    snap.handle(target)
                        .unwrap()
                        .write()
                        .insert(vec![Value::Int(i * 1000 + j), Value::str("X")])
                        .unwrap();
                    let view = snap.read_view(&["Flights", "Hotels"]);
                    assert!(!TableProvider::table(&view, "Flights").unwrap().is_empty());
                }
            }));
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(c.handle("Flights").unwrap().read().len(), 1 + 100);
        assert_eq!(c.handle("Hotels").unwrap().read().len(), 100);
    }

    #[test]
    fn snapshot_tables_serve_committed_versions_only() {
        let c = catalog();
        {
            let h = c.handle("Flights").unwrap();
            h.write().seal_versions(1);
            // Uncommitted working write (a transaction mid-flight).
            h.write()
                .insert(vec![Value::Int(999), Value::str("dirty")])
                .unwrap();
        }
        let snap = c.snapshot();
        let view = snap.snapshot_tables(&["Flights", "Ghost"], 1);
        assert_eq!(view.ts(), 1);
        assert!(view.contains("flights"));
        let t = TableProvider::table(&view, "Flights").unwrap();
        assert_eq!(t.len(), 1, "dirty insert invisible to the snapshot");
        assert!(matches!(
            TableProvider::table(&view, "Ghost"),
            Err(StorageError::NoSuchTable(_))
        ));
        // absorb() unions without clobbering.
        let mut view = view;
        c.create_table("Later", Schema::of(&[("x", ValueType::Int)]))
            .unwrap();
        view.absorb(c.snapshot().snapshot_tables(&["Later"], 1));
        assert!(view.contains("later"));
        assert!(view.contains("flights"));
    }

    #[test]
    fn load_and_materialize_roundtrip() {
        let c = catalog();
        let db = c.materialize();
        assert_eq!(db.table("Flights").unwrap().len(), 1);
        let c2 = ConcurrentCatalog::new();
        c2.load(db);
        assert_eq!(c2.handle("Flights").unwrap().read().len(), 1);
        assert_eq!(c2.materialize().canonical_rows("Flights").unwrap().len(), 1);
    }
}
