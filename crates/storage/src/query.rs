//! Select-project-join evaluation over any [`TableProvider`].
//!
//! Entangled-query WHERE clauses are restricted to select-project-join form
//! (§2 of the paper), and the classical statements in the workloads are SPJ
//! plus `INSERT`/`UPDATE`/`DELETE`. One evaluator therefore serves both the
//! SQL executor and grounding: a left-deep nested-loop join that pushes
//! constant filters and bound equi-join keys into per-table index lookups.

use crate::catalog::{StorageError, TableProvider};
use crate::expr::{CmpOp, Expr};
use crate::table::{Row, RowId, Table};
use crate::value::Value;
use std::ops::Bound;

/// A resolved SPJ query: join order, one predicate (conjunction), projection.
#[derive(Debug, Clone)]
pub struct SpjQuery {
    /// Tables in join order. The same table may appear twice (self-join via
    /// aliases, e.g. `User as u1, User as u2` in Appendix D).
    pub tables: Vec<String>,
    /// Boolean predicate over the join environment.
    pub predicate: Expr,
    /// Output expressions.
    pub projection: Vec<Expr>,
    /// Drop duplicate output rows.
    pub distinct: bool,
    /// Stop after this many output rows (the Social workload uses LIMIT 1).
    pub limit: Option<usize>,
}

impl SpjQuery {
    pub fn new(tables: Vec<String>, predicate: Expr, projection: Vec<Expr>) -> SpjQuery {
        SpjQuery {
            tables,
            predicate,
            projection,
            distinct: false,
            limit: None,
        }
    }
}

/// The result of evaluating an [`SpjQuery`]: output rows plus, when the
/// query is a bare single-table scan-with-equality, the ids of base rows
/// that matched (used for row-granularity locking).
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    pub rows: Vec<Row>,
    /// For each output row, the base-table row ids (join order) it came
    /// from. Parallel to `rows` unless `distinct` merged duplicates, in
    /// which case provenance of the first witness is kept.
    pub provenance: Vec<Vec<RowId>>,
}

/// Access-path accounting for one evaluation: how many base rows were
/// materialized as join candidates (`rows_scanned` — O(table) per scanned
/// stage, O(matches) per probed stage) and how many stages were served by
/// an index (`index_lookups`, equality or btree-range).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    pub rows_scanned: u64,
    pub index_lookups: u64,
    /// Snapshot point/range reads that probed the *live* history-union
    /// index and filtered by version visibility instead of materializing a
    /// per-snapshot index copy — each one is a rebuild that no longer
    /// happens anywhere.
    pub index_rebuilds_avoided: u64,
}

impl ScanStats {
    /// Accumulate another evaluation's counts.
    pub fn add(&mut self, other: ScanStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_lookups += other.index_lookups;
        self.index_rebuilds_avoided += other.index_rebuilds_avoided;
    }
}

/// Evaluate an SPJ query against any table source (an owned [`Database`]
/// or a pinned [`crate::concurrent::TableView`]).
///
/// [`Database`]: crate::catalog::Database
pub fn eval_spj(db: &dyn TableProvider, q: &SpjQuery) -> Result<QueryOutput, StorageError> {
    let mut stats = ScanStats::default();
    eval_spj_counted(db, q, &mut stats)
}

/// [`eval_spj`] with access-path accounting: `stats` is incremented with
/// the rows scanned and index probes this evaluation performed.
pub fn eval_spj_counted(
    db: &dyn TableProvider,
    q: &SpjQuery,
    stats: &mut ScanStats,
) -> Result<QueryOutput, StorageError> {
    // Validate tables early so errors surface deterministically.
    for t in &q.tables {
        db.table(t)?;
    }
    let conjuncts: Vec<&Expr> = q.predicate.conjuncts();

    // Stage at which each conjunct becomes applicable.
    let mut stage_conjuncts: Vec<Vec<&Expr>> = vec![Vec::new(); q.tables.len().max(1)];
    let mut const_conjuncts: Vec<&Expr> = Vec::new();
    for c in &conjuncts {
        match c.max_table() {
            Some(k) => stage_conjuncts[k].push(c),
            None => const_conjuncts.push(c),
        }
    }
    // Constant-only conjuncts: if any is false, the result is empty.
    for c in const_conjuncts {
        if !c.eval_bool(&[]).map_err(eval_err)? {
            return Ok(QueryOutput::default());
        }
    }

    let mut out = QueryOutput::default();
    let mut seen = std::collections::HashSet::new();
    let mut env_rows: Vec<(RowId, Row)> = Vec::with_capacity(q.tables.len());
    join_rec(
        db,
        q,
        &stage_conjuncts,
        0,
        &mut env_rows,
        &mut out,
        &mut seen,
        stats,
    )?;
    Ok(out)
}

fn eval_err(_: crate::expr::EvalError) -> StorageError {
    // Type confusion inside a predicate behaves like an empty/failed scan in
    // the loose dialect; map it onto a schema error for visibility.
    StorageError::Schema(crate::schema::SchemaError::ArityMismatch {
        expected: 0,
        got: 0,
    })
}

/// Extract `(col-of-stage-k, value)` lookup pairs from the conjuncts
/// applicable at stage `k`, given already-bound rows.
fn lookup_pairs(stage: usize, conjs: &[&Expr], env: &[&[Value]]) -> Vec<(usize, Value)> {
    let mut pairs = Vec::new();
    for c in conjs {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            lhs,
            rhs,
        } = c
        {
            let (colref, other) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col { tbl, col }, o) if *tbl == stage => (Some(*col), o),
                (o, Expr::Col { tbl, col }) if *tbl == stage => (Some(*col), o),
                _ => (None, &Expr::Const(Value::Null)),
            };
            if let Some(col) = colref {
                // `other` must be computable from earlier stages only.
                let computable = other.max_table().is_none_or(|t| t < stage);
                if computable {
                    if let Ok(v) = other.eval(env) {
                        pairs.push((col, v));
                    }
                }
            }
        }
    }
    pairs
}

/// Serve stage `k`'s candidates from a named btree index when a range
/// conjunct (`<`, `<=`, `>`, `>=`) constrains an indexed column with a
/// bound computable from earlier stages. One-sided; residual conjuncts are
/// re-checked on every candidate, so over-approximation is safe.
fn range_probe<'t>(
    table: &'t Table,
    stage: usize,
    conjs: &[&Expr],
    env: &[&[Value]],
) -> Option<Vec<(RowId, &'t Row)>> {
    for c in conjs {
        let Expr::Cmp { op, lhs, rhs } = c else {
            continue;
        };
        // Normalize to `col <op> bound` with the column on stage `k`.
        let (col, other, op) = match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Col { tbl, col }, o) if *tbl == stage => (*col, o, *op),
            (o, Expr::Col { tbl, col }) if *tbl == stage => (*col, o, op.flip()),
            _ => continue,
        };
        if !matches!(op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge) {
            continue;
        }
        if other.max_table().is_some_and(|t| t >= stage) {
            continue;
        }
        let Ok(bound) = other.eval(env) else { continue };
        let ix = table.named_indexes().btree_on_column(col)?;
        let (lo, hi) = match op {
            CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(&bound)),
            CmpOp::Le => (Bound::Unbounded, Bound::Included(&bound)),
            CmpOp::Gt => (Bound::Excluded(&bound), Bound::Unbounded),
            CmpOp::Ge => (Bound::Included(&bound), Bound::Unbounded),
            _ => unreachable!(),
        };
        let ids = ix.probe_range(&[], lo, hi)?;
        return Some(
            ids.into_iter()
                .filter_map(|id| table.get(id).map(|r| (id, r)))
                .collect(),
        );
    }
    None
}

/// Evaluate a **single-table** query over a pre-filtered candidate set —
/// the tail of an index-served plan, locked or snapshot: candidates came
/// from a probe (and, on the snapshot path, a per-row visibility check),
/// and this applies the full predicate (which also screens out stale
/// history-union postings), projection, DISTINCT and LIMIT.
pub fn eval_spj_rows(
    q: &SpjQuery,
    candidates: &[(RowId, Row)],
) -> Result<QueryOutput, StorageError> {
    debug_assert_eq!(q.tables.len(), 1, "candidate evaluation is single-table");
    let conjuncts: Vec<&Expr> = q.predicate.conjuncts();
    let mut out = QueryOutput::default();
    let mut seen = std::collections::HashSet::new();
    'rows: for (id, row) in candidates {
        let env: Vec<&[Value]> = vec![row.as_slice()];
        for c in &conjuncts {
            if !c.eval_bool(&env).map_err(eval_err)? {
                continue 'rows;
            }
        }
        let projected: Row = q
            .projection
            .iter()
            .map(|e| e.eval(&env).map_err(eval_err))
            .collect::<Result<_, _>>()?;
        if q.distinct && !seen.insert(projected.clone()) {
            continue;
        }
        out.provenance.push(vec![*id]);
        out.rows.push(projected);
        if let Some(lim) = q.limit {
            if out.rows.len() >= lim {
                break;
            }
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn join_rec(
    db: &dyn TableProvider,
    q: &SpjQuery,
    stage_conjuncts: &[Vec<&Expr>],
    stage: usize,
    env_rows: &mut Vec<(RowId, Row)>,
    out: &mut QueryOutput,
    seen: &mut std::collections::HashSet<Row>,
    stats: &mut ScanStats,
) -> Result<(), StorageError> {
    if let Some(lim) = q.limit {
        if out.rows.len() >= lim {
            return Ok(());
        }
    }
    if stage == q.tables.len() {
        let env: Vec<&[Value]> = env_rows.iter().map(|(_, r)| r.as_slice()).collect();
        let row: Row = q
            .projection
            .iter()
            .map(|e| e.eval(&env).map_err(eval_err))
            .collect::<Result<_, _>>()?;
        if q.distinct && !seen.insert(row.clone()) {
            return Ok(());
        }
        out.provenance
            .push(env_rows.iter().map(|(id, _)| *id).collect());
        out.rows.push(row);
        return Ok(());
    }

    // Candidate rows: indexed lookup when equality pairs exist, else scan.
    // Collected into owned form so the borrow of `env_rows` ends before the
    // recursion mutates it.
    let candidates: Vec<(RowId, Row)> = {
        let table = db.table(&q.tables[stage])?;
        let env: Vec<&[Value]> = env_rows.iter().map(|(_, r)| r.as_slice()).collect();
        let pairs_owned = lookup_pairs(stage, &stage_conjuncts[stage], &env);
        let pairs: Vec<(usize, &Value)> = pairs_owned.iter().map(|(c, v)| (*c, v)).collect();
        // Access path, best first: equality probe (anonymous or named
        // index), btree range probe, full scan.
        let probed: Option<Vec<(RowId, &Row)>> = if pairs.is_empty() {
            None
        } else {
            table.lookup_indexed(&pairs)
        };
        let probed = probed.or_else(|| range_probe(table, stage, &stage_conjuncts[stage], &env));
        let hits: Vec<(RowId, &Row)> = match probed {
            Some(hits) => {
                stats.index_lookups += 1;
                stats.rows_scanned += hits.len() as u64;
                hits
            }
            None => {
                // Every live row is examined, whether or not it survives
                // the equality filter.
                stats.rows_scanned += table.len() as u64;
                table
                    .scan()
                    .filter(|(_, row)| pairs.iter().all(|(c, v)| &row[*c] == *v))
                    .collect()
            }
        };
        hits.into_iter().map(|(id, r)| (id, r.clone())).collect()
    };

    for (id, row) in candidates {
        env_rows.push((id, row));
        // Check all conjuncts that become applicable at this stage.
        let ok = {
            let env: Vec<&[Value]> = env_rows.iter().map(|(_, r)| r.as_slice()).collect();
            let mut ok = true;
            for c in &stage_conjuncts[stage] {
                if !c.eval_bool(&env).map_err(eval_err)? {
                    ok = false;
                    break;
                }
            }
            ok
        };
        if ok {
            join_rec(
                db,
                q,
                stage_conjuncts,
                stage + 1,
                env_rows,
                out,
                seen,
                stats,
            )?;
        }
        env_rows.pop();
        if let Some(lim) = q.limit {
            if out.rows.len() >= lim {
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::Schema;
    use crate::value::ValueType;

    /// Figure 1(a): the flight database with airlines.
    fn fig1_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Flights",
            Schema::of(&[
                ("fno", ValueType::Int),
                ("fdate", ValueType::Date),
                ("dest", ValueType::Str),
            ]),
        )
        .unwrap();
        db.create_table(
            "Airlines",
            Schema::of(&[("fno", ValueType::Int), ("airline", ValueType::Str)]),
        )
        .unwrap();
        for (fno, d, dest) in [
            (122, 100, "LA"),
            (123, 101, "LA"),
            (124, 100, "LA"),
            (235, 102, "Paris"),
        ] {
            db.insert(
                "Flights",
                vec![Value::Int(fno), Value::Date(d), Value::str(dest)],
            )
            .unwrap();
        }
        for (fno, a) in [
            (122, "United"),
            (123, "United"),
            (124, "USAir"),
            (235, "Delta"),
        ] {
            db.insert("Airlines", vec![Value::Int(fno), Value::str(a)])
                .unwrap();
        }
        db
    }

    #[test]
    fn single_table_filter() {
        let db = fig1_db();
        // SELECT fno FROM Flights WHERE dest = 'LA'
        let q = SpjQuery::new(
            vec!["Flights".into()],
            Expr::eq(Expr::col(0, 2), Expr::Const(Value::str("LA"))),
            vec![Expr::col(0, 0)],
        );
        let out = eval_spj(&db, &q).unwrap();
        let fnos: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(fnos, vec![122, 123, 124]);
        assert_eq!(out.provenance.len(), 3);
    }

    #[test]
    fn minnies_join() {
        let db = fig1_db();
        // SELECT fno, fdate FROM Flights F, Airlines A
        // WHERE F.dest='LA' AND F.fno=A.fno AND A.airline='United'
        let q = SpjQuery::new(
            vec!["Flights".into(), "Airlines".into()],
            Expr::and_all(vec![
                Expr::eq(Expr::col(0, 2), Expr::Const(Value::str("LA"))),
                Expr::eq(Expr::col(0, 0), Expr::col(1, 0)),
                Expr::eq(Expr::col(1, 1), Expr::Const(Value::str("United"))),
            ]),
            vec![Expr::col(0, 0), Expr::col(0, 1)],
        );
        let out = eval_spj(&db, &q).unwrap();
        let fnos: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(fnos, vec![122, 123]);
    }

    #[test]
    fn join_uses_index_when_present() {
        let mut db = fig1_db();
        db.table_mut("Airlines")
            .unwrap()
            .create_index(&["fno"])
            .unwrap();
        let q = SpjQuery::new(
            vec!["Flights".into(), "Airlines".into()],
            Expr::and_all(vec![
                Expr::eq(Expr::col(0, 0), Expr::col(1, 0)),
                Expr::eq(Expr::col(1, 1), Expr::Const(Value::str("United"))),
            ]),
            vec![Expr::col(0, 0)],
        );
        let out = eval_spj(&db, &q).unwrap();
        let fnos: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(fnos, vec![122, 123]);
    }

    #[test]
    fn self_join_with_aliases() {
        let mut db = Database::new();
        db.create_table(
            "Friends",
            Schema::of(&[("uid1", ValueType::Int), ("uid2", ValueType::Int)]),
        )
        .unwrap();
        db.insert("Friends", vec![Value::Int(1), Value::Int(2)])
            .unwrap();
        db.insert("Friends", vec![Value::Int(2), Value::Int(3)])
            .unwrap();
        // Friends-of-friends: F1.uid2 = F2.uid1.
        let q = SpjQuery::new(
            vec!["Friends".into(), "Friends".into()],
            Expr::eq(Expr::col(0, 1), Expr::col(1, 0)),
            vec![Expr::col(0, 0), Expr::col(1, 1)],
        );
        let out = eval_spj(&db, &q).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(1), Value::Int(3)]]);
    }

    #[test]
    fn distinct_and_limit() {
        let db = fig1_db();
        let q = SpjQuery {
            tables: vec!["Flights".into()],
            predicate: Expr::eq(Expr::col(0, 2), Expr::Const(Value::str("LA"))),
            projection: vec![Expr::col(0, 2)],
            distinct: true,
            limit: None,
        };
        let out = eval_spj(&db, &q).unwrap();
        assert_eq!(out.rows, vec![vec![Value::str("LA")]]);

        let q = SpjQuery {
            tables: vec!["Flights".into()],
            predicate: Expr::Const(Value::Bool(true)),
            projection: vec![Expr::col(0, 0)],
            distinct: false,
            limit: Some(2),
        };
        let out = eval_spj(&db, &q).unwrap();
        assert_eq!(out.rows.len(), 2);
    }

    #[test]
    fn constant_false_short_circuits() {
        let db = fig1_db();
        let q = SpjQuery::new(
            vec!["Flights".into(), "Airlines".into()],
            Expr::Const(Value::Bool(false)),
            vec![Expr::col(0, 0)],
        );
        let out = eval_spj(&db, &q).unwrap();
        assert!(out.rows.is_empty());
    }

    #[test]
    fn missing_table_errors() {
        let db = fig1_db();
        let q = SpjQuery::new(vec!["Nope".into()], Expr::Const(Value::Bool(true)), vec![]);
        assert!(matches!(
            eval_spj(&db, &q),
            Err(StorageError::NoSuchTable(_))
        ));
    }

    #[test]
    fn projection_with_arithmetic() {
        let db = fig1_db();
        // SELECT fdate + 1 FROM Flights WHERE fno = 122
        let q = SpjQuery::new(
            vec!["Flights".into()],
            Expr::eq(Expr::col(0, 0), Expr::Const(Value::Int(122))),
            vec![Expr::Add(
                Box::new(Expr::col(0, 1)),
                Box::new(Expr::Const(Value::Int(1))),
            )],
        );
        let out = eval_spj(&db, &q).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Date(101)]]);
    }

    #[test]
    fn range_predicates() {
        let db = fig1_db();
        let q = SpjQuery::new(
            vec!["Flights".into()],
            Expr::cmp(CmpOp::Ge, Expr::col(0, 1), Expr::Const(Value::Date(101))),
            vec![Expr::col(0, 0)],
        );
        let out = eval_spj(&db, &q).unwrap();
        let fnos: Vec<i64> = out.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(fnos, vec![123, 235]);
    }

    #[test]
    fn empty_join_order_yields_single_projected_row() {
        let db = fig1_db();
        // SELECT 1 WHERE TRUE — zero tables: one output row.
        let q = SpjQuery::new(
            vec![],
            Expr::Const(Value::Bool(true)),
            vec![Expr::Const(Value::Int(1))],
        );
        let out = eval_spj(&db, &q).unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(1)]]);
    }
}
