//! Resolved scalar expressions evaluated over a join environment.
//!
//! An expression is *resolved*: column references carry the position of
//! their table in the join order plus the column index, so evaluation is a
//! couple of array index operations — no name lookups at run time. The SQL
//! front end and the entangled-query grounding both lower into this form.

use crate::value::Value;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }

    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Column `col` of the `tbl`-th table in the join order.
    Col { tbl: usize, col: usize },
    /// Comparison producing a boolean.
    Cmp {
        op: CmpOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic / date addition.
    Add(Box<Expr>, Box<Expr>),
    /// Arithmetic / date subtraction.
    Sub(Box<Expr>, Box<Expr>),
}

/// Evaluation errors: type mix-ups that the loose dialect cannot rule out
/// statically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    NotBool,
    BadArith,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotBool => write!(f, "expression is not boolean"),
            EvalError::BadArith => write!(f, "invalid operand types for arithmetic"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    pub fn col(tbl: usize, col: usize) -> Expr {
        Expr::Col { tbl, col }
    }

    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op: CmpOp::Eq,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::And(Box::new(lhs), Box::new(rhs))
    }

    /// Conjunction of many expressions; `TRUE` when empty.
    pub fn and_all(mut exprs: Vec<Expr>) -> Expr {
        match exprs.len() {
            0 => Expr::Const(Value::Bool(true)),
            1 => exprs.pop().expect("len checked"),
            _ => {
                let mut it = exprs.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, Expr::and)
            }
        }
    }

    /// Evaluate against an environment: one row per table in the join order.
    pub fn eval(&self, env: &[&[Value]]) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Col { tbl, col } => Ok(env[*tbl][*col].clone()),
            Expr::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(env)?;
                let r = rhs.eval(env)?;
                Ok(Value::Bool(op.eval(&l, &r)))
            }
            Expr::And(l, r) => {
                // Short-circuit.
                if !l.eval_bool(env)? {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(r.eval_bool(env)?))
            }
            Expr::Or(l, r) => {
                if l.eval_bool(env)? {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(r.eval_bool(env)?))
            }
            Expr::Not(e) => Ok(Value::Bool(!e.eval_bool(env)?)),
            Expr::Add(l, r) => {
                let (l, r) = (l.eval(env)?, r.eval(env)?);
                l.add(&r).ok_or(EvalError::BadArith)
            }
            Expr::Sub(l, r) => {
                let (l, r) = (l.eval(env)?, r.eval(env)?);
                l.sub(&r).ok_or(EvalError::BadArith)
            }
        }
    }

    /// Evaluate and require a boolean result.
    pub fn eval_bool(&self, env: &[&[Value]]) -> Result<bool, EvalError> {
        match self.eval(env)? {
            Value::Bool(b) => Ok(b),
            _ => Err(EvalError::NotBool),
        }
    }

    /// Flatten nested `And`s into a conjunct list (for pushdown planning).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
                Expr::Const(Value::Bool(true)) => {}
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// The largest table position referenced, or `None` for a constant
    /// expression. Determines the earliest join stage at which a conjunct
    /// can be applied.
    pub fn max_table(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Col { tbl, .. } => Some(*tbl),
            Expr::Cmp { lhs, rhs, .. } | Expr::Add(lhs, rhs) | Expr::Sub(lhs, rhs) => {
                max_opt(lhs.max_table(), rhs.max_table())
            }
            Expr::And(l, r) | Expr::Or(l, r) => max_opt(l.max_table(), r.max_table()),
            Expr::Not(e) => e.max_table(),
        }
    }
}

fn max_opt(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (x, None) | (None, x) => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(rows: &[Vec<Value>]) -> Vec<&[Value]> {
        rows.iter().map(|r| r.as_slice()).collect()
    }

    #[test]
    fn basic_eval() {
        let rows = vec![vec![Value::Int(122), Value::str("LA")]];
        let e = Expr::eq(Expr::col(0, 1), Expr::Const(Value::str("LA")));
        assert!(e.eval_bool(&env(&rows)).unwrap());
        let e = Expr::cmp(CmpOp::Gt, Expr::col(0, 0), Expr::Const(Value::Int(200)));
        assert!(!e.eval_bool(&env(&rows)).unwrap());
    }

    #[test]
    fn cross_table_refs() {
        let rows = vec![
            vec![Value::Int(122)],
            vec![Value::Int(122), Value::str("United")],
        ];
        let e = Expr::eq(Expr::col(0, 0), Expr::col(1, 0));
        assert!(e.eval_bool(&env(&rows)).unwrap());
    }

    #[test]
    fn short_circuit_and_or_not() {
        let rows = vec![vec![Value::Int(1)]];
        let t = Expr::Const(Value::Bool(true));
        let f = Expr::Const(Value::Bool(false));
        // Right side would error (non-boolean) if evaluated.
        let bad = Expr::Const(Value::Int(9));
        let e = Expr::And(Box::new(f.clone()), Box::new(bad.clone()));
        assert!(!e.eval_bool(&env(&rows)).unwrap());
        let e = Expr::Or(Box::new(t.clone()), Box::new(bad));
        assert!(e.eval_bool(&env(&rows)).unwrap());
        let e = Expr::Not(Box::new(f));
        assert!(e.eval_bool(&env(&rows)).unwrap());
    }

    #[test]
    fn arithmetic_and_dates() {
        let rows = vec![vec![Value::Date(100)]];
        let stay = Expr::Sub(
            Box::new(Expr::Const(Value::Date(103))),
            Box::new(Expr::col(0, 0)),
        );
        assert_eq!(stay.eval(&env(&rows)).unwrap(), Value::Int(3));
        let bad = Expr::Add(
            Box::new(Expr::Const(Value::str("x"))),
            Box::new(Expr::Const(Value::Bool(true))),
        );
        assert_eq!(bad.eval(&env(&rows)), Err(EvalError::BadArith));
    }

    #[test]
    fn non_bool_condition_is_error() {
        let rows = vec![vec![Value::Int(1)]];
        assert_eq!(
            Expr::Const(Value::Int(3)).eval_bool(&env(&rows)),
            Err(EvalError::NotBool)
        );
    }

    #[test]
    fn conjunct_flattening() {
        let a = Expr::eq(Expr::col(0, 0), Expr::Const(Value::Int(1)));
        let b = Expr::eq(Expr::col(1, 0), Expr::Const(Value::Int(2)));
        let c = Expr::eq(Expr::col(2, 0), Expr::Const(Value::Int(3)));
        let e = Expr::and(Expr::and(a.clone(), b.clone()), c.clone());
        let cs = e.conjuncts();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0], &a);
        assert_eq!(cs[2], &c);
        // TRUE constants vanish.
        let e = Expr::and_all(vec![]);
        assert!(e.conjuncts().is_empty());
    }

    #[test]
    fn and_all_folds() {
        let rows = vec![vec![Value::Int(5)]];
        let e = Expr::and_all(vec![
            Expr::cmp(CmpOp::Ge, Expr::col(0, 0), Expr::Const(Value::Int(5))),
            Expr::cmp(CmpOp::Le, Expr::col(0, 0), Expr::Const(Value::Int(5))),
        ]);
        assert!(e.eval_bool(&env(&rows)).unwrap());
        assert!(Expr::and_all(vec![]).eval_bool(&env(&rows)).unwrap());
    }

    #[test]
    fn max_table_tracks_deepest_reference() {
        let e = Expr::and(
            Expr::eq(Expr::col(0, 0), Expr::Const(Value::Int(1))),
            Expr::eq(Expr::col(2, 1), Expr::col(1, 0)),
        );
        assert_eq!(e.max_table(), Some(2));
        assert_eq!(Expr::Const(Value::Null).max_table(), None);
    }

    #[test]
    fn cmp_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert!(CmpOp::Ne.eval(&Value::Int(1), &Value::Int(2)));
    }
}
