//! Catalog partitioning: which shard owns which table.
//!
//! The engine hash-partitions the catalog by table — every row, lock
//! resource, and log record of a table belongs to the table's shard, so a
//! transaction whose footprint stays inside one shard's tables touches
//! exactly one lock manager, one WAL segment, and one commit pipeline.
//! The rule lives here, next to the catalog, so storage, locking, logging
//! and recovery all route identically.
//!
//! The hash is `DefaultHasher` (SipHash with fixed keys) over the
//! lower-cased table name, which is deterministic across runs and
//! processes — a recovered engine must assign every table to the same
//! shard that logged it.

use std::hash::{Hash, Hasher};

/// The shard (in `0..shards`) that owns `table`. Case-insensitive, like
/// the catalog. Lock resources derived from a table may carry a
/// `table#index` suffix (index-key resources); everything after `#` is
/// ignored so they route with their table.
pub fn shard_of_table(table: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let base = table.split('#').next().unwrap_or(table);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for b in base.bytes() {
        b.to_ascii_lowercase().hash(&mut h);
    }
    (h.finish() % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_case_insensitive_and_in_range() {
        for n in [1usize, 2, 3, 4, 8] {
            for name in ["Flights", "Hotels", "Reserve", "User", "x"] {
                let s = shard_of_table(name, n);
                assert!(s < n);
                assert_eq!(s, shard_of_table(&name.to_uppercase(), n));
                assert_eq!(s, shard_of_table(name, n), "stable across calls");
            }
        }
    }

    #[test]
    fn index_key_resources_route_with_their_table() {
        assert_eq!(
            shard_of_table("Reserve#reserve_uid", 4),
            shard_of_table("Reserve", 4)
        );
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        assert_eq!(shard_of_table("anything", 1), 0);
        assert_eq!(shard_of_table("anything", 0), 0);
    }

    #[test]
    fn small_table_sets_spread_across_shards() {
        // The travel workload's tables must not all land on one shard of
        // four, or sharding would be a no-op for the benchmarks.
        let tables = ["Flights", "Hotels", "Reserve", "User", "Account"];
        let shards: std::collections::BTreeSet<usize> =
            tables.iter().map(|t| shard_of_table(t, 4)).collect();
        assert!(shards.len() >= 2, "tables all hashed to one shard");
    }
}
