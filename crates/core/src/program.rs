//! Transaction programs: the parsed body of a `BEGIN … COMMIT` block
//! (§3.1 syntax), plus the runtime transaction state the engine threads
//! through the scheduler.

use crate::error::EngineError;
use std::time::{Duration, Instant};
use youtopia_sql::{parse_script, Statement, VarEnv};
use youtopia_storage::Value;
use youtopia_wal::LogRecord;

/// A client-visible transaction identifier, stable across retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

/// A parsed entangled-transaction program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Body statements (without BEGIN/COMMIT brackets).
    pub statements: Vec<Statement>,
    /// `WITH TIMEOUT` from the BEGIN statement.
    pub timeout: Option<Duration>,
}

impl Program {
    /// Parse a full `BEGIN …; …; COMMIT;` script (Figure 2 style).
    pub fn parse(script: &str) -> Result<Program, EngineError> {
        let statements = parse_script(script)?;
        let mut it = statements.into_iter();
        let timeout = match it.next() {
            Some(Statement::Begin { timeout }) => timeout,
            _ => {
                return Err(EngineError::Protocol(
                    "program must start with BEGIN TRANSACTION",
                ))
            }
        };
        let mut body: Vec<Statement> = it.collect();
        match body.pop() {
            Some(Statement::Commit) => {}
            _ => return Err(EngineError::Protocol("program must end with COMMIT")),
        }
        if body
            .iter()
            .any(|s| matches!(s, Statement::Begin { .. } | Statement::Commit))
        {
            return Err(EngineError::Protocol("nested BEGIN/COMMIT not supported"));
        }
        Ok(Program {
            statements: body,
            timeout,
        })
    }

    /// Build a program directly from statements (used by workload
    /// generators that skip the parser for speed).
    pub fn from_statements(statements: Vec<Statement>, timeout: Option<Duration>) -> Program {
        Program {
            statements,
            timeout,
        }
    }

    /// How many entangled queries the program contains.
    pub fn entangled_query_count(&self) -> usize {
        self.statements.iter().filter(|s| s.is_entangled()).count()
    }

    /// A classical read-only program: nothing but `SELECT` and `SET @var`.
    /// Such a transaction writes nothing, entangles with nobody, and needs
    /// no durable record — the engine routes it to the lock-free snapshot
    /// read path when [`crate::EngineConfig::snapshot_reads`] is on.
    pub fn is_read_only(&self) -> bool {
        self.statements
            .iter()
            .all(|s| matches!(s, Statement::Select(_) | Statement::SetVar { .. }))
    }
}

/// Where a transaction stands in its lifecycle (§4's run states).
#[derive(Debug, Clone, PartialEq)]
pub enum TxnStatus {
    /// In the dormant pool, waiting to be scheduled into a run.
    Dormant,
    /// Executing inside a run.
    Running,
    /// Blocked on the entangled query at `statement` (evaluated in batch
    /// at the synchronization point of the run).
    Blocked {
        statement: usize,
    },
    /// Finished its body; waiting for its entanglement group (if any) to
    /// also be ready — "ready to commit, pending partner's commit".
    ReadyToCommit,
    Committed,
    /// Aborted this attempt; the scheduler decides whether to retry.
    Aborted(EngineError),
    /// Gave up permanently (timeout expired).
    Failed(EngineError),
}

/// Undo-log entry for in-memory rollback (the WAL handles durability; this
/// handles live aborts without a recovery pass).
#[derive(Debug, Clone)]
pub enum Undo {
    Insert {
        table: String,
        row: u64,
    },
    Delete {
        table: String,
        row: u64,
        before: Vec<Value>,
    },
    Update {
        table: String,
        row: u64,
        before: Vec<Value>,
    },
}

/// The runtime state of one transaction attempt.
#[derive(Debug)]
pub struct Txn {
    /// Stable client id (same across retries).
    pub client: ClientId,
    /// Engine-level transaction id for this attempt (fresh per retry —
    /// each retry is a new transaction in the formal model).
    pub tx: u64,
    pub program: Program,
    pub status: TxnStatus,
    /// Next statement to execute.
    pub pc: usize,
    /// Host-variable environment.
    pub env: VarEnv,
    pub undo: Vec<Undo>,
    /// Transaction-local redo buffer: `Begin` and the write records of
    /// this attempt accumulate here **privately** during execution and hit
    /// the shared WAL only when the commit batch publishes them in one
    /// reserved append. An abort simply drops the buffer — aborted work
    /// never reaches the log, and a crashed run leaves no mid-execution
    /// records of in-flight transactions in the durable prefix.
    pub redo: Vec<LogRecord>,
    /// Pinned snapshot timestamp, when this attempt runs on the
    /// multi-version read path (read-only classical transactions only):
    /// every SELECT evaluates against the committed versions visible at
    /// this timestamp, with no S locks. `None` = the locked path. The
    /// engine pins in [`begin`](crate::Engine::begin) and unpins at
    /// commit/abort.
    pub snapshot: Option<u64>,
    /// Arrival time — the `WITH TIMEOUT` deadline is measured from here,
    /// across retries (§3.1: the timeout limits total waiting).
    pub arrived: Instant,
    /// Retry count.
    pub attempt: u32,
    /// Answers received so far (for inspection/tests), one per answered
    /// entangled query: the head tuple.
    pub answers: Vec<Vec<Value>>,
}

impl Txn {
    pub fn new(client: ClientId, tx: u64, program: Program) -> Txn {
        Txn {
            client,
            tx,
            program,
            status: TxnStatus::Dormant,
            pc: 0,
            env: VarEnv::new(),
            undo: Vec::new(),
            redo: Vec::new(),
            snapshot: None,
            arrived: Instant::now(),
            attempt: 0,
            answers: Vec::new(),
        }
    }

    /// Has the WITH TIMEOUT deadline passed?
    pub fn deadline_passed(&self, now: Instant) -> bool {
        match self.program.timeout {
            Some(t) => now.duration_since(self.arrived) >= t,
            None => false,
        }
    }

    /// Reset per-attempt state for a retry (fresh engine tx id assigned by
    /// the scheduler).
    pub fn reset_for_retry(&mut self, new_tx: u64) {
        self.tx = new_tx;
        self.pc = 0;
        self.env.clear();
        self.undo.clear();
        self.redo.clear();
        self.snapshot = None;
        self.answers.clear();
        self.status = TxnStatus::Dormant;
        self.attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = "BEGIN TRANSACTION WITH TIMEOUT 2 DAYS;\
        SELECT 'Mickey', fno, fdate AS @ArrivalDay INTO ANSWER FlightRes \
        WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
        AND ('Minnie', fno, fdate) IN ANSWER FlightRes CHOOSE 1;\
        SET @StayLength = '2011-05-06' - @ArrivalDay;\
        SELECT 'Mickey', hid, @ArrivalDay, @StayLength INTO ANSWER HotelRes \
        WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA') \
        AND ('Minnie', hid, @ArrivalDay, @StayLength) IN ANSWER HotelRes CHOOSE 1;\
        COMMIT;";

    #[test]
    fn figure2_program_parses() {
        let p = Program::parse(FIG2).unwrap();
        assert_eq!(p.timeout, Some(Duration::from_secs(2 * 86400)));
        assert_eq!(p.statements.len(), 3);
        assert_eq!(p.entangled_query_count(), 2);
    }

    #[test]
    fn brackets_required() {
        assert!(matches!(
            Program::parse("SELECT 1; COMMIT;"),
            Err(EngineError::Protocol(_))
        ));
        assert!(matches!(
            Program::parse("BEGIN; SELECT 1;"),
            Err(EngineError::Protocol(_))
        ));
        assert!(matches!(
            Program::parse("BEGIN; BEGIN; COMMIT; COMMIT;"),
            Err(EngineError::Protocol(_))
        ));
    }

    #[test]
    fn read_only_detection() {
        let ro = Program::parse("BEGIN; SET @x = 1; SELECT a FROM T; COMMIT;").unwrap();
        assert!(ro.is_read_only());
        let w = Program::parse("BEGIN; SELECT a FROM T; INSERT INTO T (a) VALUES (1); COMMIT;")
            .unwrap();
        assert!(!w.is_read_only());
        assert!(!Program::parse(FIG2).unwrap().is_read_only(), "entangled");
        let rb = Program::parse("BEGIN; SELECT a FROM T; ROLLBACK; COMMIT;").unwrap();
        assert!(!rb.is_read_only(), "rollback takes the classical path");
    }

    #[test]
    fn deadline_logic() {
        let p = Program::parse("BEGIN WITH TIMEOUT 1 SECONDS; SELECT 1; COMMIT;").unwrap();
        let t = Txn::new(ClientId(1), 1, p);
        assert!(!t.deadline_passed(t.arrived));
        assert!(t.deadline_passed(t.arrived + Duration::from_secs(2)));
        // No timeout = never expires.
        let p = Program::parse("BEGIN; SELECT 1; COMMIT;").unwrap();
        let t = Txn::new(ClientId(1), 2, p);
        assert!(!t.deadline_passed(t.arrived + Duration::from_secs(3600)));
    }

    #[test]
    fn retry_resets_attempt_state() {
        let p = Program::parse("BEGIN; SELECT 1; COMMIT;").unwrap();
        let mut t = Txn::new(ClientId(3), 7, p);
        t.pc = 5;
        t.env.insert("x".into(), Value::Int(1));
        t.answers.push(vec![Value::Int(2)]);
        t.redo.push(LogRecord::Begin { tx: 7 });
        t.status = TxnStatus::Aborted(EngineError::TimedOut);
        let arrived = t.arrived;
        t.reset_for_retry(8);
        assert_eq!(t.tx, 8);
        assert_eq!(t.pc, 0);
        assert!(t.env.is_empty());
        assert!(t.answers.is_empty());
        assert!(t.redo.is_empty(), "stale redo must not leak into a retry");
        assert_eq!(t.attempt, 1);
        assert_eq!(t.status, TxnStatus::Dormant);
        assert_eq!(t.arrived, arrived, "arrival time preserved across retries");
    }
}
