//! Engine error type.

use std::fmt;
use youtopia_entangle::{GroundError, IrError};
use youtopia_lock::LockError;
use youtopia_sql::{LowerError, ParseError};
use youtopia_storage::StorageError;
use youtopia_wal::CodecError;

/// Anything that can go wrong while executing an entangled transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    Parse(ParseError),
    Lower(LowerError),
    Storage(StorageError),
    Lock(LockError),
    Ir(IrError),
    Ground(GroundError),
    /// The transaction's `WITH TIMEOUT` deadline expired before its
    /// entangled queries found partners (§3.1: "an error is thrown and
    /// must be handled by the application code").
    TimedOut,
    /// An entangled query returned an empty answer and the engine policy
    /// aborts in that case.
    EmptyAnswer,
    /// Explicit `ROLLBACK` statement.
    RolledBack,
    /// Aborted because an entanglement partner aborted (group abort —
    /// widowed-transaction prevention, §3.3.3).
    GroupAbort,
    /// The durable log could not be decoded during crash recovery
    /// (genuine mid-log corruption — torn tails are not an error).
    Recovery(CodecError),
    /// A checkpoint was requested outside a quiesce point (transactions
    /// still hold or await locks) — the image would not be
    /// transactionally consistent.
    Checkpoint(&'static str),
    /// Statement used outside a transaction, misplaced BEGIN/COMMIT, etc.
    Protocol(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Lower(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Lock(e) => write!(f, "{e}"),
            EngineError::Ir(e) => write!(f, "{e}"),
            EngineError::Ground(e) => write!(f, "{e}"),
            EngineError::TimedOut => {
                write!(f, "entangled transaction timed out waiting for partners")
            }
            EngineError::EmptyAnswer => write!(f, "entangled query returned an empty answer"),
            EngineError::RolledBack => write!(f, "transaction rolled back"),
            EngineError::GroupAbort => write!(f, "aborted with entanglement group"),
            EngineError::Recovery(e) => write!(f, "recovery failed: {e}"),
            EngineError::Checkpoint(w) => write!(f, "checkpoint refused: {w}"),
            EngineError::Protocol(w) => write!(f, "protocol error: {w}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}
impl From<LowerError> for EngineError {
    fn from(e: LowerError) -> Self {
        EngineError::Lower(e)
    }
}
impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}
impl From<LockError> for EngineError {
    fn from(e: LockError) -> Self {
        EngineError::Lock(e)
    }
}
impl From<IrError> for EngineError {
    fn from(e: IrError) -> Self {
        EngineError::Ir(e)
    }
}
impl From<GroundError> for EngineError {
    fn from(e: GroundError) -> Self {
        EngineError::Ground(e)
    }
}
impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Recovery(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(EngineError::TimedOut.to_string().contains("timed out"));
        assert!(EngineError::GroupAbort.to_string().contains("group"));
        assert!(EngineError::Protocol("x").to_string().contains("x"));
    }

    #[test]
    fn conversions() {
        let e: EngineError = LockError::Deadlock.into();
        assert_eq!(e, EngineError::Lock(LockError::Deadlock));
        let e: EngineError = StorageError::NoSuchTable("t".into()).into();
        assert!(matches!(e, EngineError::Storage(_)));
        let e: EngineError = CodecError::Corrupt("tag").into();
        assert!(matches!(e, EngineError::Recovery(_)));
        assert!(e.to_string().contains("recovery failed"));
        assert!(EngineError::Checkpoint("busy")
            .to_string()
            .contains("checkpoint refused: busy"));
    }
}
