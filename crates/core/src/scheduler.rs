//! The run-based scheduler of §4 for non-interactive entangled
//! transactions.
//!
//! Transactions arrive into a **dormant pool**. A **run** takes every
//! pooled transaction and executes it until it blocks on an entangled
//! query, aborts, or reaches ready-to-commit; then all pending entangled
//! queries are evaluated **as one batch**; answered transactions resume.
//! This repeats until a fixpoint ("the run terminates when each transaction
//! has either aborted, reached the ready to commit state, or blocked on an
//! entangled query and is unable to proceed"). Ready transactions that
//! satisfy the group-commit constraint commit; blocked ones are aborted and
//! returned to the pool for later runs — exactly the Figure 4 walkthrough.
//!
//! Concurrency is bounded by `connections`, mirroring §5.2.1's observation
//! that MySQL throughput is connection-bound (one transaction per
//! connection).

use crate::engine::{Engine, EvalReport, IsolationMode};
use crate::error::EngineError;
use crate::program::{ClientId, Program, Txn, TxnStatus};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// When to start a run (§4 "Scheduling": "the system may schedule a new
/// run once ten new transactions have arrived" — that is `Arrivals(10)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunTrigger {
    /// Start a run automatically after this many arrivals (the paper's
    /// run frequency `f`).
    Arrivals(usize),
    /// Runs start only when [`Scheduler::run_once`] is called.
    Manual,
}

/// When to write a fuzzy checkpoint (and truncate the log prefix it
/// supersedes). The settle phase of a run is the only checkpoint site:
/// every transaction of the run has committed or aborted there, so the
/// image is a transactionally-consistent run-boundary state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many runs (`None` = no run cadence).
    pub every_runs: Option<usize>,
    /// Checkpoint once this many bytes were published to the WAL since
    /// the last checkpoint (`None` = no byte cadence). Whichever cadence
    /// fires first wins.
    pub every_bytes: Option<u64>,
    /// Truncate the log prefix after each checkpoint (the bounded-WAL
    /// behaviour; `false` keeps full history with inline images — useful
    /// for crash-matrix tests and ablations).
    pub truncate: bool,
}

impl CheckpointPolicy {
    /// Checkpointing off (the default): the log grows with history.
    pub const DISABLED: CheckpointPolicy = CheckpointPolicy {
        every_runs: None,
        every_bytes: None,
        truncate: true,
    };

    /// Checkpoint + truncate every `n` runs.
    pub fn every_runs(n: usize) -> CheckpointPolicy {
        CheckpointPolicy {
            every_runs: Some(n),
            ..CheckpointPolicy::DISABLED
        }
    }

    /// Checkpoint + truncate once `bytes` of log were published since the
    /// last image.
    pub fn every_bytes(bytes: u64) -> CheckpointPolicy {
        CheckpointPolicy {
            every_bytes: Some(bytes),
            ..CheckpointPolicy::DISABLED
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.every_runs.is_some() || self.every_bytes.is_some()
    }

    fn due(&self, runs_since: usize, bytes_since: u64) -> bool {
        self.every_runs.is_some_and(|n| runs_since >= n.max(1))
            || self.every_bytes.is_some_and(|m| bytes_since >= m)
    }
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::DISABLED
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Concurrent connections (worker threads per run). `1` gives fully
    /// deterministic execution.
    pub connections: usize,
    pub trigger: RunTrigger,
    /// Retry ceiling per transaction (the `WITH TIMEOUT` deadline is the
    /// paper's mechanism; this is a safety valve for untimed programs).
    pub max_attempts: u32,
    /// Checkpoint cadence (off by default).
    pub checkpoint: CheckpointPolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            connections: 1,
            trigger: RunTrigger::Manual,
            max_attempts: 50,
            checkpoint: CheckpointPolicy::DISABLED,
        }
    }
}

/// Final outcome of a client transaction.
#[derive(Debug)]
pub struct ClientResult {
    pub client: ClientId,
    pub status: TxnStatus,
    pub attempts: u32,
    /// Entangled answers received by the successful attempt.
    pub answers: Vec<Vec<youtopia_storage::Value>>,
    /// Host-variable environment at the end of the final attempt — the
    /// values the transaction's SELECTs bound (how tests observe what a
    /// snapshot read actually saw).
    pub env: youtopia_sql::VarEnv,
}

/// Counters for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    pub executed: usize,
    pub committed: usize,
    pub returned_to_pool: usize,
    pub failed: usize,
    pub eval_rounds: usize,
    pub eval: EvalReport,
    /// Device syncs this run paid (group commit amortizes these: the
    /// ratio `syncs / committed` drops below 1 under concurrency).
    pub syncs: u64,
    /// Checkpoints written at this run's settle boundary (0 or 1).
    pub checkpoints: u64,
    /// Log bytes reclaimed by this run's checkpoint truncation.
    pub truncated_bytes: u64,
    /// Row versions reclaimed by the settle-boundary vacuum (multi-version
    /// GC: everything older than the oldest live snapshot).
    pub versions_pruned: u64,
    /// Base rows materialized as candidates by this run's statements
    /// (O(table) per scanned stage, O(matches) per index probe).
    pub rows_scanned: u64,
    /// Index probes served to this run's statements.
    pub index_lookups: u64,
    /// Snapshot point/range reads this run that probed the live
    /// history-union index and filtered by version visibility instead of
    /// materializing a per-snapshot index copy.
    pub index_rebuilds_avoided: u64,
    /// Cross-shard commit units this run drove through the two-phase
    /// protocol (0 on a single-shard engine).
    pub cross_shard_commits: u64,
    /// Cross-shard prepare records this run wrote (one per participant
    /// shard of each cross-shard unit).
    pub cross_shard_prepares: u64,
    /// Device syncs this run paid, per shard segment (sums to `syncs`).
    pub shard_syncs: Vec<u64>,
    /// Waits-for cycles broken by victim selection during this run,
    /// summed over every lock shard (local enqueue-time detections plus
    /// cross-shard probe convictions).
    pub deadlocks: u64,
    /// Lock waits that expired during this run. With detection on,
    /// cross-shard cycles are convicted instead of landing here; the
    /// timeout backstops the `DeadlockPolicy::Timeout` ablation.
    pub timeouts: u64,
    /// Victims convicted by the cross-shard deadlock detector during
    /// this run (a subset of `deadlocks`; 0 with detection off).
    pub deadlock_victims: u64,
    /// Edge-chasing probes blocked waiters launched during this run.
    pub detection_probes: u64,
    /// Lock-protocol events checked by the auditor during this run (0 in
    /// unaudited builds).
    pub audit_events: u64,
}

/// Cumulative statistics.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub runs: usize,
    pub committed: usize,
    pub failed: usize,
    pub total_attempts: u64,
    pub group_commits: usize,
    pub group_aborts: usize,
    /// Device syncs paid by scheduler runs (the setup bootstrap sync is
    /// excluded); `syncs / committed` is the amortization figure the
    /// durability pipeline optimizes.
    pub syncs: u64,
    /// Group-commit batches completed during this scheduler's runs
    /// (`CommitBatch` boundaries written), same scope as `syncs`.
    pub commit_batches: u64,
    /// Checkpoint images written at settle boundaries.
    pub checkpoints: u64,
    /// Total log bytes reclaimed by checkpoint truncations — the
    /// bounded-WAL dividend.
    pub truncated_bytes: u64,
    /// Total row versions reclaimed by settle-boundary vacuums — the
    /// bounded-version-store dividend of the multi-version read path.
    pub versions_pruned: u64,
    /// Base rows materialized as join/scan candidates across all runs —
    /// the access-path cost secondary indexes attack (a point statement
    /// should cost O(1) here, not O(table)).
    pub rows_scanned: u64,
    /// Index probes (named or anonymous) served across all runs.
    pub index_lookups: u64,
    /// Snapshot point/range reads served by the live history-union index
    /// (visibility-filtered probes) instead of a per-snapshot index
    /// rebuild, across all runs.
    pub index_rebuilds_avoided: u64,
    /// Cross-shard commit units across all runs (the two-phase tax
    /// counter; 0 on a single-shard engine).
    pub cross_shard_commits: u64,
    /// Cross-shard prepare records across all runs.
    pub cross_shard_prepares: u64,
    /// Device syncs per shard segment, same scope as `syncs` (their sum).
    /// Skew here shows whether commit pressure spread across pipelines.
    pub shard_syncs: Vec<u64>,
    /// Waits-for cycles broken by victim selection across all runs.
    pub deadlocks: u64,
    /// Expired lock waits across all runs (the timeout backstop; with
    /// detection on, cross-shard cycles surface as `deadlock_victims`
    /// instead).
    pub timeouts: u64,
    /// Cross-shard detector convictions across all runs.
    pub deadlock_victims: u64,
    /// Edge-chasing probes across all runs.
    pub detection_probes: u64,
    /// Lock-protocol events checked by the auditor across all runs (0 in
    /// unaudited builds).
    pub audit_events: u64,
}

impl Stats {
    /// Device syncs per committed transaction — < 1 means group commit is
    /// amortizing durability across transactions.
    pub fn syncs_per_commit(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.syncs as f64 / self.committed as f64
        }
    }
}

/// The run-based scheduler.
pub struct Scheduler {
    pub engine: Arc<Engine>,
    pub config: SchedulerConfig,
    dormant: VecDeque<Txn>,
    arrivals_since_run: usize,
    results: Vec<ClientResult>,
    stats: Stats,
    next_client: u64,
    /// Checkpoint cadence state: runs settled and WAL length at the last
    /// checkpoint (logical bytes, so truncation does not reset growth
    /// accounting).
    runs_since_checkpoint: usize,
    wal_len_at_checkpoint: u64,
}

impl Scheduler {
    pub fn new(engine: Arc<Engine>, config: SchedulerConfig) -> Scheduler {
        let wal_len = engine.wal.len();
        Scheduler {
            engine,
            config,
            dormant: VecDeque::new(),
            arrivals_since_run: 0,
            results: Vec::new(),
            stats: Stats::default(),
            next_client: 1,
            runs_since_checkpoint: 0,
            wal_len_at_checkpoint: wal_len,
        }
    }

    /// Submit a program; returns its client id. May trigger a run
    /// (depending on [`RunTrigger`]).
    pub fn submit(&mut self, program: Program) -> ClientId {
        let client = ClientId(self.next_client);
        self.next_client += 1;
        let txn = Txn::new(client, self.engine.alloc_tx(), program);
        self.dormant.push_back(txn);
        self.arrivals_since_run += 1;
        if let RunTrigger::Arrivals(f) = self.config.trigger {
            if self.arrivals_since_run >= f {
                self.run_once();
            }
        }
        client
    }

    /// Transactions currently waiting in the dormant pool.
    pub fn pool_len(&self) -> usize {
        self.dormant.len()
    }

    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Completed transactions (committed or permanently failed).
    pub fn results(&self) -> &[ClientResult] {
        &self.results
    }

    pub fn take_results(&mut self) -> Vec<ClientResult> {
        std::mem::take(&mut self.results)
    }

    /// Execute one run over the whole dormant pool (§4).
    pub fn run_once(&mut self) -> RunReport {
        self.arrivals_since_run = 0;
        self.stats.runs += 1;
        let mut report = RunReport::default();
        let syncs_before = self.engine.wal.sync_count();
        let shard_syncs_before = self.engine.wal.sync_counts();
        let batches_before = self.engine.commit_batches();
        let scanned_before = self.engine.rows_scanned();
        let lookups_before = self.engine.index_lookups();
        let rebuilds_avoided_before = self.engine.index_rebuilds_avoided();
        let cross_commits_before = self.engine.cross_shard_commits();
        let cross_prepares_before = self.engine.cross_shard_prepares();
        let deadlocks_before = self.engine.deadlocks();
        let timeouts_before = self.engine.timeouts();
        let victims_before = self.engine.deadlock_victims();
        let probes_before = self.engine.detection_probes();
        let audit_events_before = self.engine.audit_events();
        let now = Instant::now();

        // Pull the pool; expire transactions whose deadline passed.
        let mut run: Vec<Txn> = Vec::with_capacity(self.dormant.len());
        while let Some(txn) = self.dormant.pop_front() {
            if txn.deadline_passed(now) || txn.attempt >= self.config.max_attempts {
                self.finish(txn, TxnStatus::Failed(EngineError::TimedOut));
                report.failed += 1;
            } else {
                run.push(txn);
            }
        }
        report.executed = run.len();
        if run.is_empty() {
            return report;
        }

        // Open each attempt's private redo buffer with its BEGIN record.
        for txn in &mut run {
            self.engine.begin(txn);
        }

        // Phase loop: advance everyone, then evaluate the pending
        // entangled queries in one batch; repeat while progress is made.
        let mut to_advance: Vec<usize> = (0..run.len()).collect();
        loop {
            self.advance_parallel(&mut run, &to_advance);
            let blocked: Vec<usize> = run
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, TxnStatus::Blocked { .. }))
                .map(|(i, _)| i)
                .collect();
            if blocked.is_empty() {
                break;
            }
            report.eval_rounds += 1;
            let eval = {
                let mut refs = disjoint_muts(&mut run, &blocked);
                self.engine.evaluate_queries(&mut refs)
            };
            report.eval.answered += eval.answered;
            report.eval.empty += eval.empty;
            report.eval.no_partner += eval.no_partner;
            report.eval.aborted += eval.aborted;
            // Whoever resumed needs advancing; everyone else is settled.
            to_advance = run
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == TxnStatus::Running)
                .map(|(i, _)| i)
                .collect();
            if to_advance.is_empty() {
                break;
            }
        }

        // ---- End of run: group commit / abort / return to pool ----
        self.settle(run, &mut report);
        // Settle boundary = GC boundary: every transaction of the run has
        // committed or aborted, so the only snapshots still pinned belong
        // to other schedulers sharing the engine — the vacuum horizon
        // (oldest live snapshot) makes pruning safe regardless.
        report.versions_pruned = self.engine.vacuum();
        self.stats.versions_pruned += report.versions_pruned;
        self.maybe_checkpoint(&mut report);
        report.syncs = self.engine.wal.sync_count() - syncs_before;
        self.stats.syncs += report.syncs;
        report.shard_syncs = self
            .engine
            .wal
            .sync_counts()
            .iter()
            .zip(&shard_syncs_before)
            .map(|(after, before)| after - before)
            .collect();
        if self.stats.shard_syncs.len() != report.shard_syncs.len() {
            self.stats.shard_syncs = vec![0; report.shard_syncs.len()];
        }
        for (total, delta) in self.stats.shard_syncs.iter_mut().zip(&report.shard_syncs) {
            *total += delta;
        }
        self.stats.commit_batches += self.engine.commit_batches() - batches_before;
        report.rows_scanned = self.engine.rows_scanned() - scanned_before;
        report.index_lookups = self.engine.index_lookups() - lookups_before;
        report.index_rebuilds_avoided =
            self.engine.index_rebuilds_avoided() - rebuilds_avoided_before;
        report.cross_shard_commits = self.engine.cross_shard_commits() - cross_commits_before;
        report.cross_shard_prepares = self.engine.cross_shard_prepares() - cross_prepares_before;
        self.stats.rows_scanned += report.rows_scanned;
        self.stats.index_lookups += report.index_lookups;
        self.stats.index_rebuilds_avoided += report.index_rebuilds_avoided;
        self.stats.cross_shard_commits += report.cross_shard_commits;
        self.stats.cross_shard_prepares += report.cross_shard_prepares;
        report.deadlocks = self.engine.deadlocks() - deadlocks_before;
        report.timeouts = self.engine.timeouts() - timeouts_before;
        report.deadlock_victims = self.engine.deadlock_victims() - victims_before;
        report.detection_probes = self.engine.detection_probes() - probes_before;
        report.audit_events = self.engine.audit_events() - audit_events_before;
        self.stats.deadlocks += report.deadlocks;
        self.stats.timeouts += report.timeouts;
        self.stats.deadlock_victims += report.deadlock_victims;
        self.stats.detection_probes += report.detection_probes;
        self.stats.audit_events += report.audit_events;
        report
    }

    /// Settle-boundary checkpoint: every transaction of the run has
    /// committed or aborted (the engine's quiesce precondition), so if the
    /// cadence is due, write an image and reclaim the superseded prefix.
    fn maybe_checkpoint(&mut self, report: &mut RunReport) {
        self.runs_since_checkpoint += 1;
        if !self.config.checkpoint.is_enabled() {
            return;
        }
        let published = self
            .engine
            .wal
            .len()
            .saturating_sub(self.wal_len_at_checkpoint);
        if !self
            .config
            .checkpoint
            .due(self.runs_since_checkpoint, published)
        {
            return;
        }
        match self.engine.checkpoint(self.config.checkpoint.truncate) {
            Ok(cp) => {
                report.checkpoints += 1;
                report.truncated_bytes += cp.truncated_bytes;
                report.versions_pruned += cp.versions_pruned;
                self.stats.checkpoints += 1;
                self.stats.truncated_bytes += cp.truncated_bytes;
                self.stats.versions_pruned += cp.versions_pruned;
                self.runs_since_checkpoint = 0;
                self.wal_len_at_checkpoint = self.engine.wal.len();
            }
            Err(_) => {
                // Not quiescent (e.g. another scheduler shares the
                // engine): skip this boundary, try again next run.
            }
        }
    }

    /// Advance the given transactions until block/ready/abort, using up to
    /// `connections` worker threads.
    fn advance_parallel(&self, run: &mut [Txn], indices: &[usize]) {
        if indices.is_empty() {
            return;
        }
        let workers = self.config.connections.max(1).min(indices.len());
        // Classical transactions are executed "as-is" (§5.1): a transaction
        // that reaches ready-to-commit without having entangled has no
        // group-commit constraint and commits immediately, releasing its
        // locks mid-run instead of holding them to the settle point.
        let eager_commit = |txn: &mut Txn| {
            if txn.status == TxnStatus::ReadyToCommit && !self.engine.groups.is_grouped(txn.tx) {
                self.engine.commit_group(&mut [txn]);
            }
        };
        if workers == 1 {
            for &i in indices {
                self.engine.run_until_block(&mut run[i]);
                eager_commit(&mut run[i]);
            }
            return;
        }
        let engine = &self.engine;
        let (task_tx, task_rx) = crossbeam::channel::unbounded::<(usize, Txn)>();
        let (done_tx, done_rx) = crossbeam::channel::unbounded::<(usize, Txn)>();
        // Move the txns out, process, move back.
        let mut slots: Vec<Option<Txn>> = run.iter_mut().map(|_| None).collect();
        for &i in indices {
            let txn = std::mem::replace(
                &mut run[i],
                Txn::new(ClientId(0), 0, Program::from_statements(vec![], None)),
            );
            task_tx.send((i, txn)).expect("open channel");
        }
        drop(task_tx);
        crossbeam::scope(|s| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let done_tx = done_tx.clone();
                s.spawn(move |_| {
                    while let Ok((i, mut txn)) = task_rx.recv() {
                        engine.run_until_block(&mut txn);
                        if txn.status == TxnStatus::ReadyToCommit
                            && !engine.groups.is_grouped(txn.tx)
                        {
                            engine.commit_group(&mut [&mut txn]);
                        }
                        done_tx.send((i, txn)).expect("open channel");
                    }
                });
            }
            drop(done_tx);
            while let Ok((i, txn)) = done_rx.recv() {
                slots[i] = Some(txn);
            }
        })
        .expect("worker panicked");
        for (i, slot) in slots.into_iter().enumerate() {
            if let Some(txn) = slot {
                run[i] = txn;
            }
        }
    }

    /// Apply end-of-run outcomes: group commit for fully-ready groups,
    /// group aborts where a member failed, retries for the still-blocked.
    fn settle(&mut self, mut run: Vec<Txn>, report: &mut RunReport) {
        let engine = self.engine.clone();
        let group_commit_enabled = engine.config.isolation != IsolationMode::AllowWidows;

        // Group membership over engine tx ids.
        let mut by_tx: HashMap<u64, usize> = HashMap::new();
        for (i, t) in run.iter().enumerate() {
            by_tx.insert(t.tx, i);
        }

        // Decide fate of every ready transaction.
        let mut committed_idx: HashSet<usize> = HashSet::new();
        let mut group_abort_idx: HashSet<usize> = HashSet::new();
        let ready: Vec<usize> = run
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == TxnStatus::ReadyToCommit)
            .map(|(i, _)| i)
            .collect();

        // Plan which groups can commit (cheap, single-threaded)…
        let mut commit_plans: Vec<Vec<usize>> = Vec::new();
        if group_commit_enabled {
            let mut handled: HashSet<usize> = HashSet::new();
            for &i in &ready {
                if handled.contains(&i) {
                    continue;
                }
                let members = engine.groups.members(run[i].tx);
                let member_idx: Vec<usize> = members
                    .iter()
                    .filter_map(|t| by_tx.get(t))
                    .copied()
                    .collect();
                let all_ready = members.len() == member_idx.len()
                    && member_idx
                        .iter()
                        .all(|&j| run[j].status == TxnStatus::ReadyToCommit);
                if all_ready {
                    if member_idx.len() > 1 {
                        self.stats.group_commits += 1;
                    }
                    committed_idx.extend(member_idx.iter().copied());
                    handled.extend(member_idx.iter().copied());
                    commit_plans.push(member_idx);
                } else {
                    // Widow prevention: some member aborted or is blocked —
                    // the ready members must abort too.
                    group_abort_idx.insert(i);
                    handled.insert(i);
                }
            }
        } else {
            // AllowWidows: commit the ready ones individually.
            for &i in &ready {
                commit_plans.push(vec![i]);
                committed_idx.insert(i);
            }
        }

        // …then drain every ready group into ONE commit batch: all redo
        // buffers publish back-to-back in a single reserved append and one
        // group-commit sync covers the whole wave — instead of one commit
        // (and one sync) per group. Group boundaries within the batch are
        // reconstructed by the engine from the `GroupManager`.
        let batch: Vec<usize> = commit_plans.iter().flatten().copied().collect();
        if !batch.is_empty() {
            let mut refs = disjoint_muts(&mut run, &batch);
            engine.commit_batch(&mut refs);
        }

        for i in group_abort_idx.iter().copied() {
            let t = &mut run[i];
            engine.abort(t, EngineError::GroupAbort);
            self.stats.group_aborts += 1;
        }

        // Settle every transaction.
        for (i, mut txn) in run.into_iter().enumerate() {
            if committed_idx.contains(&i) {
                report.committed += 1;
                self.finish(txn, TxnStatus::Committed);
                continue;
            }
            match txn.status.clone() {
                TxnStatus::Blocked { .. } => {
                    // Abort the attempt and return to the pool (§4).
                    engine.abort(&mut txn, EngineError::Protocol("blocked at end of run"));
                    self.requeue(txn, report);
                }
                TxnStatus::Aborted(EngineError::GroupAbort)
                | TxnStatus::Aborted(EngineError::Lock(_)) => {
                    // Transient: retry.
                    self.requeue(txn, report);
                }
                TxnStatus::Aborted(e) => {
                    // Business/semantic abort: final.
                    report.failed += 1;
                    self.finish(txn, TxnStatus::Failed(e));
                }
                TxnStatus::ReadyToCommit => {
                    // Unreachable under group_commit_enabled=false; under
                    // group commit the ready-but-unhandled case went
                    // through group_abort_idx. Defensive requeue.
                    engine.abort(&mut txn, EngineError::Protocol("unsettled ready txn"));
                    self.requeue(txn, report);
                }
                TxnStatus::Committed => {
                    report.committed += 1;
                    self.finish(txn, TxnStatus::Committed);
                }
                s @ (TxnStatus::Dormant | TxnStatus::Running | TxnStatus::Failed(_)) => {
                    // Running/Dormant cannot survive the phase loop.
                    self.finish(txn, s);
                }
            }
        }
    }

    fn requeue(&mut self, mut txn: Txn, report: &mut RunReport) {
        let now = Instant::now();
        if txn.deadline_passed(now) || txn.attempt + 1 >= self.config.max_attempts {
            report.failed += 1;
            self.finish(txn, TxnStatus::Failed(EngineError::TimedOut));
            return;
        }
        let new_tx = self.engine.alloc_tx();
        txn.reset_for_retry(new_tx);
        report.returned_to_pool += 1;
        self.dormant.push_back(txn);
    }

    fn finish(&mut self, txn: Txn, status: TxnStatus) {
        self.stats.total_attempts += (txn.attempt + 1) as u64;
        match status {
            TxnStatus::Committed => self.stats.committed += 1,
            TxnStatus::Failed(_) => self.stats.failed += 1,
            _ => {}
        }
        self.results.push(ClientResult {
            client: txn.client,
            answers: txn.answers.clone(),
            env: txn.env.clone(),
            attempts: txn.attempt + 1,
            status,
        });
    }

    /// Run until the pool drains or no further progress is possible;
    /// transactions still pooled after two consecutive zero-progress runs
    /// fail with [`EngineError::TimedOut`].
    pub fn drain(&mut self) -> Stats {
        let mut zero_progress = 0;
        while !self.dormant.is_empty() {
            let before_pool = self.dormant.len();
            let report = self.run_once();
            let progressed =
                report.committed > 0 || report.failed > 0 || self.dormant.len() < before_pool;
            if progressed {
                zero_progress = 0;
            } else {
                zero_progress += 1;
                if zero_progress >= 2 {
                    while let Some(txn) = self.dormant.pop_front() {
                        self.finish(txn, TxnStatus::Failed(EngineError::TimedOut));
                    }
                    break;
                }
            }
        }
        self.stats.clone()
    }
}

/// Safely materialize mutable references to the given **distinct** indices
/// of `slice`, preserving the order of `indices`.
///
/// Implemented by walking the slice with `split_at_mut` in ascending index
/// order — no `unsafe`, no aliasing: each reference comes from a disjoint
/// subslice. Panics if an index repeats or is out of range (both are
/// scheduler invariants: a transaction belongs to exactly one blocked set
/// / commit plan per phase).
fn disjoint_muts<'a, T>(slice: &'a mut [T], indices: &[usize]) -> Vec<&'a mut T> {
    let mut order: Vec<usize> = (0..indices.len()).collect();
    order.sort_unstable_by_key(|&k| indices[k]);
    let mut out: Vec<Option<&'a mut T>> = Vec::with_capacity(indices.len());
    out.resize_with(indices.len(), || None);
    let mut rest = slice;
    let mut consumed = 0usize;
    for &k in &order {
        let i = indices[k];
        assert!(i >= consumed, "indices must be distinct");
        let (_, tail) = std::mem::take(&mut rest).split_at_mut(i - consumed);
        let (item, tail) = tail.split_at_mut(1);
        out[k] = Some(&mut item[0]);
        rest = tail;
        consumed = i + 1;
    }
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, IsolationMode};
    use youtopia_isolation::is_entangled_isolated;
    use youtopia_storage::Value;

    fn engine() -> Arc<Engine> {
        let e = Engine::new(EngineConfig::default());
        e.setup(
            "CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT);\
             CREATE TABLE Hotels (hid INT, location TEXT);\
             CREATE TABLE Reserve (uid TEXT, fid INT);\
             INSERT INTO Flights VALUES (122, '1970-04-11', 'LA');\
             INSERT INTO Flights VALUES (123, '1970-04-12', 'LA');\
             INSERT INTO Hotels VALUES (7, 'LA');\
             INSERT INTO Hotels VALUES (8, 'LA');",
        )
        .unwrap();
        Arc::new(e)
    }

    fn flight_txn(me: &str, other: &str) -> Program {
        Program::parse(&format!(
            "BEGIN WITH TIMEOUT 10 SECONDS; \
             SELECT '{me}', fno AS @fno INTO ANSWER FlightRes \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('{other}', fno) IN ANSWER FlightRes CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
        ))
        .unwrap()
    }

    /// Figure 2-style: coordinate on flight, then hotel.
    fn travel_txn(me: &str, other: &str) -> Program {
        Program::parse(&format!(
            "BEGIN WITH TIMEOUT 10 SECONDS; \
             SELECT '{me}', fno AS @fno INTO ANSWER FlightRes \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('{other}', fno) IN ANSWER FlightRes CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); \
             SELECT '{me}', hid AS @hid INTO ANSWER HotelRes \
             WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA') \
             AND ('{other}', hid) IN ANSWER HotelRes CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('{me}', @hid); COMMIT;"
        ))
        .unwrap()
    }

    #[test]
    fn disjoint_muts_preserves_index_order() {
        let mut v = vec![10, 20, 30, 40, 50];
        let refs = disjoint_muts(&mut v, &[4, 0, 2]);
        assert_eq!(refs.iter().map(|r| **r).collect::<Vec<_>>(), [50, 10, 30]);
        for r in refs {
            *r += 1;
        }
        assert_eq!(v, vec![11, 20, 31, 40, 51]);
        assert!(disjoint_muts(&mut v, &[]).is_empty());
        let all = disjoint_muts(&mut v, &[0, 1, 2, 3, 4]);
        assert_eq!(all.len(), 5);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn disjoint_muts_rejects_duplicates() {
        let mut v = vec![1, 2, 3];
        let _ = disjoint_muts(&mut v, &[1, 1]);
    }

    #[test]
    fn pair_commits_in_one_run() {
        let mut s = Scheduler::new(engine(), SchedulerConfig::default());
        s.submit(flight_txn("Mickey", "Minnie"));
        s.submit(flight_txn("Minnie", "Mickey"));
        let report = s.run_once();
        assert_eq!(report.executed, 2);
        assert_eq!(report.committed, 2);
        assert_eq!(s.stats().group_commits, 1);
        assert_eq!(s.pool_len(), 0);
        s.engine.with_db(|db| {
            assert_eq!(db.table("Reserve").unwrap().len(), 2);
        });
    }

    #[test]
    fn figure_4_walkthrough() {
        // Mickey & Donald arrive first: a run answers nobody (Donald's
        // partner Daffy is absent; Mickey's partner Minnie too).
        let mut s = Scheduler::new(engine(), SchedulerConfig::default());
        s.submit(travel_txn("Mickey", "Minnie"));
        s.submit(travel_txn("Donald", "Daffy"));
        let r1 = s.run_once();
        assert_eq!(r1.committed, 0);
        assert_eq!(r1.returned_to_pool, 2);
        assert_eq!(s.pool_len(), 2);

        // Minnie arrives; the second run commits Mickey & Minnie through
        // BOTH entangled queries while Donald blocks again.
        s.submit(travel_txn("Minnie", "Mickey"));
        let r2 = s.run_once();
        assert_eq!(r2.committed, 2, "{r2:?}");
        assert!(r2.eval_rounds >= 2, "flight round then hotel round");
        assert_eq!(r2.returned_to_pool, 1, "Donald returns to the pool");
        assert_eq!(s.pool_len(), 1);

        // Bookings: flight + hotel for each of Mickey and Minnie.
        s.engine.with_db(|db| {
            assert_eq!(db.table("Reserve").unwrap().len(), 4);
        });

        // The recorded history is valid and entangled-isolated.
        let sched = s.engine.recorder.schedule();
        // Donald is still in flight (pooled) so the history is incomplete;
        // check after failing him out.
        let stats = s.drain();
        assert_eq!(stats.committed, 2);
        assert_eq!(stats.failed, 1, "Donald eventually times out");
        let sched = {
            let _ = sched;
            s.engine.recorder.schedule()
        };
        sched.validate().unwrap();
        assert!(is_entangled_isolated(&sched));
    }

    #[test]
    fn arrival_trigger_runs_automatically() {
        let mut s = Scheduler::new(
            engine(),
            SchedulerConfig {
                trigger: RunTrigger::Arrivals(2),
                ..Default::default()
            },
        );
        s.submit(flight_txn("Mickey", "Minnie"));
        assert_eq!(s.stats().runs, 0);
        s.submit(flight_txn("Minnie", "Mickey"));
        assert_eq!(s.stats().runs, 1, "second arrival triggered the run");
        assert_eq!(s.stats().committed, 2);
    }

    #[test]
    fn multi_connection_run_matches_single_connection_result() {
        for connections in [1usize, 4] {
            let mut s = Scheduler::new(
                engine(),
                SchedulerConfig {
                    connections,
                    ..Default::default()
                },
            );
            for i in 0..8 {
                let a = format!("u{i}a");
                let b = format!("u{i}b");
                s.submit(flight_txn(&a, &b));
                s.submit(flight_txn(&b, &a));
            }
            let stats = s.drain();
            assert_eq!(stats.committed, 16, "connections={connections}");
            s.engine.with_db(|db| {
                assert_eq!(db.table("Reserve").unwrap().len(), 16);
            });
        }
    }

    #[test]
    fn widowed_partner_forces_group_abort_and_retry() {
        // Minnie's program rolls back AFTER entangling on the flight:
        // Mickey must not commit (Figure 3(a)); he retries and eventually
        // fails by timeout (his partner is gone for good).
        let e = engine();
        let mut s = Scheduler::new(e, SchedulerConfig::default());
        s.submit(flight_txn("Mickey", "Minnie"));
        s.submit(
            Program::parse(
                "BEGIN WITH TIMEOUT 10 SECONDS; \
                 SELECT 'Minnie', fno INTO ANSWER FlightRes \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('Mickey', fno) IN ANSWER FlightRes CHOOSE 1; \
                 ROLLBACK; COMMIT;",
            )
            .unwrap(),
        );
        let r = s.run_once();
        assert_eq!(r.committed, 0, "widow prevented: {r:?}");
        assert_eq!(s.stats().group_aborts, 1);
        // Mickey is pooled again; Minnie failed for good.
        assert_eq!(s.pool_len(), 1);
        assert_eq!(s.stats().failed, 1);
        // Nothing leaked into the database.
        s.engine
            .with_db(|db| assert_eq!(db.table("Reserve").unwrap().len(), 0));
        // The final history shows no widowed-transaction anomaly.
        let sched = s.engine.recorder.schedule();
        assert!(
            !youtopia_isolation::find_anomalies(&sched.expand_quasi_reads())
                .iter()
                .any(|a| matches!(a, youtopia_isolation::Anomaly::WidowedTransaction { .. })),
            "group abort must prevent widows"
        );
    }

    #[test]
    fn allow_widows_mode_commits_the_survivor() {
        // Ablation Ab2: with group commit off, Mickey commits even though
        // Minnie rolled back — the recorded history exhibits the
        // widowed-transaction anomaly.
        let e = Engine::new(EngineConfig {
            isolation: IsolationMode::AllowWidows,
            ..EngineConfig::default()
        });
        e.setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Reserve (uid TEXT, fid INT);\
             INSERT INTO Flights VALUES (122, 'LA');",
        )
        .unwrap();
        let mut s = Scheduler::new(Arc::new(e), SchedulerConfig::default());
        s.submit(
            Program::parse(
                "BEGIN; SELECT 'Mickey', fno AS @fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('Minnie', fno) IN ANSWER R CHOOSE 1; \
                 INSERT INTO Reserve (uid, fid) VALUES ('Mickey', @fno); COMMIT;",
            )
            .unwrap(),
        );
        s.submit(
            Program::parse(
                "BEGIN; SELECT 'Minnie', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('Mickey', fno) IN ANSWER R CHOOSE 1; \
                 ROLLBACK; COMMIT;",
            )
            .unwrap(),
        );
        let r = s.run_once();
        assert_eq!(r.committed, 1, "Mickey committed despite Minnie's abort");
        // The history now contains a genuine widowed transaction. The
        // recorder omits entangle links in AllowWidows mode only for group
        // *commit* purposes; the E op is still recorded.
        let sched = s.engine.recorder.schedule();
        let anomalies = youtopia_isolation::find_anomalies(&sched.expand_quasi_reads());
        assert!(
            anomalies
                .iter()
                .any(|a| matches!(a, youtopia_isolation::Anomaly::WidowedTransaction { .. })),
            "expected a widow, got {anomalies:?}"
        );
    }

    #[test]
    fn checkpoint_cadence_bounds_the_retained_log() {
        let mut s = Scheduler::new(
            engine(),
            SchedulerConfig {
                checkpoint: CheckpointPolicy::every_runs(1),
                ..SchedulerConfig::default()
            },
        );
        let mut retained = Vec::new();
        for i in 0..6 {
            let a = format!("a{i}");
            let b = format!("b{i}");
            s.submit(flight_txn(&a, &b));
            s.submit(flight_txn(&b, &a));
            let r = s.run_once();
            assert_eq!(r.committed, 2);
            assert_eq!(r.checkpoints, 1, "cadence: one checkpoint per run");
            assert!(r.truncated_bytes > 0);
            retained.push(s.engine.wal.retained_len());
        }
        assert_eq!(s.stats().checkpoints, 6);
        assert!(s.stats().truncated_bytes > 0);
        // Bounded WAL: the retained log is a suffix since the last image,
        // not full history — so it stays flat while logical length grows.
        let spread = retained.iter().max().unwrap() - retained.iter().min().unwrap();
        let logical = s.engine.wal.len();
        assert!(
            spread * 4 < logical,
            "retained log should be ~flat (spread {spread}) vs logical growth ({logical})"
        );
        assert!(s.engine.wal.retained_len() < logical);
        // The recovered engine still has everything.
        s.engine.crash_and_recover().unwrap();
        s.engine.with_db(|db| {
            assert_eq!(db.table("Reserve").unwrap().len(), 12);
        });
    }

    #[test]
    fn byte_cadence_checkpoints_when_the_log_grows_enough() {
        let mut s = Scheduler::new(
            engine(),
            SchedulerConfig {
                // Tiny byte budget: every run's publish crosses it.
                checkpoint: CheckpointPolicy::every_bytes(1),
                ..SchedulerConfig::default()
            },
        );
        s.submit(flight_txn("Mickey", "Minnie"));
        s.submit(flight_txn("Minnie", "Mickey"));
        let r = s.run_once();
        assert_eq!(r.checkpoints, 1);
        // No growth since the image → the next run skips the checkpoint.
        let r2 = s.run_once();
        assert_eq!(r2.checkpoints, 0);
        assert_eq!(s.stats().checkpoints, 1);
    }

    #[test]
    fn drain_times_out_partnerless_transactions() {
        let mut s = Scheduler::new(engine(), SchedulerConfig::default());
        s.submit(flight_txn("Donald", "Daffy"));
        let stats = s.drain();
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.failed, 1);
        let results = s.take_results();
        assert!(matches!(
            results[0].status,
            TxnStatus::Failed(EngineError::TimedOut)
        ));
    }

    #[test]
    fn answers_surface_in_results() {
        let mut s = Scheduler::new(engine(), SchedulerConfig::default());
        s.submit(flight_txn("Mickey", "Minnie"));
        s.submit(flight_txn("Minnie", "Mickey"));
        s.run_once();
        let results = s.take_results();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert_eq!(r.status, TxnStatus::Committed);
            assert_eq!(r.attempts, 1);
            assert_eq!(r.answers.len(), 1);
            assert_eq!(
                r.answers[0][1],
                Value::Int(122),
                "deterministic first choice"
            );
        }
    }

    #[test]
    fn hundred_pairs_drain_cleanly() {
        let mut s = Scheduler::new(
            engine(),
            SchedulerConfig {
                connections: 8,
                ..Default::default()
            },
        );
        for i in 0..100 {
            let a = format!("a{i}");
            let b = format!("b{i}");
            s.submit(flight_txn(&a, &b));
            s.submit(flight_txn(&b, &a));
        }
        let stats = s.drain();
        assert_eq!(stats.committed, 200);
        assert_eq!(stats.failed, 0);
        let sched = s.engine.recorder.schedule();
        sched.validate().unwrap();
        assert!(is_entangled_isolated(&sched));
    }
}
