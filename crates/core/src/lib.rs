//! # entangled-txn
//!
//! The paper's primary contribution — **entangled transactions** (Gupta et
//! al., *Entangled Transactions*, PVLDB 4(7), 2011) — as a Rust library:
//! transaction-like units of work that communicate with concurrent
//! transactions through entangled queries, with the semantic model of §3
//! (oracle consistency, entangled isolation, group atomicity/durability)
//! and the run-based execution model of §4.
//!
//! ## Layers
//!
//! * [`program`] — `BEGIN … COMMIT` programs (Figure 2 syntax), runtime
//!   transaction state, timeouts, retries.
//! * [`engine`] — the middle-tier engine of §5.1: transaction lifecycle
//!   over a per-table concurrent catalog, joint entangled-query evaluation
//!   with grounding-read locks (§3.3.3), two-phase batched commit (redo
//!   buffers publish in one reserved append; a leader/follower
//!   group-commit sync covers whole batches; committed row versions
//!   install at a batch commit timestamp before locks release), in-memory
//!   undo for live aborts, snapshot pin/unpin + version GC
//!   (`Engine::vacuum`), crash simulation + recovery.
//! * [`executor`] — classical statement execution: a [`TxnContext`] pins
//!   per-table handles and pre-resolved column indexes per statement;
//!   Strict 2PL (not a storage latch) carries isolation, and write
//!   records accumulate in the transaction-private redo buffer — only
//!   commit/abort touch the shared WAL device. Read-only transactions
//!   bypass all of that: they evaluate against a pinned commit-timestamp
//!   snapshot of the multi-version store, acquiring no locks at all
//!   (`EngineConfig::snapshot_reads`).
//! * [`scheduler`] — the §4 run-based scheduler: dormant pool, arrival-
//!   triggered runs (the paper's frequency `f`), phase loop with batch
//!   query evaluation (Figure 4), group-commit settlement, retry and
//!   `WITH TIMEOUT` expiry.
//! * [`oracle`] — the entangled query oracle of Definitions 3.2–3.4 for
//!   executing a *single* entangled transaction to completion.
//! * [`recorder`] — emits `youtopia-isolation` schedules from real
//!   executions so every run can be audited against Appendix C.
//! * [`groups`] — transitive entanglement groups for group commit/abort.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig};
//!
//! let engine = Arc::new(Engine::new(EngineConfig::default()));
//! engine.setup(
//!     "CREATE TABLE Flights (fno INT, dest TEXT);
//!      INSERT INTO Flights VALUES (122, 'LA');",
//! ).unwrap();
//! let mut sched = Scheduler::new(engine, SchedulerConfig::default());
//! for (me, other) in [("Mickey", "Minnie"), ("Minnie", "Mickey")] {
//!     sched.submit(Program::parse(&format!(
//!         "BEGIN WITH TIMEOUT 10 SECONDS;
//!          SELECT '{me}', fno INTO ANSWER Reservation
//!          WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA')
//!          AND ('{other}', fno) IN ANSWER Reservation CHOOSE 1;
//!          COMMIT;"
//!     )).unwrap());
//! }
//! let report = sched.run_once();
//! assert_eq!(report.committed, 2);
//! ```

pub mod engine;
pub mod error;
pub mod executor;
pub mod groups;
pub mod oracle;
pub mod program;
pub mod recorder;
pub mod scheduler;

pub use engine::{
    CheckpointReport, CostModel, DeadlockPolicy, EmptyAnswerPolicy, Engine, EngineConfig,
    EvalReport, IsolationMode, LockGranularity, StepOutcome,
};
pub use error::EngineError;
pub use executor::TxnContext;
pub use groups::{GroupManager, GroupVictimPolicy};
pub use oracle::{run_with_oracle, GroundingOracle, QueryOracle, ReplayOracle};
pub use program::{ClientId, Program, Txn, TxnStatus};
pub use recorder::Recorder;
pub use scheduler::{
    CheckpointPolicy, ClientResult, RunReport, RunTrigger, Scheduler, SchedulerConfig, Stats,
};
