//! The classical-statement executor: one [`TxnContext`] per transaction
//! advance, executing SELECT/INSERT/UPDATE/DELETE/SET against the
//! concurrent catalog.
//!
//! This layer is what replaced the engine's original `RwLock<Database>`
//! monolith: statements now pin only the per-table handles they touch, so
//! transactions on disjoint tables (and readers on shared tables) proceed
//! in parallel through the storage substrate.
//!
//! Durability follows the same discipline: statement execution never
//! touches the shared WAL. Write records accumulate in the transaction's
//! private redo buffer (`Txn::redo`) and are published to the log in one
//! reserved append when the commit batch runs — only commit and abort
//! touch the shared device.

use crate::engine::{Engine, IsolationMode, LockGranularity};
use crate::error::EngineError;
use crate::program::{Txn, Undo};
use std::cell::RefCell;
use youtopia_lock::{LockMode, Resource, TxId};
use youtopia_sql::{
    access_plan, lower_const_scalar, lower_row_scalar, lower_select, lower_table_cond, AccessPlan,
    IndexProbe, RangeProbe, Select, Statement, VarEnv,
};
use youtopia_storage::{
    eval_spj_counted, eval_spj_rows, CatalogSnapshot, CommitTs, Expr, IndexKind, Row, RowId,
    ScanStats, SnapshotTables, StorageError, Table, TableProvider, Value,
};
use youtopia_wal::LogRecord;

/// Per-advance execution context over a pinned catalog snapshot.
///
/// A `TxnContext` is created once per [`Engine::run_until_block`] call. It
/// pins a [`CatalogSnapshot`] (a map of `Arc` table handles — no catalog
/// lock is touched again), and each statement then pins exactly the
/// handles it needs: read guards for lowering and scans, a write guard per
/// row mutation, plus the statement's *pre-resolved* column indexes and
/// row expressions (UPDATE `SET` scalars are lowered to index-bound
/// [`Expr`]s once, so per-row evaluation does no name resolution and no
/// catalog round-trips).
///
/// ## Why 2PL, not the latch, carries isolation
///
/// The table latches inside the snapshot are **physical** protection only:
/// they keep individual row operations and multi-table read batches
/// internally consistent, and are held for strictly bounded, wait-free
/// sections (never across a 2PL lock wait, a channel, or another latch
/// acquired out of sorted order). **Logical** isolation between
/// transactions — repeatable reads, write-write ordering, the §3.3.3
/// grounding-read guarantees — is carried entirely by the Strict-2PL lock
/// manager: every statement acquires its S/X/IS/IX locks *before* touching
/// a handle, and holds them to commit. That separation is exactly what
/// lets the storage layer drop the global `RwLock<Database>` latch: 2PL
/// already serializes conflicting access, so the substrate only has to
/// protect its own memory, not transaction semantics.
///
/// ## The snapshot read path
///
/// A transaction whose attempt pinned a snapshot (`Txn::snapshot`;
/// read-only classical programs under `EngineConfig::snapshot_reads`)
/// never reaches the locked SELECT path at all: its statements evaluate
/// against [`SnapshotTables`] — owned copies of each table as visible at
/// the pinned commit timestamp, materialized once per transaction advance
/// and cached here. No 2PL lock, no latch beyond the one short read latch
/// per table taken during materialization. Writers can commit freely
/// underneath; the snapshot, by the visibility rule, never sees them.
pub struct TxnContext<'e> {
    engine: &'e Engine,
    snapshot: CatalogSnapshot,
    /// Per-advance cache of snapshot-materialized tables (`Arc`-shared;
    /// grown lazily as statements touch tables).
    snapshot_tables: RefCell<Option<SnapshotTables>>,
}

impl std::fmt::Debug for TxnContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnContext")
            .field("snapshot", &self.snapshot)
            .finish()
    }
}

impl<'e> TxnContext<'e> {
    /// Pin the current catalog snapshot for one transaction advance.
    pub fn new(engine: &'e Engine) -> TxnContext<'e> {
        TxnContext {
            engine,
            snapshot: engine.catalog.snapshot(),
            snapshot_tables: RefCell::new(None),
        }
    }

    /// The snapshot-materialized view of the named tables at `ts`,
    /// extending the per-advance cache with any table not yet present.
    /// Tables come from the engine's epoch-keyed materialization cache
    /// ([`Engine::snapshot_table`]), so an unchanged table is copied once
    /// per committed write to it — not once per reader. Returns an owned
    /// handle (`Arc` clones — cheap). Unknown names are skipped; lookups
    /// then fail with `NoSuchTable`, mirroring the locked path.
    fn snapshot_view(
        &self,
        names: &[String],
        ts: CommitTs,
        stats: &mut ScanStats,
    ) -> SnapshotTables {
        let mut cache = self.snapshot_tables.borrow_mut();
        let view = cache.get_or_insert_with(|| SnapshotTables::from_parts(ts, []));
        let missing: Vec<&String> = names.iter().filter(|n| !view.contains(n)).collect();
        if !missing.is_empty() {
            view.absorb(SnapshotTables::from_parts(
                ts,
                missing
                    .into_iter()
                    .filter_map(|n| self.engine.snapshot_table(n, ts, stats)),
            ));
        }
        view.clone()
    }

    /// Serve a single-table snapshot SELECT through the **live** table's
    /// history-union index: probe under one short read latch, resolve
    /// every candidate through its version chain at `ts`
    /// ([`Table::visible_row`]), and evaluate the full predicate over the
    /// survivors. No lock, no latch beyond the probe — and no
    /// materialized copy, which is exactly the per-`(timestamp, epoch)`
    /// index rebuild this path deletes (`index_rebuilds_avoided`).
    /// Returns `None` when the plan is a scan (the caller materializes).
    fn snapshot_probe(
        &self,
        table: &str,
        q: &youtopia_storage::SpjQuery,
        ts: CommitTs,
        stats: &mut ScanStats,
    ) -> Result<Option<youtopia_storage::QueryOutput>, EngineError> {
        let plan = {
            let names = [table.to_string()];
            let _latches = self.engine.latch_tokens(&names);
            let view = self.snapshot.read_view(&names);
            access_plan(&view, table, &q.predicate)?
        };
        let handle = self.snapshot.handle(table)?;
        let candidates: Vec<(RowId, Row)> = {
            let _latch = self.engine.latch_token(table);
            let guard = handle.read();
            let named = guard.named_indexes();
            let ids: Vec<RowId> = match &plan {
                AccessPlan::Point(p) => named
                    .get(&p.index)
                    .map(|ix| ix.probe(&p.key).to_vec())
                    .unwrap_or_default(),
                AccessPlan::Range(rp) => named
                    .get(&rp.index)
                    .and_then(|ix| ix.probe_range(&rp.prefix, rp.lo_ref(), rp.hi_ref()))
                    .unwrap_or_default(),
                AccessPlan::Scan => return Ok(None),
            };
            ids.into_iter()
                .filter_map(|id| guard.visible_row(id, ts).map(|r| (id, r.clone())))
                .collect()
        };
        stats.index_lookups += 1;
        stats.rows_scanned += candidates.len() as u64;
        stats.index_rebuilds_avoided += 1;
        Ok(Some(eval_spj_rows(q, &candidates)?))
    }

    /// Execute one SELECT on the snapshot read path: lower and evaluate
    /// against the pinned committed versions, acquiring **no** locks.
    fn select_at_snapshot(
        &self,
        txn: &mut Txn,
        sel: &Select,
        ts: CommitTs,
    ) -> Result<(), EngineError> {
        let mut stats = ScanStats::default();
        let mut footprint = Vec::new();
        sel.collect_tables(&mut footprint);
        // Lowering needs schemas only; resolve against the live catalog so
        // the probe path below can skip materialization entirely.
        let lowered = {
            let _latches = self.engine.latch_tokens(&footprint);
            let view = self.snapshot.read_view(&footprint);
            lower_select(&view, sel, &txn.env)?
        };
        let mut tables = lowered.query.tables.clone();
        tables.sort();
        tables.dedup();
        let out = match tables.as_slice() {
            [table] => match self.snapshot_probe(table, &lowered.query, ts, &mut stats)? {
                Some(out) => out,
                None => {
                    let view = self.snapshot_view(&tables, ts, &mut stats);
                    eval_spj_counted(&view, &lowered.query, &mut stats)?
                }
            },
            _ => {
                let view = self.snapshot_view(&tables, ts, &mut stats);
                eval_spj_counted(&view, &lowered.query, &mut stats)?
            }
        };
        self.engine.note_scan(stats);
        if self.engine.config.record_history {
            for t in &tables {
                self.engine.recorder.snapshot_read(txn.tx, t);
            }
        }
        if let Some(row) = out.rows.first() {
            for (idx, var) in &lowered.bindings {
                txn.env.insert(var.clone(), row[*idx].clone());
            }
        }
        Ok(())
    }

    fn lock(&self, tx: u64, res: Resource, mode: LockMode) -> Result<(), EngineError> {
        self.engine
            .locks
            .lock(TxId(tx), res, mode, Some(self.engine.config.lock_timeout))
            .map_err(EngineError::from)
    }

    /// Table-level locking for UPDATE/DELETE scans: X at table granularity,
    /// SIX-equivalent (S + IX) at row granularity (scan reads the table,
    /// writes individual rows).
    fn lock_for_write_scan(&self, tx: u64, table: &str) -> Result<(), EngineError> {
        match self.engine.config.granularity {
            LockGranularity::Table => self.lock(tx, Resource::table(table), LockMode::X),
            LockGranularity::Row => {
                self.lock(tx, Resource::table(table), LockMode::S)?;
                self.lock(tx, Resource::table(table), LockMode::IX)
            }
        }
    }

    /// Two-level lock acquisition for an index point access: intention
    /// mode on the table, `mode` on the index-key resource, then `mode`
    /// on every candidate row the probe returns. The key lock is what
    /// makes the candidate set stable — any statement that would add or
    /// remove a row at this key must take X on the same resource first —
    /// so probing *after* the key lock is granted cannot miss or leak
    /// membership. Returns the candidate row ids (row locks held).
    ///
    /// Latch discipline: the probe's read latch is dropped before any row
    /// lock is requested — lock waits never happen under a latch.
    fn lock_index_point(
        &self,
        tx: u64,
        table: &str,
        probe: &IndexProbe,
        table_mode: LockMode,
        mode: LockMode,
    ) -> Result<Vec<RowId>, EngineError> {
        self.lock(tx, Resource::table(table), table_mode)?;
        self.lock(
            tx,
            index_key_resource(table, &probe.index, &probe.key),
            mode,
        )?;
        let handle = self.snapshot.handle(table)?;
        let ids: Vec<RowId> = {
            let _latch = self.engine.latch_token(table);
            let guard = handle.read();
            guard
                .named_indexes()
                .get(&probe.index)
                .map(|i| i.probe(&probe.key).to_vec())
                .unwrap_or_default()
        };
        for id in &ids {
            self.lock(tx, Resource::row(table, id.0), mode)?;
        }
        self.engine.note_scan(ScanStats {
            rows_scanned: ids.len() as u64,
            index_lookups: 1,
            ..ScanStats::default()
        });
        Ok(ids)
    }

    /// Next-key lock acquisition for a range access over a btree index:
    /// intention mode on the table, then `mode` on **every existing key
    /// in the probed interval plus the successor key beyond it** (the EOF
    /// sentinel when the range runs off the index), then `mode` on every
    /// candidate row. Any insert into the interval must X-lock the posted
    /// key (an existing in-range key, if a duplicate) and IX-lock its
    /// successor ([`Self::lock_btree_successor`]) — both conflict with the
    /// reader's S — and any delete X-locks the removed key itself. So once
    /// the lock set covers a probe, interval membership is frozen: the
    /// range-phantom hole that previously forced range statements to
    /// table-S is closed.
    ///
    /// Probe → lock → re-probe fixpoint: each probe runs under a short
    /// read latch, locks are taken after it drops (no lock wait under a
    /// latch), and the loop repeats until a probe discovers no key the
    /// set doesn't already cover. The set only grows, so conflicting
    /// traffic makes progress toward convergence; rounds are bounded as a
    /// livelock backstop.
    fn lock_index_range(
        &self,
        tx: u64,
        table: &str,
        rp: &RangeProbe,
        table_mode: LockMode,
        mode: LockMode,
    ) -> Result<Vec<RowId>, EngineError> {
        self.lock(tx, Resource::table(table), table_mode)?;
        let handle = self.snapshot.handle(table)?;
        let mut locked = std::collections::HashSet::new();
        for _ in 0..NEXT_KEY_ROUNDS {
            let probe = {
                let _latch = self.engine.latch_token(table);
                let guard = handle.read();
                guard
                    .named_indexes()
                    .get(&rp.index)
                    .and_then(|ix| ix.probe_range_entries(&rp.prefix, rp.lo_ref(), rp.hi_ref()))
            };
            let Some((entries, successor)) = probe else {
                return Ok(Vec::new()); // index vanished (not reachable for a planned range)
            };
            let mut wanted: Vec<Resource> = entries
                .iter()
                .map(|(k, _)| index_key_resource(table, &rp.index, k))
                .collect();
            wanted.push(match &successor {
                Some(k) => index_key_resource(table, &rp.index, k),
                None => index_eof_resource(table, &rp.index),
            });
            let mut grew = false;
            for res in wanted {
                if locked.insert(res.clone()) {
                    self.lock(tx, res, mode)?;
                    grew = true;
                }
            }
            if !grew {
                // Converged: hand the successor-or-EOF resource this probe
                // relies on to the auditor, which verifies an S-covering
                // lock on it is really held (the next-key invariant).
                self.engine.audit_range_covered(
                    tx,
                    &match &successor {
                        Some(k) => index_key_resource(table, &rp.index, k),
                        None => index_eof_resource(table, &rp.index),
                    },
                );
                let ids: Vec<RowId> = entries.iter().flat_map(|(_, ids)| ids.clone()).collect();
                for id in &ids {
                    self.lock(tx, Resource::row(table, id.0), mode)?;
                }
                self.engine.note_scan(ScanStats {
                    rows_scanned: ids.len() as u64,
                    index_lookups: 1,
                    ..ScanStats::default()
                });
                return Ok(ids);
            }
        }
        Err(EngineError::Protocol(
            "next-key range lock did not converge",
        ))
    }

    /// The inserter half of the next-key protocol: before posting `key`
    /// into btree index `index`, lock the first existing key strictly
    /// greater than it (or the EOF sentinel) — the very key a concurrent
    /// range reader whose interval covers `key` holds S on. The lock is
    /// **IX**, not X: it conflicts with a range reader's S (phantom
    /// protection) but not with another inserter's IX, so two
    /// transactions posting adjacent keys — e.g. entangled partners
    /// booking under each other's uid, holding locks to a *group* commit
    /// — don't re-create the Ab4 standoff on the successor. Same
    /// probe → lock → re-probe fixpoint as the reader side: a committed
    /// interleaving can slide a nearer successor in before our lock
    /// lands, in which case the nearer key is locked too.
    fn lock_btree_successor(
        &self,
        tx: u64,
        table: &str,
        index: &str,
        key: &Value,
    ) -> Result<(), EngineError> {
        let handle = self.snapshot.handle(table)?;
        let mut last: Option<Resource> = None;
        for _ in 0..NEXT_KEY_ROUNDS {
            let succ = {
                let _latch = self.engine.latch_token(table);
                let guard = handle.read();
                match guard.named_indexes().get(index).map(|ix| ix.successor(key)) {
                    Some(Some(s)) => s,
                    // Index vanished or is a hash — no key order to protect.
                    Some(None) | None => return Ok(()),
                }
            };
            let res = match &succ {
                Some(k) => index_key_resource(table, index, k),
                None => index_eof_resource(table, index),
            };
            if last.as_ref() == Some(&res) {
                return Ok(());
            }
            self.lock(tx, res.clone(), LockMode::IX)?;
            last = Some(res);
        }
        Err(EngineError::Protocol(
            "next-key insert lock did not converge",
        ))
    }

    /// X locks on the index-key resources a write invalidates: for every
    /// named index on `table`, the key a row enters or leaves — plus, for
    /// btree indexes, the successor of any key the write *posts* (the
    /// inserter half of the next-key protocol; removals need no successor
    /// lock, the departing key's own X suffices). Taken *before* the heap
    /// mutation, so a point reader holding key S can never observe
    /// membership shift under it, and a range reader's interval can't
    /// grow a phantom. Only needed at row granularity — a table X lock
    /// already excludes the IS readers.
    fn lock_index_keys_for_write(
        &self,
        tx: u64,
        table: &str,
        defs: &[IndexDef],
        old: Option<&[Value]>,
        new: Option<&[Value]>,
    ) -> Result<(), EngineError> {
        if self.engine.config.granularity != LockGranularity::Row {
            return Ok(());
        }
        for def in defs {
            let (o, n) = (old.map(|r| def.key_of(r)), new.map(|r| def.key_of(r)));
            if o == n {
                continue;
            }
            if let Some(key) = &o {
                self.lock(tx, index_key_resource(table, &def.name, key), LockMode::X)?;
            }
            if let Some(key) = &n {
                self.lock(tx, index_key_resource(table, &def.name, key), LockMode::X)?;
                if def.kind == IndexKind::Btree {
                    self.lock_btree_successor(tx, table, &def.name, key)?;
                }
            }
        }
        Ok(())
    }

    /// Lock and collect the target rows of an UPDATE/DELETE. With a point
    /// or range plan at row granularity the statement takes table IX +
    /// key/next-key X + row X and touches only the probe's candidates;
    /// otherwise it falls back to the write-scan protocol (table X, or
    /// S + IX + row X) over a full scan. Probed targets are re-read and
    /// re-filtered after their row locks are granted: the key locks
    /// freeze index membership, but a racing writer that held a
    /// candidate's row lock first may have changed its non-key columns
    /// before releasing — and history-union postings can be stale, which
    /// the same re-filter screens out.
    fn write_targets(
        &self,
        tx: u64,
        table: &str,
        handle: &youtopia_storage::TableHandle,
        pred: &Expr,
        plan: &AccessPlan,
    ) -> Result<Vec<(RowId, Vec<Value>)>, EngineError> {
        let config = &self.engine.config;
        if config.granularity == LockGranularity::Row {
            let ids = match plan {
                AccessPlan::Point(p) => {
                    Some(self.lock_index_point(tx, table, p, LockMode::IX, LockMode::X)?)
                }
                AccessPlan::Range(rp) => {
                    Some(self.lock_index_range(tx, table, rp, LockMode::IX, LockMode::X)?)
                }
                AccessPlan::Scan => None,
            };
            if let Some(ids) = ids {
                let _latch = self.engine.latch_token(table);
                let guard = handle.read();
                let mut targets = Vec::with_capacity(ids.len());
                for id in ids {
                    if let Some(row) = guard.get(id) {
                        if pred
                            .eval_bool(&[row.as_slice()])
                            .map_err(|_| EngineError::Protocol("non-boolean WHERE"))?
                        {
                            targets.push((id, row.clone()));
                        }
                    }
                }
                return Ok(targets);
            }
        }
        self.lock_for_write_scan(tx, table)?;
        let targets = {
            let _latch = self.engine.latch_token(table);
            let guard = handle.read();
            self.engine.note_scan(ScanStats {
                rows_scanned: guard.len() as u64,
                ..ScanStats::default()
            });
            collect_matches(&guard, pred)?
        };
        if config.granularity == LockGranularity::Row {
            for (id, _) in &targets {
                self.lock(tx, Resource::row(table, id.0), LockMode::X)?;
            }
        }
        Ok(targets)
    }

    /// The named-index definitions of `table`, read under a short latch
    /// (empty for unindexed tables — the common case pays one read guard
    /// and no allocation).
    fn named_index_defs(&self, table: &str) -> Result<Vec<IndexDef>, EngineError> {
        let handle = self.snapshot.handle(table)?;
        let _latch = self.engine.latch_token(table);
        let guard = handle.read();
        Ok(guard
            .named_indexes()
            .iter()
            .map(|i| IndexDef {
                name: i.name().to_string(),
                columns: i.columns().to_vec(),
                kind: i.kind(),
            })
            .collect())
    }

    /// Execute one classical statement on behalf of `txn`.
    pub fn execute(&self, txn: &mut Txn, stmt: &Statement) -> Result<(), EngineError> {
        let config = &self.engine.config;
        // Snapshot attempts are read-only by construction (`Program::
        // is_read_only`); route their SELECTs to the versioned path and
        // refuse anything that would mutate state (defense in depth — the
        // begin-time gate should make this unreachable).
        if let Some(ts) = txn.snapshot {
            return match stmt {
                Statement::Select(sel) => self.select_at_snapshot(txn, sel, ts),
                Statement::SetVar { name, expr } => {
                    let v = lower_const_scalar(expr, &txn.env)?;
                    txn.env.insert(name.clone(), v);
                    Ok(())
                }
                _ => Err(EngineError::Protocol("snapshot transactions are read-only")),
            };
        }
        match stmt {
            Statement::Select(sel) => {
                // Lower against the statement's table footprint (needs
                // schemas only), then take 2PL locks, then evaluate on
                // freshly pinned read guards.
                let mut footprint = Vec::new();
                sel.collect_tables(&mut footprint);
                let lowered = {
                    let _latches = self.engine.latch_tokens(&footprint);
                    let view = self.snapshot.read_view(&footprint);
                    lower_select(&view, sel, &txn.env)?
                };
                let mut tables = lowered.query.tables.clone();
                tables.sort();
                tables.dedup();
                // Index-backed point/range read: a single-table SELECT
                // whose predicate the planner serves through a named index
                // takes table IS + index-key S (every in-range key plus
                // the next key, for ranges) + row S on the candidates
                // instead of a table S lock, so probing readers pass point
                // writers on other rows. The key locks freeze index
                // membership (phantom protection the table S lock used to
                // provide — the successor lock closes the range-phantom
                // hole); holding the locks to commit keeps the read
                // repeatable. Not under EarlyReadLockRelease: that
                // ablation's contract is statement-scoped table locks.
                if tables.len() == 1
                    && config.granularity == LockGranularity::Row
                    && config.isolation != IsolationMode::EarlyReadLockRelease
                {
                    let table = &tables[0];
                    let plan = {
                        let _latches = self.engine.latch_tokens(&tables);
                        let view = self.snapshot.read_view(&tables);
                        access_plan(&view, table, &lowered.query.predicate)?
                    };
                    let ids = match &plan {
                        AccessPlan::Point(p) => Some(self.lock_index_point(
                            txn.tx,
                            table,
                            p,
                            LockMode::IS,
                            LockMode::S,
                        )?),
                        AccessPlan::Range(rp) => Some(self.lock_index_range(
                            txn.tx,
                            table,
                            rp,
                            LockMode::IS,
                            LockMode::S,
                        )?),
                        AccessPlan::Scan => None,
                    };
                    if let Some(ids) = ids {
                        let out = match &plan {
                            // Range candidates are already in hand (locked);
                            // evaluate the residual predicate over them
                            // directly — composite prefixes included, which
                            // the generic evaluator cannot serve.
                            AccessPlan::Range(_) => {
                                let handle = self.snapshot.handle(table)?;
                                let candidates: Vec<(RowId, Row)> = {
                                    let _latch = self.engine.latch_token(table);
                                    let guard = handle.read();
                                    ids.iter()
                                        .filter_map(|id| guard.get(*id).map(|r| (*id, r.clone())))
                                        .collect()
                                };
                                eval_spj_rows(&lowered.query, &candidates)?
                            }
                            _ => {
                                let _latches = self.engine.latch_tokens(&tables);
                                let view = self.snapshot.read_view(&tables);
                                let mut stats = ScanStats::default();
                                let out = eval_spj_counted(&view, &lowered.query, &mut stats)?;
                                self.engine.note_scan(stats);
                                out
                            }
                        };
                        if config.record_history {
                            for id in &ids {
                                self.engine.recorder.read_row(txn.tx, table, id.0);
                            }
                        }
                        if let Some(row) = out.rows.first() {
                            for (idx, var) in &lowered.bindings {
                                txn.env.insert(var.clone(), row[*idx].clone());
                            }
                        }
                        return Ok(());
                    }
                }
                for t in &tables {
                    self.lock(txn.tx, Resource::table(t), LockMode::S)?;
                }
                let out = {
                    let _latches = self.engine.latch_tokens(&tables);
                    let view = self.snapshot.read_view(&tables);
                    let mut stats = ScanStats::default();
                    let out = eval_spj_counted(&view, &lowered.query, &mut stats)?;
                    self.engine.note_scan(stats);
                    out
                };
                if config.record_history {
                    for t in &tables {
                        self.engine.recorder.read(txn.tx, t);
                    }
                }
                // Bind host variables from the first row (MySQL-style
                // SELECT-into-variable semantics used by Appendix D).
                if let Some(row) = out.rows.first() {
                    for (idx, var) in &lowered.bindings {
                        txn.env.insert(var.clone(), row[*idx].clone());
                    }
                }
                if config.isolation == IsolationMode::EarlyReadLockRelease {
                    for t in &tables {
                        self.engine.locks.release(TxId(txn.tx), &Resource::table(t));
                    }
                }
                Ok(())
            }
            Statement::Insert {
                table,
                columns,
                values,
            } => {
                match config.granularity {
                    LockGranularity::Table => {
                        self.lock(txn.tx, Resource::table(table), LockMode::X)?
                    }
                    LockGranularity::Row => {
                        self.lock(txn.tx, Resource::table(table), LockMode::IX)?
                    }
                }
                let handle = self.snapshot.handle(table)?;
                let row = {
                    let _latch = self.engine.latch_token(table);
                    build_insert_row(&handle.read(), table, columns, values, &txn.env)?
                };
                // Key locks precede the heap insert: a point reader holding
                // key S must not see this row appear mid-transaction.
                let defs = self.named_index_defs(table)?;
                self.lock_index_keys_for_write(txn.tx, table, &defs, None, Some(&row))?;
                let id = {
                    let _latch = self.engine.latch_token(table);
                    handle
                        .write()
                        .insert(row.clone())
                        .map_err(StorageError::from)?
                };
                if config.granularity == LockGranularity::Row {
                    // Fresh row: uncontended by construction.
                    self.lock(txn.tx, Resource::row(table, id.0), LockMode::X)?;
                }
                txn.redo.push(LogRecord::Insert {
                    tx: txn.tx,
                    table: table.clone(),
                    row: id.0,
                    values: row,
                });
                txn.undo.push(Undo::Insert {
                    table: table.clone(),
                    row: id.0,
                });
                if config.record_history {
                    let row = (config.granularity == LockGranularity::Row).then_some(id.0);
                    self.engine.recorder.write(txn.tx, table, row);
                }
                Ok(())
            }
            Statement::Update {
                table,
                sets,
                where_clause,
            } => {
                let handle = self.snapshot.handle(table)?;
                // Resolve names once per statement: the predicate and every
                // SET scalar become index-bound expressions evaluated per
                // row with no further lookups.
                let (pred, set_exprs, plan) = {
                    let _latch = self.engine.latch_token(table);
                    let view = self.snapshot.read_view(std::slice::from_ref(table));
                    let schema = view.table(table)?.schema();
                    let pred = lower_table_cond(&view, table, where_clause, &txn.env)?;
                    let set_exprs: Vec<(usize, Expr)> =
                        sets.iter()
                            .map(|(c, s)| {
                                let idx = schema.index_of(c).ok_or_else(|| {
                                    StorageError::NoSuchColumn {
                                        table: table.clone(),
                                        column: c.clone(),
                                    }
                                })?;
                                Ok((idx, lower_row_scalar(&view, table, s, &txn.env)?))
                            })
                            .collect::<Result<_, EngineError>>()?;
                    let plan = access_plan(&view, table, &pred)?;
                    (pred, set_exprs, plan)
                };
                let defs = self.named_index_defs(table)?;
                let targets = self.write_targets(txn.tx, table, handle, &pred, &plan)?;
                for (id, old) in targets {
                    let mut new = old.clone();
                    for (col, expr) in &set_exprs {
                        new[*col] = expr
                            .eval(&[old.as_slice()])
                            .map_err(|_| EngineError::Protocol("invalid arithmetic"))?;
                    }
                    self.lock_index_keys_for_write(txn.tx, table, &defs, Some(&old), Some(&new))?;
                    {
                        let _latch = self.engine.latch_token(table);
                        handle
                            .write()
                            .update(id, new.clone())
                            .map_err(StorageError::from)?
                            .ok_or_else(|| StorageError::NoSuchRow {
                                table: table.clone(),
                                row: id,
                            })?;
                    }
                    txn.redo.push(LogRecord::Update {
                        tx: txn.tx,
                        table: table.clone(),
                        row: id.0,
                        before: old.clone(),
                        after: new,
                    });
                    txn.undo.push(Undo::Update {
                        table: table.clone(),
                        row: id.0,
                        before: old,
                    });
                    if config.record_history {
                        let row = (config.granularity == LockGranularity::Row).then_some(id.0);
                        self.engine.recorder.write(txn.tx, table, row);
                    }
                }
                Ok(())
            }
            Statement::Delete {
                table,
                where_clause,
            } => {
                let handle = self.snapshot.handle(table)?;
                let (pred, plan) = {
                    let _latch = self.engine.latch_token(table);
                    let view = self.snapshot.read_view(std::slice::from_ref(table));
                    let pred = lower_table_cond(&view, table, where_clause, &txn.env)?;
                    let plan = access_plan(&view, table, &pred)?;
                    (pred, plan)
                };
                let defs = self.named_index_defs(table)?;
                let targets = self.write_targets(txn.tx, table, handle, &pred, &plan)?;
                for (id, old) in targets {
                    self.lock_index_keys_for_write(txn.tx, table, &defs, Some(&old), None)?;
                    {
                        let _latch = self.engine.latch_token(table);
                        handle
                            .write()
                            .delete(id)
                            .ok_or_else(|| StorageError::NoSuchRow {
                                table: table.clone(),
                                row: id,
                            })?;
                    }
                    txn.redo.push(LogRecord::Delete {
                        tx: txn.tx,
                        table: table.clone(),
                        row: id.0,
                        before: old.clone(),
                    });
                    txn.undo.push(Undo::Delete {
                        table: table.clone(),
                        row: id.0,
                        before: old,
                    });
                    if config.record_history {
                        let row = (config.granularity == LockGranularity::Row).then_some(id.0);
                        self.engine.recorder.write(txn.tx, table, row);
                    }
                }
                Ok(())
            }
            Statement::SetVar { name, expr } => {
                let v = lower_const_scalar(expr, &txn.env)?;
                txn.env.insert(name.clone(), v);
                Ok(())
            }
            Statement::Rollback => Err(EngineError::RolledBack),
            Statement::CreateTable { .. } | Statement::CreateIndex { .. } => Err(
                EngineError::Protocol("DDL inside transactions is not supported"),
            ),
            Statement::Begin { .. } | Statement::Commit => {
                Err(EngineError::Protocol("nested BEGIN/COMMIT"))
            }
            Statement::Entangled(_) => unreachable!("handled by run_until_block"),
        }
    }
}

// ---- helpers ----

/// The 2PL resource guarding membership of one key in one named index.
/// Point readers take S on it; any write that adds or removes a row at
/// the key takes X. The synthetic `table#index` namespace cannot collide
/// with a real table: `#` is not a legal identifier character, so no
/// parsed statement can lock it as a table. The key is collapsed to a
/// 64-bit hash — `DefaultHasher` is deterministic within a process, which
/// is all a lock identity needs (a rare hash collision merely over-locks).
fn index_key_resource(table: &str, index: &str, key: &Value) -> Resource {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    Resource::row(format!("{table}#{index}"), h.finish())
}

/// The "beyond the last key" resource for a btree index. A range probe
/// whose interval runs past the highest posted key locks this instead of
/// a successor key; an insert that would become the new maximum must
/// take X on it, so end-of-index phantoms conflict the same way interior
/// ones do. `u64::MAX` is unreachable by `index_key_resource`'s hasher
/// only probabilistically, but a collision merely over-locks.
fn index_eof_resource(table: &str, index: &str) -> Resource {
    Resource::row(format!("{table}#{index}"), u64::MAX)
}

/// Bound on probe→lock→re-probe rounds in the next-key fixpoint loops.
/// Each round either locks a strictly-nearer successor or converges, so
/// non-convergence within the bound means pathological churn; we fail
/// the statement rather than spin.
const NEXT_KEY_ROUNDS: usize = 8;

/// A named index's identity and key shape, detached from the table latch
/// so writers can compute old/new keys without holding the read guard.
struct IndexDef {
    name: String,
    columns: Vec<usize>,
    kind: IndexKind,
}

impl IndexDef {
    /// The key this index posts for `row`: bare value for single-column
    /// indexes, composite tuple in declaration order otherwise — must
    /// match `Index::key_of` exactly or writer key locks miss.
    fn key_of(&self, row: &[Value]) -> Value {
        if let [c] = self.columns.as_slice() {
            row[*c].clone()
        } else {
            Value::Tuple(self.columns.iter().map(|c| row[*c].clone()).collect())
        }
    }
}

/// Build the row an INSERT produces, resolving the optional column list
/// against the table's schema.
pub(crate) fn build_insert_row(
    t: &Table,
    table: &str,
    columns: &Option<Vec<String>>,
    values: &[youtopia_sql::Scalar],
    env: &VarEnv,
) -> Result<Vec<Value>, EngineError> {
    let schema = t.schema();
    let vals: Vec<Value> = values
        .iter()
        .map(|s| lower_const_scalar(s, env))
        .collect::<Result<_, _>>()?;
    match columns {
        None => Ok(vals),
        Some(cols) => {
            let mut row = vec![Value::Null; schema.arity()];
            for (c, v) in cols.iter().zip(vals) {
                let idx = schema
                    .index_of(c)
                    .ok_or_else(|| StorageError::NoSuchColumn {
                        table: table.to_string(),
                        column: c.clone(),
                    })?;
                row[idx] = v;
            }
            Ok(row)
        }
    }
}

fn collect_matches(t: &Table, pred: &Expr) -> Result<Vec<(RowId, Vec<Value>)>, EngineError> {
    let mut out = Vec::new();
    for (id, row) in t.scan() {
        if pred
            .eval_bool(&[row.as_slice()])
            .map_err(|_| EngineError::Protocol("non-boolean WHERE"))?
        {
            out.push((id, row.clone()));
        }
    }
    Ok(out)
}
