//! Entangled query oracles (Definitions 3.2–3.4): a process that executes
//! alongside a *single* entangled transaction and answers its entangled
//! queries, performing no writes itself.
//!
//! The oracle is the paper's device for making "one entangled transaction"
//! a meaningful unit of work (it cannot run alone otherwise), and
//! Assumption 3.5 (oracle consistency) is phrased in terms of it: a valid
//! oracle execution on a consistent database yields a consistent database.
//! [`GroundingOracle`] produces *valid* answers (each corresponds to a
//! grounding on the current database, Definition 3.3); [`ReplayOracle`]
//! returns canned answers, valid or not — useful for testing how
//! transactions behave under invalid input.

use crate::engine::{Engine, StepOutcome};
use crate::error::EngineError;
use crate::program::{Txn, TxnStatus};
use youtopia_entangle::{from_ast, ground, QueryIr};
use youtopia_sql::{Statement, VarEnv};
use youtopia_storage::{Database, Value};

/// An entangled query oracle (Definition 3.2). It "has no direct effect on
/// the database's state, i.e. it performs no writes" — the API enforces
/// this by handing it only a shared reference.
pub trait QueryOracle {
    /// Answer the query (IR form, host variables already substituted) on
    /// the current database; `None` means the oracle cannot answer and the
    /// transaction fails its entangled query.
    fn answer(&mut self, ir: &QueryIr, db: &Database, env: &VarEnv) -> Option<Vec<Value>>;
}

/// A valid oracle: answers are groundings of the query on the current
/// database (Definition 3.3), chosen deterministically (first grounding).
#[derive(Debug, Default)]
pub struct GroundingOracle;

impl QueryOracle for GroundingOracle {
    fn answer(&mut self, ir: &QueryIr, db: &Database, env: &VarEnv) -> Option<Vec<Value>> {
        let gs = ground(db, ir, env).ok()?;
        gs.groundings.first().map(|g| g.answer_row.clone())
    }
}

/// Replays a fixed list of answers (possibly invalid — Definition 3.3 is
/// deliberately not enforced here, mirroring C.3.1's oracle which returns
/// stored answers "whether or not these answers are valid").
#[derive(Debug, Default)]
pub struct ReplayOracle {
    answers: std::collections::VecDeque<Option<Vec<Value>>>,
}

impl ReplayOracle {
    pub fn new(answers: Vec<Option<Vec<Value>>>) -> ReplayOracle {
        ReplayOracle {
            answers: answers.into(),
        }
    }
}

impl QueryOracle for ReplayOracle {
    fn answer(&mut self, _ir: &QueryIr, _db: &Database, _env: &VarEnv) -> Option<Vec<Value>> {
        self.answers.pop_front().flatten()
    }
}

/// Execute one entangled transaction to completion alongside an oracle
/// (the serial execution mode of Definition 3.4 / Assumption 3.5). The
/// transaction commits individually on success.
pub fn run_with_oracle(
    engine: &Engine,
    txn: &mut Txn,
    oracle: &mut dyn QueryOracle,
) -> Result<(), EngineError> {
    engine.begin(txn);
    loop {
        match engine.run_until_block(txn) {
            StepOutcome::Ready => {
                engine.commit_group(&mut [txn]);
                return Ok(());
            }
            StepOutcome::Aborted => {
                let TxnStatus::Aborted(e) = &txn.status else {
                    return Err(EngineError::Protocol("aborted without reason"));
                };
                return Err(e.clone());
            }
            StepOutcome::Blocked => {
                let TxnStatus::Blocked { statement } = txn.status else {
                    return Err(EngineError::Protocol("blocked without statement"));
                };
                let Statement::Entangled(eq) = &txn.program.statements[statement] else {
                    return Err(EngineError::Protocol("blocked on non-entangled statement"));
                };
                let ir = from_ast(eq, &txn.env)?;
                let answer = engine.with_db(|db| oracle.answer(&ir, db, &txn.env));
                match answer {
                    Some(row) => {
                        // Record the oracle interaction as grounding reads
                        // plus a singleton entanglement (the history stays
                        // C.1-valid; the oracle is not a transaction).
                        if engine.config.record_history {
                            for t in ir.tables_read() {
                                engine.recorder.ground_read(txn.tx, &t);
                            }
                            engine.recorder.entangle(&[txn.tx]);
                        }
                        for (idx, var) in &ir.bindings {
                            if let Some(v) = row.get(*idx) {
                                txn.env.insert(var.clone(), v.clone());
                            }
                        }
                        txn.answers.push(row);
                        txn.pc += 1;
                        txn.status = TxnStatus::Running;
                    }
                    None => {
                        engine.abort(txn, EngineError::TimedOut);
                        return Err(EngineError::TimedOut);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::program::{ClientId, Program};

    fn engine() -> Engine {
        let e = Engine::new(EngineConfig::default());
        e.setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Reserve (uid TEXT, fid INT);\
             INSERT INTO Flights VALUES (122, 'LA');\
             INSERT INTO Flights VALUES (123, 'LA');",
        )
        .unwrap();
        e
    }

    const MICKEY: &str = "BEGIN; \
        SELECT 'Mickey', fno AS @fno INTO ANSWER R \
        WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
        AND ('Minnie', fno) IN ANSWER R CHOOSE 1; \
        INSERT INTO Reserve (uid, fid) VALUES ('Mickey', @fno); COMMIT;";

    #[test]
    fn grounding_oracle_enables_solo_execution() {
        // Assumption 3.5 in action: Mickey's transaction, which cannot run
        // by itself, completes alongside a valid oracle and leaves the
        // database consistent (the booked flight exists).
        let e = engine();
        let mut t = Txn::new(ClientId(1), e.alloc_tx(), Program::parse(MICKEY).unwrap());
        let mut oracle = GroundingOracle;
        run_with_oracle(&e, &mut t, &mut oracle).unwrap();
        assert_eq!(t.status, TxnStatus::Committed);
        e.with_db(|db| {
            let rows = db.canonical_rows("Reserve").unwrap();
            assert_eq!(rows.len(), 1);
            let fid = rows[0][1].as_int().unwrap();
            let flights = db
                .select_eq("Flights", &[("fno", Value::Int(fid))])
                .unwrap();
            assert_eq!(
                flights.len(),
                1,
                "booking references a real flight: consistent"
            );
        });
        // History is valid + isolated.
        let s = e.recorder.schedule();
        s.validate().unwrap();
        assert!(youtopia_isolation::is_entangled_isolated(&s));
    }

    #[test]
    fn replay_oracle_feeds_exact_answers() {
        let e = engine();
        let mut t = Txn::new(ClientId(1), e.alloc_tx(), Program::parse(MICKEY).unwrap());
        let mut oracle = ReplayOracle::new(vec![Some(vec![Value::str("Mickey"), Value::Int(123)])]);
        run_with_oracle(&e, &mut t, &mut oracle).unwrap();
        assert_eq!(t.answers, vec![vec![Value::str("Mickey"), Value::Int(123)]]);
        e.with_db(|db| {
            let rows = db.canonical_rows("Reserve").unwrap();
            assert_eq!(rows[0][1], Value::Int(123));
        });
    }

    #[test]
    fn invalid_replay_answer_breaks_consistency() {
        // An INVALID oracle answer (flight 999 does not exist) yields an
        // inconsistent database — which is exactly why Definition 3.3
        // demands validity for Assumption 3.5 to give guarantees.
        let e = engine();
        let mut t = Txn::new(ClientId(1), e.alloc_tx(), Program::parse(MICKEY).unwrap());
        let mut oracle = ReplayOracle::new(vec![Some(vec![Value::str("Mickey"), Value::Int(999)])]);
        run_with_oracle(&e, &mut t, &mut oracle).unwrap();
        e.with_db(|db| {
            let rows = db.canonical_rows("Reserve").unwrap();
            let fid = rows[0][1].as_int().unwrap();
            let flights = db
                .select_eq("Flights", &[("fno", Value::Int(fid))])
                .unwrap();
            assert!(flights.is_empty(), "booking references a ghost flight");
        });
    }

    #[test]
    fn oracle_refusal_aborts_transaction() {
        let e = engine();
        let mut t = Txn::new(ClientId(1), e.alloc_tx(), Program::parse(MICKEY).unwrap());
        let mut oracle = ReplayOracle::new(vec![None]);
        assert_eq!(
            run_with_oracle(&e, &mut t, &mut oracle),
            Err(EngineError::TimedOut)
        );
        e.with_db(|db| assert_eq!(db.table("Reserve").unwrap().len(), 0));
    }

    #[test]
    fn oracle_handles_multi_query_programs() {
        let e = Engine::new(EngineConfig::default());
        e.setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Hotels (hid INT, location TEXT);\
             CREATE TABLE Reserve (uid TEXT, fid INT);\
             INSERT INTO Flights VALUES (122, 'LA');\
             INSERT INTO Hotels VALUES (7, 'LA');",
        )
        .unwrap();
        let p = Program::parse(
            "BEGIN; \
             SELECT 'M', fno AS @fno INTO ANSWER FR \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') CHOOSE 1; \
             SELECT 'M', hid AS @hid INTO ANSWER HR \
             WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA') CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('M', @fno); \
             INSERT INTO Reserve (uid, fid) VALUES ('M', @hid); COMMIT;",
        )
        .unwrap();
        let mut t = Txn::new(ClientId(1), e.alloc_tx(), p);
        run_with_oracle(&e, &mut t, &mut GroundingOracle).unwrap();
        assert_eq!(t.answers.len(), 2);
        e.with_db(|db| assert_eq!(db.table("Reserve").unwrap().len(), 2));
    }
}
