//! The execution engine: transaction lifecycle (begin / joint
//! entangled-query evaluation / group commit / abort / crash recovery)
//! over the per-table [`ConcurrentCatalog`].
//!
//! This is the middle-tier component of §5.1, with the DBMS it sat on —
//! storage, locking, logging — linked in as the sibling crates rather than
//! MySQL. One [`Engine`] is shared by all transactions; the scheduler
//! (§4's run-based model, see [`crate::scheduler`]) drives transactions
//! through it. Classical statement execution lives in
//! [`crate::executor`] ([`TxnContext`]), which pins per-table handles
//! instead of any global storage latch.

use crate::error::EngineError;
use crate::executor::{build_insert_row, TxnContext};
use crate::groups::GroupManager;
use crate::program::{Txn, TxnStatus, Undo};
use crate::recorder::Recorder;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use youtopia_entangle::{from_ast, ground, solve, QueryIr, QueryOutcome, SolveInput, SolverConfig};
use youtopia_lock::{LockMode, Resource, ShardedLocks, TxId};
use youtopia_sql::{parse_script, Statement, VarEnv};
use youtopia_storage::{
    shard_of_table, CommitTs, ConcurrentCatalog, Database, RowId, SnapshotRegistry, StorageError,
};
use youtopia_wal::{recover_sharded, GroupCommitter, LogRecord, Lsn, ShardedWal};

/// Lock granularity for writes (reads and grounding reads are always
/// table-granular, mirroring §3.3.3's table-level read-lock argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockGranularity {
    Table,
    Row,
}

/// How waits-for cycles that straddle lock shards are resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// The global edge-chasing detector convicts a victim: blocked
    /// waiters probe the union waits-for graph across every shard under a
    /// consistent cut, and a confirmed cycle aborts its youngest
    /// non-immune member (entangled groups with a partner already in the
    /// commit pipeline abort atomically or not at all, so their members
    /// are skipped). The default.
    Detect,
    /// No global detection: cross-shard cycles die by `lock_timeout`
    /// (the pre-detector behaviour, kept as the measured ablation —
    /// `YOUTOPIA_DEADLOCK=timeout` forces it process-wide).
    Timeout,
}

/// Isolation configuration (§3.3.1 levels as engine switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationMode {
    /// Full entangled isolation: Strict 2PL + group commit.
    Full,
    /// Group commit disabled — widowed transactions become possible
    /// (ablation Ab2; anomaly checked by the recorder).
    AllowWidows,
    /// Read locks released at the end of each statement — unrepeatable
    /// (quasi-)reads become possible.
    EarlyReadLockRelease,
}

/// What to do when an entangled query succeeds with an empty answer
/// (Appendix B: the transaction *may* proceed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmptyAnswerPolicy {
    /// Abort the transaction (sensible for booking workloads: no common
    /// flight means the plan failed).
    Abort,
    /// Proceed; host variables the query would have bound stay unbound.
    Proceed,
}

/// Simulated per-operation costs. The paper's Figure 6(a) shape comes from
/// connection-bound concurrency in MySQL: each statement costs
/// connection/IO latency that overlaps across connections. Sleeping (not
/// spinning) reproduces that overlap on any host.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    pub per_statement: Duration,
    pub per_entangled_eval: Duration,
    pub per_commit: Duration,
}

impl CostModel {
    pub const ZERO: CostModel = CostModel {
        per_statement: Duration::ZERO,
        per_entangled_eval: Duration::ZERO,
        per_commit: Duration::ZERO,
    };
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub isolation: IsolationMode,
    pub granularity: LockGranularity,
    pub lock_timeout: Duration,
    pub solver: SolverConfig,
    pub empty_answer: EmptyAnswerPolicy,
    pub cost: CostModel,
    /// Record an abstract schedule of every operation (audited against
    /// Appendix C by tests and the `verify_history` API).
    pub record_history: bool,
    /// Batch concurrent commit syncs behind a leader (§4 group commit at
    /// the WAL layer). Off = every commit *group* pays its own serialized
    /// device sync (singletons sync alone), the pre-pipeline durability
    /// cost (bench ablation).
    pub wal_group_commit: bool,
    /// Route read-only classical transactions to the multi-version
    /// snapshot read path: pin a commit-timestamp snapshot at BEGIN and
    /// evaluate every SELECT against committed row versions, acquiring
    /// **no** S locks (readers never block writers and never wait behind
    /// them). Off = the pre-MVCC behaviour — read-only transactions take
    /// table S locks like everyone else (the `readscale` bench ablation).
    /// Entangled grounding reads keep their S locks either way: §3.3.3's
    /// anomaly-prevention argument depends on them.
    pub snapshot_reads: bool,
    /// Number of engine shards. Tables are hash-partitioned by name
    /// ([`shard_of_table`]); each shard owns its own lock manager, WAL
    /// segment, and group-commit pipeline, so shard-local transactions
    /// commit without touching any shared serialization point. Cross-shard
    /// transactions pay a two-phase prepare across their participant
    /// segments. `1` (the default) is the classic single-pipeline engine;
    /// `YOUTOPIA_SHARDS=N` forces a shard count process-wide so CI can
    /// rerun suites under sharding without code changes.
    pub shards: usize,
    /// Cross-shard deadlock resolution: detect (probe overlay, the
    /// default) or timeout-only (`YOUTOPIA_DEADLOCK=timeout` forces the
    /// ablation process-wide, mirroring the other env switches).
    pub deadlock: DeadlockPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            isolation: IsolationMode::Full,
            // Row granularity for writes by default: the paper's substrate
            // (InnoDB) is row-locking, and entangled partners write to the
            // same tables (Reserve), which table-X locks would serialize
            // structurally. `LockGranularity::Table` is the Ab4 ablation;
            // `YOUTOPIA_LOCK_GRANULARITY=table` forces it process-wide so
            // CI can rerun suites under the ablation without code changes.
            granularity: match std::env::var("YOUTOPIA_LOCK_GRANULARITY").as_deref() {
                Ok(g) if g.eq_ignore_ascii_case("table") => LockGranularity::Table,
                _ => LockGranularity::Row,
            },
            lock_timeout: Duration::from_millis(250),
            solver: SolverConfig::default(),
            empty_answer: EmptyAnswerPolicy::Abort,
            cost: CostModel::ZERO,
            record_history: true,
            wal_group_commit: true,
            snapshot_reads: true,
            shards: match std::env::var("YOUTOPIA_SHARDS")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
            {
                Some(n) if n >= 1 => n,
                _ => 1,
            },
            deadlock: match std::env::var("YOUTOPIA_DEADLOCK").as_deref() {
                Ok(p) if p.eq_ignore_ascii_case("timeout") => DeadlockPolicy::Timeout,
                _ => DeadlockPolicy::Detect,
            },
        }
    }
}

/// Result of advancing a transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// Hit an entangled query; waiting for joint evaluation.
    Blocked,
    /// Finished its body; ready to commit.
    Ready,
    /// Aborted (reason is in the txn status).
    Aborted,
}

/// Report from one joint evaluation of pending entangled queries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalReport {
    pub answered: usize,
    pub empty: usize,
    pub no_partner: usize,
    pub aborted: usize,
}

/// The shared engine.
///
/// Storage is a [`ConcurrentCatalog`] of independently lockable table
/// handles — there is no global database latch on the statement hot path.
/// Transactions on disjoint tables (and readers on shared tables) run in
/// parallel; the Strict-2PL [`LockManager`](youtopia_lock::LockManager)
/// alone carries isolation (see
/// [`TxnContext`] for the latch-vs-lock discipline).
pub struct Engine {
    pub(crate) catalog: ConcurrentCatalog,
    /// Per-shard lock managers behind one routing facade: a resource is
    /// owned by its table's shard, so shard-local transactions contend
    /// only on their own manager.
    pub locks: ShardedLocks,
    /// Per-shard WAL segments: a table's records live on its shard's
    /// segment only. One shard ⇒ the classic single log.
    pub wal: ShardedWal,
    /// One leader/follower sync pipeline per shard: concurrent commit
    /// points on the same shard share one device sync (`cost.per_commit`
    /// models the fsync latency); different shards sync in parallel.
    pub committers: Vec<GroupCommitter>,
    pub groups: std::sync::Arc<GroupManager>,
    /// Transactions currently inside the commit pipeline
    /// ([`Self::publish_and_commit`]): the deadlock victim policy treats
    /// any entangled group intersecting this set as immune — a group with
    /// a prepared partner aborts atomically or not at all.
    preparing: std::sync::Arc<parking_lot::Mutex<std::collections::HashSet<u64>>>,
    pub recorder: Recorder,
    /// The multi-version clock: commit batches reserve timestamps, install
    /// row versions, and advance the stable frontier; read-only snapshot
    /// transactions pin it; the version GC prunes behind its horizon.
    pub versions: SnapshotRegistry,
    /// Memoized snapshot materializations, keyed by table: a cached copy
    /// built at `(ts, epoch)` serves any snapshot with a timestamp ≥ `ts`
    /// as long as the table's committed history hasn't changed
    /// ([`youtopia_storage::Table::version_epoch`]) — so read-mostly
    /// tables are copied once per write, not once per reader.
    snap_cache: parking_lot::Mutex<HashMap<String, CachedSnapshot>>,
    pub config: EngineConfig,
    next_tx: AtomicU64,
    next_ckpt: AtomicU64,
    /// Access-path accounting across every statement executed on this
    /// engine: base rows materialized as candidates (O(table) per scanned
    /// stage, O(matches) per probed stage) and index probes served. The
    /// scheduler samples these as per-run deltas, like WAL syncs.
    rows_scanned: AtomicU64,
    index_lookups: AtomicU64,
    /// Snapshot point/range reads that probed the *live* history-union
    /// index and filtered candidates by version visibility instead of
    /// materializing a per-snapshot index copy (the rebuild each such
    /// read used to pay).
    index_rebuilds_avoided: AtomicU64,
    /// Cross-shard commit-unit allocator (xids stamped on `CrossPrepare`/
    /// `CrossCommit` records) and the two-phase traffic counters.
    next_xid: AtomicU64,
    cross_shard_prepares: AtomicU64,
    cross_shard_commits: AtomicU64,
    /// The lock-protocol auditor, installed as the lock managers' event
    /// sink in debug builds (every `cargo test`) and under the `audit`
    /// feature; `None` in plain release builds. Violations of the
    /// multigranularity / 2PL-phasing / latch / next-key rules panic with
    /// the offending event trace.
    auditor: Option<std::sync::Arc<youtopia_audit::ProtocolAuditor>>,
}

#[derive(Clone)]
struct CachedSnapshot {
    built_ts: CommitTs,
    epoch: u64,
    /// The build saw no version above `built_ts` in the chains: at an
    /// unchanged epoch the copy is also valid for every later timestamp.
    /// A non-clean build (a concurrent commit had installed but not yet
    /// completed) serves only its exact timestamp.
    clean: bool,
    /// Copies never carry named indexes: probing snapshot readers go
    /// through the live history-union index and filter candidates by
    /// version visibility instead (see `Executor::snapshot_probe`), so a
    /// materialized copy only ever serves scans.
    table: std::sync::Arc<youtopia_storage::Table>,
}

/// Scoped membership in the engine's preparing set: inserts the batch's
/// transaction ids on construction, removes them on drop, so victim
/// immunity tracks the commit pipeline exactly.
struct PreparingMark<'a> {
    set: &'a parking_lot::Mutex<std::collections::HashSet<u64>>,
    ids: Vec<u64>,
}

impl<'a> PreparingMark<'a> {
    fn new(
        set: &'a parking_lot::Mutex<std::collections::HashSet<u64>>,
        ids: impl Iterator<Item = u64>,
    ) -> PreparingMark<'a> {
        let ids: Vec<u64> = ids.collect();
        set.lock().extend(ids.iter().copied());
        PreparingMark { set, ids }
    }
}

impl Drop for PreparingMark<'_> {
    fn drop(&mut self) {
        let mut s = self.set.lock();
        for id in &self.ids {
            s.remove(id);
        }
    }
}

/// What one [`Engine::checkpoint`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Checkpoint image id (monotone per engine).
    pub ckpt: u64,
    /// LSN of the image's begin marker — the new log head after
    /// truncation.
    pub lsn: Lsn,
    /// Tables and rows captured in the image.
    pub tables: usize,
    pub rows: usize,
    /// Log bytes reclaimed by the prefix truncation (0 when truncation
    /// was disabled for this call).
    pub truncated_bytes: u64,
    /// Row versions reclaimed by the checkpoint-boundary vacuum.
    pub versions_pruned: u64,
}

impl Engine {
    pub fn new(config: EngineConfig) -> Engine {
        let shards = config.shards.max(1);
        let committers = (0..shards)
            .map(|_| GroupCommitter::new(config.cost.per_commit))
            .collect();
        let mut locks = ShardedLocks::with_router(
            shards,
            Box::new(move |res| shard_of_table(res.table_name(), shards)),
        );
        let auditor = if cfg!(any(debug_assertions, feature = "audit")) {
            let a = std::sync::Arc::new(youtopia_audit::ProtocolAuditor::strict());
            a.set_relaxed_phasing(config.isolation == IsolationMode::EarlyReadLockRelease);
            locks.install_sink(a.clone());
            Some(a)
        } else {
            None
        };
        let groups = std::sync::Arc::new(GroupManager::new());
        let preparing: std::sync::Arc<parking_lot::Mutex<std::collections::HashSet<u64>>> =
            std::sync::Arc::default();
        if config.deadlock == DeadlockPolicy::Detect {
            locks.enable_detection(youtopia_lock::GlobalDetector::with_policy(Box::new(
                crate::groups::GroupVictimPolicy::new(groups.clone(), preparing.clone()),
            )));
        }
        Engine {
            catalog: ConcurrentCatalog::new(),
            locks,
            wal: ShardedWal::new(shards),
            committers,
            groups,
            preparing,
            recorder: Recorder::new(),
            versions: SnapshotRegistry::new(),
            snap_cache: parking_lot::Mutex::new(HashMap::new()),
            config,
            next_tx: AtomicU64::new(1),
            next_ckpt: AtomicU64::new(1),
            rows_scanned: AtomicU64::new(0),
            index_lookups: AtomicU64::new(0),
            index_rebuilds_avoided: AtomicU64::new(0),
            next_xid: AtomicU64::new(1),
            cross_shard_prepares: AtomicU64::new(0),
            cross_shard_commits: AtomicU64::new(0),
            auditor,
        }
    }

    /// The installed lock-protocol auditor, if this build runs audited.
    pub fn auditor(&self) -> Option<&std::sync::Arc<youtopia_audit::ProtocolAuditor>> {
        self.auditor.as_ref()
    }

    /// Audit events processed so far (0 when no auditor is installed).
    pub fn audit_events(&self) -> u64 {
        self.auditor.as_ref().map_or(0, |a| a.events_seen())
    }

    /// Waits-for cycles broken by victim selection, over all lock shards.
    pub fn deadlocks(&self) -> u64 {
        self.locks.total_deadlocks()
    }

    /// Lock waits that expired, over all lock shards. With
    /// [`DeadlockPolicy::Detect`] (the default) cross-shard cycles are
    /// convicted by the probe overlay instead of landing here; the
    /// timeout backstops the `Timeout` ablation and all-immune cycles.
    pub fn timeouts(&self) -> u64 {
        self.locks.total_timeouts()
    }

    /// Victims convicted by the cross-shard deadlock detector, over all
    /// lock shards (0 under [`DeadlockPolicy::Timeout`]; local
    /// enqueue-time victims count under [`Self::deadlocks`] either way).
    pub fn deadlock_victims(&self) -> u64 {
        self.locks.total_deadlock_victims()
    }

    /// Edge-chasing probes launched by blocked waiters (0 under
    /// [`DeadlockPolicy::Timeout`]).
    pub fn detection_probes(&self) -> u64 {
        self.locks.total_detection_probes()
    }

    /// Completed lock-wait durations (µs) across every lock shard — one
    /// sample per request that actually blocked. The `hotcycle` bench
    /// derives its block-time percentiles from this.
    pub fn lock_wait_micros(&self) -> Vec<u64> {
        self.locks.all_wait_micros()
    }

    /// Serialized lock-order graph + cycle report (`None` without an
    /// auditor). CI uploads this next to the BENCH jsons.
    pub fn lock_order_graph_json(&self) -> Option<String> {
        self.auditor.as_ref().map(|a| a.graph_json())
    }

    /// Register a storage-latch acquisition with the auditor (no-op
    /// without one). Callers hold the token exactly as long as the latch
    /// guard so the latch-discipline checks see the true held set.
    pub(crate) fn latch_token(&self, name: &str) -> Option<youtopia_audit::LatchToken> {
        self.auditor.as_ref().map(|a| a.latch(name))
    }

    /// Latch tokens for a multi-table read view, registered in the same
    /// sorted order `read_view` acquires the underlying latches (so the
    /// auditor's ordering check mirrors the real acquisition order).
    pub(crate) fn latch_tokens(&self, names: &[String]) -> Vec<youtopia_audit::LatchToken> {
        let Some(a) = self.auditor.as_ref() else {
            return Vec::new();
        };
        let mut sorted: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.into_iter().map(|n| a.latch(n)).collect()
    }

    /// Tell the auditor a converged range probe believes `successor` is
    /// covered; the auditor verifies the transaction really holds an
    /// S-covering lock on it (the next-key invariant).
    pub(crate) fn audit_range_covered(&self, tx: u64, successor: &Resource) {
        if let Some(a) = self.auditor.as_ref() {
            a.range_probe_covered(TxId(tx), successor);
        }
    }

    /// The number of engine shards (lock managers / WAL segments / commit
    /// pipelines).
    pub fn shards(&self) -> usize {
        self.wal.shards()
    }

    /// The shard owning `table` under this engine's partitioning.
    pub fn shard_of(&self, table: &str) -> usize {
        shard_of_table(table, self.wal.shards())
    }

    /// Completed commit batches summed over every shard's pipeline.
    pub fn commit_batches(&self) -> u64 {
        self.committers.iter().map(|c| c.batches()).sum()
    }

    /// Cross-shard prepare records written (one per participant shard of
    /// every cross-shard commit unit).
    pub fn cross_shard_prepares(&self) -> u64 {
        self.cross_shard_prepares.load(Ordering::Relaxed)
    }

    /// Cross-shard commit units driven through the two-phase protocol.
    pub fn cross_shard_commits(&self) -> u64 {
        self.cross_shard_commits.load(Ordering::Relaxed)
    }

    /// Snapshot materializations that skipped a named-index rebuild
    /// because the reader never probes (lazy index builds).
    pub fn index_rebuilds_avoided(&self) -> u64 {
        self.index_rebuilds_avoided.load(Ordering::Relaxed)
    }

    /// Total base rows materialized as candidates by statement evaluation.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Total index probes (named or anonymous) served to statements.
    pub fn index_lookups(&self) -> u64 {
        self.index_lookups.load(Ordering::Relaxed)
    }

    /// Fold one evaluation's access-path counts into the engine totals.
    pub(crate) fn note_scan(&self, stats: youtopia_storage::ScanStats) {
        if stats.rows_scanned > 0 {
            self.rows_scanned
                .fetch_add(stats.rows_scanned, Ordering::Relaxed);
        }
        if stats.index_lookups > 0 {
            self.index_lookups
                .fetch_add(stats.index_lookups, Ordering::Relaxed);
        }
        if stats.index_rebuilds_avoided > 0 {
            self.index_rebuilds_avoided
                .fetch_add(stats.index_rebuilds_avoided, Ordering::Relaxed);
        }
    }

    /// Fresh engine transaction id.
    pub fn alloc_tx(&self) -> u64 {
        self.next_tx.fetch_add(1, Ordering::Relaxed)
    }

    /// Run a setup script (CREATE TABLE / CREATE INDEX / INSERT) outside
    /// transaction processing; logged as bootstrap transaction 0 and synced.
    pub fn setup(&self, script: &str) -> Result<(), EngineError> {
        let statements = parse_script(script)?;
        let mut redo: Vec<LogRecord> = Vec::with_capacity(statements.len() + 1);
        for st in statements {
            match st {
                Statement::CreateIndex {
                    name,
                    table,
                    columns,
                    kind,
                } => {
                    let cols: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                    let created = self
                        .catalog
                        .handle(&table)?
                        .write()
                        .create_named_index(&name, &cols, kind)
                        .map_err(StorageError::from)?;
                    if created {
                        redo.push(LogRecord::CreateIndex {
                            table,
                            name,
                            columns,
                            kind,
                        });
                    }
                }
                Statement::CreateTable { name, columns } => {
                    let schema = youtopia_storage::Schema::new(
                        columns
                            .into_iter()
                            .map(|(n, t)| youtopia_storage::Column::new(n, t))
                            .collect(),
                    )
                    .map_err(StorageError::from)?;
                    self.catalog.create_table(&name, schema.clone())?;
                    redo.push(LogRecord::CreateTable { name, schema });
                }
                Statement::Insert {
                    table,
                    columns,
                    values,
                } => {
                    let handle = self.catalog.handle(&table)?;
                    let row = build_insert_row(
                        &handle.read(),
                        &table,
                        &columns,
                        &values,
                        &VarEnv::new(),
                    )?;
                    let id = handle
                        .write()
                        .insert(row.clone())
                        .map_err(StorageError::from)?;
                    redo.push(LogRecord::Insert {
                        tx: 0,
                        table,
                        row: id.0,
                        values: row,
                    });
                }
                _ => {
                    return Err(EngineError::Protocol(
                        "setup accepts only CREATE TABLE / CREATE INDEX / INSERT",
                    ))
                }
            }
        }
        // Bootstrap commit: the initial data is the one committed version
        // of every row at the clock's first timestamp, so snapshots pinned
        // before any traffic see the full setup state. Each record lands
        // on its table's shard segment; every shard gets the bootstrap
        // commit point so all segments agree on the clock's origin.
        let ts = self.versions.reserve();
        let nshards = self.wal.shards();
        let mut routed: Vec<Vec<LogRecord>> = (0..nshards).map(|_| Vec::new()).collect();
        for r in redo {
            let s = record_table(&r).map_or(0, |t| shard_of_table(t, nshards));
            routed[s].push(r);
        }
        for (s, mut recs) in routed.into_iter().enumerate() {
            recs.push(LogRecord::Commit { tx: 0, ts });
            self.wal.shard(s).publish(&recs);
            self.wal.shard(s).sync();
        }
        let snapshot = self.catalog.snapshot();
        for name in snapshot.table_names() {
            if let Ok(h) = snapshot.handle(&name) {
                h.write().seal_versions(ts);
            }
        }
        self.versions.complete(ts);
        Ok(())
    }

    /// Create an anonymous multi-column hash index (performance only; not
    /// logged, not consulted by snapshot reads — see
    /// [`Engine::create_named_index`] for the durable kind).
    pub fn create_index(&self, table: &str, columns: &[&str]) -> Result<(), EngineError> {
        self.catalog
            .handle(table)?
            .write()
            .create_index(columns)
            .map_err(StorageError::from)?;
        Ok(())
    }

    /// Create a named secondary index (single- or multi-column; composite
    /// indexes post `Value::Tuple` keys in declaration order), durably:
    /// the definition is logged ([`LogRecord::CreateIndex`]) and synced,
    /// so a post-crash recovery re-creates it and rebuilds its contents
    /// from the recovered heap. Idempotent for an identical existing
    /// definition (no duplicate log record); a name clash with a
    /// different definition is an error.
    pub fn create_named_index(
        &self,
        table: &str,
        name: &str,
        columns: &[&str],
        kind: youtopia_storage::IndexKind,
    ) -> Result<(), EngineError> {
        let created = self
            .catalog
            .handle(table)?
            .write()
            .create_named_index(name, columns, kind)
            .map_err(StorageError::from)?;
        if created {
            let s = self.shard_of(table);
            self.wal.shard(s).publish(&[LogRecord::CreateIndex {
                table: table.to_string(),
                name: name.to_string(),
                columns: columns.iter().map(|c| c.to_string()).collect(),
                kind,
            }]);
            self.wal.shard(s).sync();
        }
        Ok(())
    }

    /// Read-only access to a materialized snapshot of the database
    /// (tests, examples, benches — not the statement hot path, which works
    /// on per-table handles and never copies).
    pub fn with_db<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.catalog.materialize())
    }

    /// Open a fresh attempt. Read-only classical transactions (with
    /// [`EngineConfig::snapshot_reads`] on) pin a commit-timestamp
    /// snapshot instead of opening a redo buffer: they will evaluate
    /// against committed versions, acquire no locks, and publish nothing
    /// durable. Everyone else opens its private redo buffer with the
    /// BEGIN record, which reaches the shared WAL only when the commit
    /// batch publishes it.
    pub fn begin(&self, txn: &mut Txn) {
        if self.config.snapshot_reads && txn.program.is_read_only() {
            txn.snapshot = Some(self.versions.pin());
            if self.config.record_history {
                self.recorder.snapshot_pin(txn.tx);
            }
            return;
        }
        txn.redo.push(LogRecord::Begin { tx: txn.tx });
    }

    /// Advance `txn` until it blocks on an entangled query, finishes its
    /// body, or aborts.
    pub fn run_until_block(&self, txn: &mut Txn) -> StepOutcome {
        txn.status = TxnStatus::Running;
        let ctx = TxnContext::new(self);
        while txn.pc < txn.program.statements.len() {
            if !self.config.cost.per_statement.is_zero() {
                std::thread::sleep(self.config.cost.per_statement);
            }
            let stmt = txn.program.statements[txn.pc].clone();
            match stmt {
                Statement::Entangled(_) => {
                    txn.status = TxnStatus::Blocked { statement: txn.pc };
                    return StepOutcome::Blocked;
                }
                other => {
                    if let Err(e) = ctx.execute(txn, &other) {
                        self.abort(txn, e);
                        return StepOutcome::Aborted;
                    }
                    txn.pc += 1;
                }
            }
        }
        txn.status = TxnStatus::ReadyToCommit;
        StepOutcome::Ready
    }

    fn lock(&self, tx: u64, res: Resource, mode: LockMode) -> Result<(), EngineError> {
        self.locks
            .lock(TxId(tx), res, mode, Some(self.config.lock_timeout))
            .map_err(EngineError::from)
    }

    /// Jointly evaluate the entangled queries of all blocked transactions
    /// (the synchronization point of a run, §4).
    pub fn evaluate_queries(&self, blocked: &mut [&mut Txn]) -> EvalReport {
        if !self.config.cost.per_entangled_eval.is_zero() {
            std::thread::sleep(self.config.cost.per_entangled_eval);
        }
        let mut report = EvalReport::default();

        // 1. Build IRs (host vars substituted from each txn's env).
        let mut irs: Vec<Option<QueryIr>> = Vec::with_capacity(blocked.len());
        for txn in blocked.iter_mut() {
            let TxnStatus::Blocked { statement } = txn.status else {
                irs.push(None);
                continue;
            };
            let Statement::Entangled(eq) = &txn.program.statements[statement] else {
                irs.push(None);
                continue;
            };
            match from_ast(eq, &txn.env) {
                Ok(ir) => irs.push(Some(ir)),
                Err(e) => {
                    self.abort(txn, EngineError::Ir(e));
                    report.aborted += 1;
                    irs.push(None);
                }
            }
        }

        // 2. Grounding-read locks (shared, held to commit under full
        //    isolation — §3.3.3's protection against Figure 3(b)).
        for (i, ir) in irs.iter_mut().enumerate() {
            let Some(q) = ir else { continue };
            let mut failed = None;
            for t in q.tables_read() {
                if let Err(e) = self.lock(blocked[i].tx, Resource::table(&t), LockMode::S) {
                    failed = Some(e);
                    break;
                }
            }
            if let Some(e) = failed {
                self.abort(blocked[i], e);
                report.aborted += 1;
                *ir = None;
            }
        }

        // 3. Ground each query against its pinned table footprint. The
        //    grounding-read locks just acquired (2PL, §3.3.3) — not a
        //    global latch — keep each footprint stable, so queries over
        //    disjoint tables ground while writers touch unrelated tables.
        let snapshot = self.catalog.snapshot();
        let mut grounded = Vec::with_capacity(blocked.len());
        for (i, ir) in irs.iter_mut().enumerate() {
            let Some(q) = ir.as_ref() else {
                grounded.push(None);
                continue;
            };
            let result = {
                let view = snapshot.read_view(&q.tables_read());
                ground(&view, q, &blocked[i].env)
            };
            match result {
                Ok(gs) => grounded.push(Some(gs)),
                Err(e) => {
                    // Rare (schema races); surface the real grounding error.
                    grounded.push(None);
                    *ir = None;
                    self.abort(blocked[i], EngineError::Ground(e));
                    report.aborted += 1;
                }
            }
        }

        // Relaxed isolation: grounding locks do not outlive the grounding
        // itself — which is exactly what makes quasi-reads unrepeatable
        // (the Figure 3(b) anomaly becomes possible).
        if self.config.isolation == IsolationMode::EarlyReadLockRelease {
            for (i, ir) in irs.iter().enumerate() {
                if let Some(q) = ir {
                    for t in q.tables_read() {
                        self.locks
                            .release(TxId(blocked[i].tx), &Resource::table(&t));
                    }
                }
            }
        }

        // 4. Solve jointly.
        let live: Vec<usize> = (0..blocked.len())
            .filter(|&i| irs[i].is_some() && grounded[i].is_some())
            .collect();
        let inputs: Vec<SolveInput> = live
            .iter()
            .map(|&i| SolveInput {
                ir: irs[i].as_ref().expect("live"),
                grounding: grounded[i].as_ref().expect("live"),
            })
            .collect();
        let solution = solve(&inputs, &self.config.solver);

        // 5. Record grounding reads + entanglement ops; apply answers.
        // Grounding reads are recorded only for queries that took part in
        // an evaluation outcome (answered or empty) — a no-partner query's
        // grounding is repeated next run.
        let mut handled_groups: Vec<Vec<u64>> = solution
            .groups
            .iter()
            .map(|g| g.iter().map(|&pos| blocked[live[pos]].tx).collect())
            .collect();
        for (pos, &i) in live.iter().enumerate() {
            let txn = &mut *blocked[i];
            match &solution.outcomes[pos] {
                QueryOutcome::Answered { grounding } => {
                    let gs = grounded[i].as_ref().expect("live");
                    if self.config.record_history {
                        for t in &gs.tables_read {
                            self.recorder.ground_read(txn.tx, t);
                        }
                    }
                    let g = &gs.groundings[*grounding];
                    for (idx, var) in &irs[i].as_ref().expect("live").bindings {
                        txn.env.insert(var.clone(), g.answer_row[*idx].clone());
                    }
                    txn.answers.push(g.answer_row.clone());
                    txn.pc += 1;
                    txn.status = TxnStatus::Running;
                    report.answered += 1;
                }
                QueryOutcome::EmptyAnswer => {
                    let gs = grounded[i].as_ref().expect("live");
                    if self.config.record_history {
                        for t in &gs.tables_read {
                            self.recorder.ground_read(txn.tx, t);
                        }
                    }
                    // Model "combined query evaluated, empty result" as a
                    // singleton entanglement op (keeps histories C.1-valid).
                    handled_groups.push(vec![txn.tx]);
                    match self.config.empty_answer {
                        EmptyAnswerPolicy::Proceed => {
                            txn.answers.push(Vec::new());
                            txn.pc += 1;
                            txn.status = TxnStatus::Running;
                            report.empty += 1;
                        }
                        EmptyAnswerPolicy::Abort => {
                            // Abort AFTER the entangle op is recorded so
                            // the history stays valid; the group is a
                            // singleton so no widow arises.
                            txn.status = TxnStatus::Blocked {
                                statement: match txn.status {
                                    TxnStatus::Blocked { statement } => statement,
                                    _ => txn.pc,
                                },
                            };
                            report.empty += 1;
                        }
                    }
                }
                QueryOutcome::NoPartner => {
                    report.no_partner += 1;
                }
            }
        }

        // Record entanglement ops & group links. Entanglement state is
        // made persistent (§4) at commit time: the commit batch publishes
        // one `EntangleGroup` record with the group's full transitive
        // membership *before* any member's commit record, so no crash
        // point can leave a durable commit without its group context.
        for members in &handled_groups {
            if self.config.record_history {
                self.recorder.entangle(members);
            }
            if members.len() > 1 && self.config.isolation != IsolationMode::AllowWidows {
                self.groups.link(members);
            }
        }

        // Empty-answer aborts (policy Abort), after their entangle op.
        if self.config.empty_answer == EmptyAnswerPolicy::Abort {
            for (pos, &i) in live.iter().enumerate() {
                if solution.outcomes[pos] == QueryOutcome::EmptyAnswer {
                    self.abort(blocked[i], EngineError::EmptyAnswer);
                    report.aborted += 1;
                }
            }
        }

        report
    }

    /// Commit a set of transactions atomically (a whole entanglement group
    /// under full isolation; a singleton otherwise). See [`Engine::commit_batch`].
    pub fn commit_group(&self, txns: &mut [&mut Txn]) {
        self.commit_batch(txns);
    }

    /// Two-phase batched commit for any number of ready transactions —
    /// whole entanglement groups, several groups drained from one
    /// scheduler run, or a single classical transaction.
    ///
    /// **Prepare**: every member's private redo buffer (`Begin` + write
    /// records), each group's `EntangleGroup` membership, and the commit
    /// records are published to the WAL as *one* contiguous reserved
    /// append ([`Wal::publish`](youtopia_wal::Wal::publish)) — encoding
    /// happens outside the device
    /// lock, and `EntangleGroup` records are ordered before every member
    /// `Commit` so a crash *inside* the batch can never produce a durable
    /// widow (recovery's group fixpoint sinks partially-committed groups).
    ///
    /// **Sync**: one batched device sync via the [`GroupCommitter`] covers
    /// the whole range; concurrent `commit_batch` calls share a leader's
    /// sync, so syncs-per-commit drops below one under concurrency. Locks
    /// are released only after the publish, which keeps WAL order aligned
    /// with 2PL serialization order for conflicting writes.
    pub fn commit_batch(&self, txns: &mut [&mut Txn]) {
        if txns.is_empty() {
            return;
        }
        if !self.config.wal_group_commit {
            // The ablation baseline: one publish and one serialized
            // device sync per entanglement group — the pre-pipeline commit
            // *shape* (PR 2 synced once per `commit_group` call) on a
            // serial device. Note this is stricter than PR 2's measured
            // cost, which slept `per_commit` concurrently per committer
            // and so under-modelled fsync serialization. The settle path
            // hands groups over as contiguous slices, so chunking at
            // group boundaries suffices.
            let mut rest: &mut [&mut Txn] = txns;
            while !rest.is_empty() {
                let gid = self.groups.group_id(rest[0].tx);
                let mut end = 1;
                while end < rest.len() && gid.is_some() && self.groups.group_id(rest[end].tx) == gid
                {
                    end += 1;
                }
                let (chunk, tail) = rest.split_at_mut(end);
                self.publish_and_commit(chunk, false);
                rest = tail;
            }
            return;
        }
        self.publish_and_commit(txns, true);
    }

    /// The two commit phases for one publish unit; `batched` selects the
    /// leader/follower group-commit sync vs an exclusive serialized sync.
    ///
    /// Transactions with nothing durable — read-only attempts whose redo
    /// buffer holds no write record and who belong to no entanglement
    /// group — skip the WAL entirely: a read-only commit has no effect a
    /// recovery could replay, so publishing `Begin`/`Commit` for it would
    /// only grow the log and waste a sync slot. (This elision applies on
    /// both the snapshot and the S-lock read path, so the `readscale`
    /// ablation compares locking disciplines, not logging volume.)
    ///
    /// Durable transactions additionally drive the multi-version clock:
    /// the batch reserves one commit timestamp (carried by its `Commit`
    /// records), and after the sync — but **before any lock is released**
    /// — installs every written row's new version at that timestamp, then
    /// marks the timestamp complete so the stable frontier can advance.
    /// Installing before lock release keeps version order aligned with
    /// 2PL serialization order for conflicting rows; completing after all
    /// installs keeps half-installed batches invisible to snapshots.
    fn publish_and_commit(&self, txns: &mut [&mut Txn], batched: bool) {
        // From here until every lock is released, the batch is inside the
        // commit pipeline: mark its members so the deadlock victim policy
        // treats their entanglement groups as immune (a group with a
        // prepared partner must abort atomically as a unit or not at
        // all). The guard unmarks on every exit path.
        let _preparing = PreparingMark::new(&self.preparing, txns.iter().map(|t| t.tx));
        let is_write = |r: &LogRecord| {
            matches!(
                r,
                LogRecord::Insert { .. } | LogRecord::Update { .. } | LogRecord::Delete { .. }
            )
        };
        let durable: Vec<bool> = txns
            .iter()
            .map(|t| self.groups.group_id(t.tx).is_some() || t.redo.iter().any(is_write))
            .collect();

        if durable.iter().any(|&d| d) {
            let nshards = self.wal.shards();
            let ts = self.versions.reserve();

            // Partition the batch into commit units — an entanglement
            // group is one unit (the settle path hands groups over as
            // contiguous slices), everything else a singleton — and route
            // each unit by the shards of the tables it wrote. A unit whose
            // footprint stays on one shard keeps the classic record layout
            // on that shard's segment; a unit straddling shards goes
            // through the two-phase cross-shard protocol.
            let mut buckets: Vec<Vec<LogRecord>> = (0..nshards).map(|_| Vec::new()).collect();
            // Commit points each shard's covering sync will name.
            let mut covering: Vec<Vec<u64>> = (0..nshards).map(|_| Vec::new()).collect();
            // Cross-shard units awaiting their phase-2 decision markers.
            let mut cross_units: Vec<(u64, Vec<usize>, Option<u64>)> = Vec::new();

            let mut i = 0;
            while i < txns.len() {
                let gid = self.groups.group_id(txns[i].tx);
                let mut end = i + 1;
                while end < txns.len() && gid.is_some() && self.groups.group_id(txns[end].tx) == gid
                {
                    end += 1;
                }
                if !durable[i..end].iter().any(|&d| d) {
                    for t in txns[i..end].iter_mut() {
                        t.redo.clear();
                    }
                    i = end;
                    continue;
                }
                let mut shard_set: BTreeSet<usize> = BTreeSet::new();
                for t in txns[i..end].iter() {
                    for r in &t.redo {
                        if let Some(tbl) = record_table(r) {
                            shard_set.insert(shard_of_table(tbl, nshards));
                        }
                    }
                }
                if shard_set.is_empty() {
                    // Durable but write-free (a grouped read-only member
                    // set): anchor the unit on shard 0.
                    shard_set.insert(0);
                }
                let members: Option<Vec<u64>> = gid.map(|_| {
                    let mut m: Vec<u64> = self.groups.members(txns[i].tx).into_iter().collect();
                    m.sort_unstable();
                    m
                });
                let unit_txs: Vec<u64> = txns[i..end]
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| durable[i + *k])
                    .map(|(_, t)| t.tx)
                    .collect();

                if shard_set.len() == 1 {
                    // Shard-local unit: redo, group membership, commit
                    // points and the group-commit marker — exactly the
                    // single-pipeline layout, confined to the owning
                    // shard's segment and covered by its sync alone.
                    let s = *shard_set.iter().next().expect("non-empty");
                    for (k, t) in txns[i..end].iter_mut().enumerate() {
                        if durable[i + k] {
                            buckets[s].append(&mut t.redo);
                        } else {
                            t.redo.clear();
                        }
                    }
                    if let (Some(g), Some(m)) = (gid, members.as_ref()) {
                        buckets[s].push(LogRecord::EntangleGroup {
                            group: g,
                            txs: m.clone(),
                        });
                    }
                    for &tx in &unit_txs {
                        buckets[s].push(LogRecord::Commit { tx, ts });
                        covering[s].push(tx);
                    }
                    if let Some(g) = gid {
                        buckets[s].push(LogRecord::GroupCommit { group: g });
                    }
                } else {
                    // Cross-shard unit, phase 1 (prepare): every
                    // participant segment gets the unit's redo for its own
                    // tables, the full group membership, a `CrossPrepare`
                    // naming all members and all participants, and every
                    // member's commit point — then gets synced. The unit's
                    // commit point is the *last* participant's prepare
                    // sync: recovery commits it iff every participant
                    // holds a durable prepare (or any holds the phase-2
                    // shortcut), so a torn tail on one segment aborts the
                    // unit everywhere and no member can surface alone.
                    let xid = self.next_xid.fetch_add(1, Ordering::Relaxed);
                    let shards: Vec<usize> = shard_set.iter().copied().collect();
                    let shard_ids: Vec<u64> = shards.iter().map(|&s| s as u64).collect();
                    let home = shards[0];
                    for (k, t) in txns[i..end].iter_mut().enumerate() {
                        if !durable[i + k] {
                            t.redo.clear();
                            continue;
                        }
                        for r in t.redo.drain(..) {
                            let s =
                                record_table(&r).map_or(home, |tbl| shard_of_table(tbl, nshards));
                            buckets[s].push(r);
                        }
                    }
                    for &s in &shards {
                        if let (Some(g), Some(m)) = (gid, members.as_ref()) {
                            buckets[s].push(LogRecord::EntangleGroup {
                                group: g,
                                txs: m.clone(),
                            });
                        }
                        buckets[s].push(LogRecord::CrossPrepare {
                            xid,
                            txs: unit_txs.clone(),
                            shards: shard_ids.clone(),
                        });
                        for &tx in &unit_txs {
                            buckets[s].push(LogRecord::Commit { tx, ts });
                        }
                    }
                    self.cross_shard_prepares
                        .fetch_add(shards.len() as u64, Ordering::Relaxed);
                    cross_units.push((xid, shards, gid));
                }
                i = end;
            }

            // ---- Phase 1b: publish per shard ----
            let mut ends: Vec<Option<u64>> = vec![None; nshards];
            for s in 0..nshards {
                if !buckets[s].is_empty() {
                    ends[s] = Some(self.wal.shard(s).publish(&buckets[s]).end);
                }
            }

            // ---- Phase 2: durability — sync every participating shard.
            // Shard-local commit points ride their shard's covering sync
            // (shared with concurrent committers on the same shard);
            // cross-shard prepares are covered by the same syncs, one per
            // participant — the measured cross-shard commit tax.
            for s in 0..nshards {
                let Some(upto) = ends[s] else { continue };
                if batched {
                    self.committers[s].sync_covering(self.wal.shard(s), upto, &covering[s]);
                } else {
                    self.committers[s].sync_exclusive(self.wal.shard(s));
                }
            }

            // ---- Phase 2b: cross-shard decision shortcuts ----
            // Every participant's prepare is durable, so each unit is
            // committed by the resolution rule alone; the `CrossCommit`
            // marker is appended *un-synced* purely so a later recovery
            // can decide the unit from one segment without consulting the
            // others. Losing it to a crash is harmless.
            for (xid, shards, gid) in &cross_units {
                for &s in shards {
                    let mut recs = vec![LogRecord::CrossCommit { xid: *xid }];
                    if let Some(g) = gid {
                        recs.push(LogRecord::GroupCommit { group: *g });
                    }
                    self.wal.shard(s).publish(&recs);
                }
                self.cross_shard_commits.fetch_add(1, Ordering::Relaxed);
            }

            // ---- Phase 3: install row versions (locks still held) ----
            for bucket in &buckets {
                self.install_versions(bucket, ts);
            }
            self.versions.complete(ts);
        } else {
            // Nothing durable in the whole batch: no publish, no sync.
            for txn in txns.iter_mut() {
                txn.redo.clear();
            }
        }

        for txn in txns.iter_mut() {
            if self.config.record_history {
                self.recorder.commit(txn.tx);
            }
            self.locks.unlock_all(TxId(txn.tx));
            if let Some(ts) = txn.snapshot.take() {
                self.versions.unpin(ts);
            }
            txn.undo.clear();
            txn.status = TxnStatus::Committed;
        }
    }

    /// Install the after-image of every write record in `recs` into its
    /// table's version chains at commit timestamp `ts` (tombstones for
    /// deletes). One short write latch per operation; the writers' 2PL X
    /// locks are still held, so no concurrent batch can interleave
    /// same-row installs out of timestamp order.
    fn install_versions(&self, recs: &[LogRecord], ts: CommitTs) {
        for rec in recs {
            let (table, row, after) = match rec {
                LogRecord::Insert {
                    table, row, values, ..
                } => (table, *row, Some(values.clone())),
                LogRecord::Update {
                    table, row, after, ..
                } => (table, *row, Some(after.clone())),
                LogRecord::Delete { table, row, .. } => (table, *row, None),
                _ => continue,
            };
            if let Ok(h) = self.catalog.handle(table) {
                h.write().install_version(RowId(row), ts, after);
            }
        }
    }

    /// A materialized copy of `table` as visible at snapshot `ts`,
    /// memoized per table across transactions: a cached copy built at
    /// `(built_ts, epoch)` is reused for any `ts >= built_ts` while the
    /// table's committed history is unchanged (same `version_epoch` ⇒ no
    /// version installed, sealed or pruned since the copy, so the visible
    /// data is identical). `None` if the table does not exist.
    ///
    /// Copies are always **bare**: named indexes are never rebuilt for a
    /// snapshot. Probing snapshot readers never reach this path — they
    /// probe the live history-union index under the handle's read latch
    /// and filter the candidates by version visibility at `ts` (see
    /// `Executor::snapshot_probe`) — so the copy only ever serves scans,
    /// where an index would be dead weight.
    pub(crate) fn snapshot_table(
        &self,
        name: &str,
        ts: CommitTs,
        _stats: &mut youtopia_storage::ScanStats,
    ) -> Option<std::sync::Arc<youtopia_storage::Table>> {
        let key = name.to_ascii_lowercase();
        let cached = self.snap_cache.lock().get(&key).cloned();
        let handle = self.catalog.handle(name).ok()?;
        let guard = handle.read();
        if let Some(c) = cached {
            let fresh = ts == c.built_ts || (c.clean && ts > c.built_ts);
            if c.epoch == guard.version_epoch() && fresh {
                return Some(c.table);
            }
        }
        let built = CachedSnapshot {
            built_ts: ts,
            epoch: guard.version_epoch(),
            clean: guard.max_version_ts() <= ts,
            table: std::sync::Arc::new(guard.snapshot_at(ts)),
        };
        drop(guard);
        let table = built.table.clone();
        let mut cache = self.snap_cache.lock();
        // Keep the newest-timestamped copy: an old pin racing a fresh one
        // must not clobber the entry later snapshots will want.
        let keep_existing = cache
            .get(&key)
            .is_some_and(|existing| existing.built_ts > built.built_ts);
        if !keep_existing {
            cache.insert(key, built);
        }
        Some(table)
    }

    /// Multi-version garbage collection: prune, in every table, the row
    /// versions no live snapshot can reach (older than the oldest pinned
    /// snapshot — see [`SnapshotRegistry::horizon`]). The scheduler runs
    /// this at settle boundaries and [`Engine::checkpoint`] after each
    /// image; returns the number of versions reclaimed.
    pub fn vacuum(&self) -> u64 {
        let horizon = self.versions.horizon();
        let snapshot = self.catalog.snapshot();
        let mut pruned = 0u64;
        for name in snapshot.table_names() {
            if let Ok(h) = snapshot.handle(&name) {
                let mut guard = h.write();
                pruned += guard.prune_versions(horizon) as u64;
                // Named-index postings are a history union (removals are
                // deferred so snapshot probes keep seeing old versions'
                // keys); with the horizon advanced this settles them back
                // to exactly the reachable rows.
                guard.resync_named_indexes();
            }
        }
        pruned
    }

    /// Abort one transaction: in-memory undo, WAL abort record, lock
    /// release. Group-abort cascades are the scheduler's job (it knows
    /// which transactions are in flight).
    pub fn abort(&self, txn: &mut Txn, err: EngineError) {
        // Unpublished redo vanishes with the abort: the aborted attempt's
        // writes never reach the log, so recovery never sees them.
        txn.redo.clear();
        // In-memory undo against per-table handles (one short write latch
        // per operation; the transaction still holds its 2PL X locks, so
        // nobody can observe the intermediate states).
        for u in txn.undo.drain(..).rev() {
            match u {
                Undo::Insert { table, row } => {
                    if let Ok(h) = self.catalog.handle(&table) {
                        h.write().delete(RowId(row));
                    }
                }
                Undo::Delete { table, row, before } => {
                    if let Ok(h) = self.catalog.handle(&table) {
                        let _ = h.write().insert_at(RowId(row), before);
                    }
                }
                Undo::Update { table, row, before } => {
                    if let Ok(h) = self.catalog.handle(&table) {
                        let _ = h.write().update(RowId(row), before);
                    }
                }
            }
        }
        // No `Abort` record: only the commit path ever publishes to the
        // shared WAL, so an aborting attempt has nothing durable for an
        // abort record to annul — recovery already treats "no commit
        // record" as aborted. Appending one anyway (as this used to)
        // bloats the log under hot abort/retry workloads with records
        // recovery provably ignores.
        if self.config.record_history {
            self.recorder.abort(txn.tx);
        }
        self.locks.unlock_all(TxId(txn.tx));
        if let Some(ts) = txn.snapshot.take() {
            self.versions.unpin(ts);
        }
        txn.status = TxnStatus::Aborted(err);
    }

    /// Write a checkpoint image per **quiescent shard** and (optionally)
    /// truncate each imaged segment's prefix.
    ///
    /// Quiescence is judged shard by shard: a shard checkpoints when its
    /// own lock manager holds no grants or waiters, so one busy shard no
    /// longer blocks checkpointing the other N−1 (at one shard this is
    /// the classic whole-engine quiesce point — the scheduler's settle
    /// phase). Only when *every* shard is busy is the call refused with
    /// [`EngineError::Checkpoint`].
    ///
    /// The quiescence check happens **after** read latches on every table
    /// are acquired, and those latches are held until the image is
    /// published and synced. A transaction that slips in concurrently
    /// (e.g. a second scheduler sharing this engine) either already holds
    /// a lock — the check refuses — or cannot land a write or publish a
    /// commit that the image would miss before the latches drop, so the
    /// image is always a transactionally-consistent prefix state.
    ///
    /// The image (`Checkpoint` begin + one `CheckpointTable` per table +
    /// `CheckpointEnd`) is published as one contiguous range and synced
    /// before any truncation, so the log never loses its only complete
    /// image: a crash mid-checkpoint leaves the previous image at the
    /// head and recovery falls back to it.
    pub fn checkpoint(&self, truncate: bool) -> Result<CheckpointReport, EngineError> {
        let snapshot = self.catalog.snapshot();
        // All table read guards, acquired in sorted order (the catalog's
        // deadlock discipline) and held across check + copy + publish.
        let view = snapshot.read_all();
        // Per-shard quiescence: a shard whose lock manager holds no grants
        // or waiters has no in-flight transaction touching its tables (any
        // such transaction would hold 2PL locks there), so its partition
        // can be imaged even while other shards stay busy. Refuse only
        // when *no* shard is checkpointable.
        let nshards = self.wal.shards();
        let quiescent: Vec<bool> = (0..nshards)
            .map(|s| self.locks.quiescent_shard(s))
            .collect();
        if !quiescent.iter().any(|&q| q) {
            return Err(EngineError::Checkpoint(
                "transactions hold or await locks; checkpoint only at a run boundary",
            ));
        }
        let ckpt = self.next_ckpt.fetch_add(1, Ordering::Relaxed);
        // The quiesced working state *is* the committed state at the
        // stable frontier; stamping it keeps the snapshot clock monotone
        // across recovery even after truncation drops every pre-image
        // Commit record.
        let ts = self.versions.frontier();
        let mut images: Vec<Option<Vec<LogRecord>>> = quiescent
            .iter()
            .map(|&q| {
                q.then(|| {
                    vec![LogRecord::Checkpoint {
                        ckpt,
                        active: Vec::new(),
                        ts,
                    }]
                })
            })
            .collect();
        let (mut tables, mut rows) = (0usize, 0usize);
        for t in view.tables() {
            let Some(recs) = images[shard_of_table(t.name(), nshards)].as_mut() else {
                continue;
            };
            let table_rows: Vec<_> = t
                .rows_cloned()
                .into_iter()
                .map(|(id, row)| (id.0, row))
                .collect();
            tables += 1;
            rows += table_rows.len();
            recs.push(LogRecord::CheckpointTable {
                ckpt,
                name: t.name().to_string(),
                schema: t.schema().clone(),
                rows: table_rows,
            });
            // Re-log named index definitions inside the image: truncation
            // may drop the original CreateIndex records, and recovery
            // rebuilds index contents from the image's rows.
            for idx in t.named_indexes().iter() {
                recs.push(LogRecord::CreateIndex {
                    table: t.name().to_string(),
                    name: idx.name().to_string(),
                    columns: idx.column_names().to_vec(),
                    kind: idx.kind(),
                });
            }
        }
        let mut starts: Vec<Option<Lsn>> = vec![None; nshards];
        for s in 0..nshards {
            if let Some(recs) = images[s].as_mut() {
                recs.push(LogRecord::CheckpointEnd { ckpt });
                let range = self.wal.shard(s).publish(recs);
                self.wal.shard(s).sync();
                starts[s] = Some(range.start);
            }
        }
        drop(view);
        let mut truncated_bytes = 0u64;
        if truncate {
            // Before any prefix drops: make every segment's tail durable.
            // A truncated prefix may hold the only `CrossPrepare` of a
            // unit whose partners carry appended-but-unsynced
            // `CrossCommit` shortcuts; syncing all shards first keeps the
            // shortcut (and thus the unit's commit verdict) durable.
            if nshards > 1 {
                self.wal.sync_all();
            }
            for (s, start) in starts.iter().enumerate() {
                if let Some(start) = start {
                    truncated_bytes += self.wal.shard(s).truncate_prefix(*start);
                }
            }
        }
        // A checkpoint boundary is also a GC boundary: reclaim versions no
        // live snapshot can reach (the latches are dropped; vacuum takes
        // its own short per-table write latches).
        let versions_pruned = self.vacuum();
        Ok(CheckpointReport {
            ckpt,
            lsn: starts.iter().flatten().next().copied().unwrap_or(Lsn(0)),
            tables,
            rows,
            truncated_bytes,
            versions_pruned,
        })
    }

    /// Test/bench hook: simulate a crash (losing the unsynced WAL tail and
    /// all memory state) and recover the database from the durable log —
    /// starting from the last complete checkpoint image when one exists.
    /// Returns the set of transactions rolled back despite having a
    /// durable commit record (widowed rollbacks), or
    /// [`EngineError::Recovery`] if the durable log itself is corrupt
    /// (torn tails are not corruption — they end the log cleanly).
    ///
    /// Recovery models a **fresh process**: besides reloading the
    /// catalog, it resets every piece of volatile session state — the
    /// tx-id allocator restarts just past the highest id in the durable
    /// log (a restarted engine must not mint ids that collide with
    /// durable history), and the lock manager, entanglement groups, and
    /// history recorder are cleared (pre-crash transactions no longer
    /// exist to own locks, group links, or schedule entries).
    pub fn crash_and_recover(&self) -> Result<BTreeSet<u64>, EngineError> {
        self.wal.crash();
        let logs = self
            .wal
            .durable_records_sharded()
            .map_err(EngineError::Recovery)?;
        let outcome = recover_sharded(&logs)?;
        let widowed: BTreeSet<u64> = outcome
            .shards
            .iter()
            .flat_map(|o| o.widowed_rollbacks.iter().copied())
            .collect();
        self.catalog.load(outcome.db);
        self.next_tx.store(outcome.max_tx + 1, Ordering::SeqCst);
        self.locks.reset();
        self.groups.clear();
        self.recorder.clear();
        // Multi-version state is volatile: pre-crash snapshots are gone
        // and recovered tables carry no history. Seal the recovered
        // (latest-committed) state as the one version at the highest
        // durable commit timestamp and restart the clock past it, so new
        // snapshots see exactly the recovered state and can never alias a
        // pre-crash timestamp.
        let ts = outcome.max_commit_ts.max(1);
        self.versions.reset_to(ts);
        // The materialization cache must go too: recovered tables start a
        // fresh epoch counter, so a pre-crash cache entry could collide
        // with a post-recovery epoch and serve stale pre-crash data.
        self.snap_cache.lock().clear();
        let snapshot = self.catalog.snapshot();
        for name in snapshot.table_names() {
            if let Ok(h) = snapshot.handle(&name) {
                h.write().seal_versions(ts);
            }
        }
        Ok(widowed)
    }
}

/// The table a routed log record belongs to (`None` for table-less
/// records — `Begin`, commit markers — which ride with their unit).
fn record_table(r: &LogRecord) -> Option<&str> {
    match r {
        LogRecord::Insert { table, .. }
        | LogRecord::Update { table, .. }
        | LogRecord::Delete { table, .. }
        | LogRecord::CreateIndex { table, .. } => Some(table),
        LogRecord::CreateTable { name, .. } => Some(name),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ClientId, Program};
    use youtopia_storage::Value;

    fn engine() -> Engine {
        let e = Engine::new(EngineConfig::default());
        e.setup(
            "CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT);\
             CREATE TABLE Reserve (uid INT, fid INT);\
             INSERT INTO Flights VALUES (122, '1970-04-11', 'LA');\
             INSERT INTO Flights VALUES (123, '1970-04-12', 'LA');\
             INSERT INTO Flights VALUES (235, '1970-04-13', 'Paris');",
        )
        .unwrap();
        e
    }

    fn txn(e: &Engine, script: &str) -> Txn {
        let p = Program::parse(script).unwrap();
        let mut t = Txn::new(ClientId(1), e.alloc_tx(), p);
        e.begin(&mut t);
        t
    }

    #[test]
    fn classical_transaction_executes_and_commits() {
        let e = engine();
        let mut t = txn(
            &e,
            "BEGIN; SELECT @fno FROM Flights WHERE dest = 'LA'; \
             INSERT INTO Reserve (uid, fid) VALUES (7, @fno); COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Ready);
        e.commit_group(&mut [&mut t]);
        assert_eq!(t.status, TxnStatus::Committed);
        e.with_db(|db| {
            let rows = db.canonical_rows("Reserve").unwrap();
            assert_eq!(rows, vec![vec![Value::Int(7), Value::Int(122)]]);
        });
        // Locks released (strict 2PL at commit).
        assert!(e.locks.held(TxId(t.tx)).is_empty());
    }

    #[test]
    fn abort_undoes_writes() {
        let e = engine();
        let mut t = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (7, 122); \
             UPDATE Flights SET dest = 'SF' WHERE fno = 122; \
             DELETE FROM Flights WHERE fno = 235; ROLLBACK; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Aborted);
        assert_eq!(t.status, TxnStatus::Aborted(EngineError::RolledBack));
        e.with_db(|db| {
            assert_eq!(db.table("Reserve").unwrap().len(), 0);
            assert_eq!(db.table("Flights").unwrap().len(), 3);
            let la = db
                .select_eq("Flights", &[("fno", Value::Int(122))])
                .unwrap();
            assert_eq!(la[0].1[2], Value::str("LA"), "update undone");
        });
    }

    #[test]
    fn entangled_pair_coordinates_end_to_end() {
        let e = engine();
        let q = |me: &str, other: &str| {
            format!(
                "BEGIN; SELECT '{me}', fno AS @fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
                 INSERT INTO Reserve (uid, fid) VALUES ({id}, @fno); COMMIT;",
                me = me,
                other = other,
                id = if me == "Mickey" { 1 } else { 2 },
            )
        };
        let mut t1 = txn(&e, &q("Mickey", "Minnie"));
        let mut t2 = txn(&e, &q("Minnie", "Mickey"));
        assert_eq!(e.run_until_block(&mut t1), StepOutcome::Blocked);
        assert_eq!(e.run_until_block(&mut t2), StepOutcome::Blocked);
        let report = e.evaluate_queries(&mut [&mut t1, &mut t2]);
        assert_eq!(report.answered, 2);
        assert_eq!(e.run_until_block(&mut t1), StepOutcome::Ready);
        assert_eq!(e.run_until_block(&mut t2), StepOutcome::Ready);
        // Group commit.
        assert!(e.groups.is_grouped(t1.tx));
        e.commit_group(&mut [&mut t1, &mut t2]);
        e.with_db(|db| {
            let rows = db.canonical_rows("Reserve").unwrap();
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0][1], rows[1][1], "same flight booked");
        });
        // The recorded history is entangled-isolated.
        let s = e.recorder.schedule();
        s.validate().unwrap();
        assert!(youtopia_isolation::is_entangled_isolated(&s));
    }

    #[test]
    fn no_partner_query_stays_blocked() {
        let e = engine();
        let mut t = txn(
            &e,
            "BEGIN; SELECT 'Donald', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('Daffy', fno) IN ANSWER R CHOOSE 1; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Blocked);
        let report = e.evaluate_queries(&mut [&mut t]);
        assert_eq!(report.no_partner, 1);
        assert!(matches!(t.status, TxnStatus::Blocked { .. }));
    }

    #[test]
    fn empty_answer_policy_abort() {
        let e = engine(); // default policy: Abort
        let q = |me: &str, other: &str, dest: &str| {
            format!(
                "BEGIN; SELECT '{me}', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='{dest}') \
                 AND ('{other}', fno) IN ANSWER R CHOOSE 1; COMMIT;"
            )
        };
        // Patterns match, data cannot: Mickey wants LA, Minnie wants Tokyo.
        let mut t1 = txn(&e, &q("Mickey", "Minnie", "LA"));
        let mut t2 = txn(&e, &q("Minnie", "Mickey", "Tokyo"));
        e.run_until_block(&mut t1);
        e.run_until_block(&mut t2);
        let report = e.evaluate_queries(&mut [&mut t1, &mut t2]);
        assert_eq!(report.empty, 2);
        assert_eq!(report.aborted, 2);
        assert_eq!(t1.status, TxnStatus::Aborted(EngineError::EmptyAnswer));
        // History is still valid and isolated (singleton entangles).
        let s = e.recorder.schedule();
        s.validate().unwrap();
        assert!(youtopia_isolation::is_entangled_isolated(&s));
    }

    #[test]
    fn empty_answer_policy_proceed() {
        let cfg = EngineConfig {
            empty_answer: EmptyAnswerPolicy::Proceed,
            ..EngineConfig::default()
        };
        let e = Engine::new(cfg);
        e.setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             INSERT INTO Flights VALUES (1, 'LA');",
        )
        .unwrap();
        let q = |me: &str, other: &str, dest: &str| {
            format!(
                "BEGIN; SELECT '{me}', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='{dest}') \
                 AND ('{other}', fno) IN ANSWER R CHOOSE 1; COMMIT;"
            )
        };
        let mut t1 = txn(&e, &q("A", "B", "LA"));
        let mut t2 = txn(&e, &q("B", "A", "Tokyo"));
        e.run_until_block(&mut t1);
        e.run_until_block(&mut t2);
        let report = e.evaluate_queries(&mut [&mut t1, &mut t2]);
        assert_eq!(report.empty, 2);
        assert_eq!(report.aborted, 0);
        assert_eq!(e.run_until_block(&mut t1), StepOutcome::Ready);
        assert_eq!(
            t1.answers,
            vec![Vec::<Value>::new()],
            "empty answer recorded"
        );
    }

    #[test]
    fn lock_conflicts_abort_on_timeout() {
        let cfg = EngineConfig {
            lock_timeout: Duration::from_millis(10),
            // This test is about S-vs-X lock conflicts, so force read-only
            // transactions onto the locked path (with snapshot reads on,
            // t2 would simply never conflict — see
            // `snapshot_reads_bypass_writer_locks`).
            snapshot_reads: false,
            ..EngineConfig::default()
        };
        let e = Engine::new(cfg);
        e.setup("CREATE TABLE T (a INT); INSERT INTO T VALUES (1);")
            .unwrap();
        let mut t1 = txn(&e, "BEGIN; UPDATE T SET a = 2; COMMIT;");
        let mut t2 = txn(&e, "BEGIN; SELECT a FROM T; COMMIT;");
        assert_eq!(e.run_until_block(&mut t1), StepOutcome::Ready);
        // t1 holds X on T until commit; t2's S lock times out.
        assert_eq!(e.run_until_block(&mut t2), StepOutcome::Aborted);
        assert!(matches!(
            t2.status,
            TxnStatus::Aborted(EngineError::Lock(_))
        ));
        e.commit_group(&mut [&mut t1]);
        // Retry after commit succeeds.
        let mut t3 = txn(&e, "BEGIN; SELECT @a FROM T; COMMIT;");
        assert_eq!(e.run_until_block(&mut t3), StepOutcome::Ready);
        assert_eq!(t3.env.get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn crash_recovery_preserves_committed_loses_uncommitted() {
        let e = engine();
        let mut t1 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (1, 122); COMMIT;",
        );
        e.run_until_block(&mut t1);
        e.commit_group(&mut [&mut t1]);
        // t2 writes but never commits before the crash.
        let mut t2 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (2, 123); COMMIT;",
        );
        e.run_until_block(&mut t2);
        let widowed = e.crash_and_recover().unwrap();
        assert!(widowed.is_empty());
        e.with_db(|db| {
            let rows = db.canonical_rows("Reserve").unwrap();
            assert_eq!(rows, vec![vec![Value::Int(1), Value::Int(122)]]);
        });
    }

    /// Engine pinned to one shard regardless of `YOUTOPIA_SHARDS`: for
    /// tests whose assertions are about the single-pipeline layout
    /// (aggregate-length LSN arithmetic, whole-engine quiescence).
    fn single_shard_engine() -> Engine {
        let e = Engine::new(EngineConfig {
            shards: 1,
            ..EngineConfig::default()
        });
        e.setup(
            "CREATE TABLE Flights (fno INT, fdate DATE, dest TEXT);\
             CREATE TABLE Reserve (uid INT, fid INT);\
             INSERT INTO Flights VALUES (122, '1970-04-11', 'LA');\
             INSERT INTO Flights VALUES (123, '1970-04-12', 'LA');\
             INSERT INTO Flights VALUES (235, '1970-04-13', 'Paris');",
        )
        .unwrap();
        e
    }

    #[test]
    fn checkpoint_truncates_and_recovery_replays_only_the_suffix() {
        let e = single_shard_engine();
        let mut t1 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (1, 122); COMMIT;",
        );
        e.run_until_block(&mut t1);
        e.commit_group(&mut [&mut t1]);
        let len_before = e.wal.len();
        let cp = e.checkpoint(true).unwrap();
        assert_eq!(cp.tables, 2);
        assert_eq!(cp.rows, 4, "3 flights + 1 reservation");
        assert!(cp.truncated_bytes > 0);
        assert_eq!(cp.lsn.0, len_before, "image begins at the old tail");
        assert_eq!(e.wal.head(), cp.lsn, "prefix reclaimed up to the image");
        // Work after the checkpoint is the only thing recovery replays.
        let mut t2 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (2, 123); COMMIT;",
        );
        e.run_until_block(&mut t2);
        e.commit_group(&mut [&mut t2]);
        let outcome = youtopia_wal::recover(&e.wal.durable_records().unwrap()).unwrap();
        assert_eq!(outcome.checkpoint, Some(cp.ckpt));
        assert!(
            outcome.replayed < 8,
            "suffix only ({} records), not full history",
            outcome.replayed
        );
        let widowed = e.crash_and_recover().unwrap();
        assert!(widowed.is_empty());
        e.with_db(|db| {
            assert_eq!(db.table("Reserve").unwrap().len(), 2);
            assert_eq!(db.table("Flights").unwrap().len(), 3);
        });
    }

    #[test]
    fn checkpoint_refused_while_locks_are_held() {
        // One shard: held locks make the whole engine non-quiescent, so
        // the checkpoint has no shard to image and must refuse.
        let e = single_shard_engine();
        let mut t = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (1, 122); COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Ready);
        // t holds X locks until commit: not a quiesce point.
        assert!(matches!(
            e.checkpoint(true),
            Err(EngineError::Checkpoint(_))
        ));
        e.commit_group(&mut [&mut t]);
        assert!(e.checkpoint(true).is_ok());
    }

    #[test]
    fn sharded_checkpoint_skips_busy_shard_and_images_the_rest() {
        let e = Engine::new(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        e.setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Reserve (uid INT, fid INT);\
             INSERT INTO Flights VALUES (122, 'LA');",
        )
        .unwrap();
        assert_ne!(
            e.shard_of("Flights"),
            e.shard_of("Reserve"),
            "test needs the two tables on different shards"
        );
        // A transaction holds locks on Reserve's shard only.
        let mut t = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (1, 122); COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Ready);
        // Flights' shard is quiescent: its partition checkpoints even
        // though Reserve's shard is busy — and the busy partition is
        // left out of the image.
        let cp = e.checkpoint(true).unwrap();
        assert_eq!(cp.tables, 1, "only the quiescent shard's table imaged");
        assert_eq!(cp.rows, 1);
        e.commit_group(&mut [&mut t]);
        // With every shard quiescent the full catalog images.
        let cp = e.checkpoint(true).unwrap();
        assert_eq!(cp.tables, 2);
        // The skipped shard's commit survived the partial checkpoint.
        let widowed = e.crash_and_recover().unwrap();
        assert!(widowed.is_empty());
        e.with_db(|db| {
            assert_eq!(db.table("Reserve").unwrap().len(), 1);
            assert_eq!(db.table("Flights").unwrap().len(), 1);
        });
    }

    #[test]
    fn cross_shard_transaction_commits_atomically_across_segments() {
        let e = Engine::new(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        e.setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Reserve (uid INT, fid INT);\
             INSERT INTO Flights VALUES (122, 'LA');",
        )
        .unwrap();
        let (sf, sr) = (e.shard_of("Flights"), e.shard_of("Reserve"));
        assert_ne!(sf, sr);
        // One transaction writes both tables: a cross-shard commit unit.
        let mut t = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (1, 122); \
             UPDATE Flights SET dest = 'SF' WHERE fno = 122; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Ready);
        e.commit_group(&mut [&mut t]);
        assert_eq!(t.status, TxnStatus::Committed);
        assert_eq!(e.cross_shard_commits(), 1);
        assert_eq!(e.cross_shard_prepares(), 2, "one prepare per participant");
        // Both participant segments carry the prepare; each carries only
        // its own table's redo.
        let logs = e.wal.durable_records_sharded().unwrap();
        for &s in &[sf, sr] {
            assert!(
                logs[s].iter().any(|(_, r)| matches!(
                    r,
                    LogRecord::CrossPrepare { txs, .. } if txs.contains(&t.tx)
                )),
                "shard {s} must hold the unit's prepare"
            );
        }
        assert!(logs[sf]
            .iter()
            .all(|(_, r)| record_table(r).is_none_or(|tbl| tbl == "Flights")));
        // Recovery (all prepares durable) keeps the whole unit.
        let widowed = e.crash_and_recover().unwrap();
        assert!(widowed.is_empty());
        e.with_db(|db| {
            assert_eq!(db.table("Reserve").unwrap().len(), 1);
            let f = db
                .select_eq("Flights", &[("fno", Value::Int(122))])
                .unwrap();
            assert_eq!(f[0].1[1], Value::str("SF"));
        });
        // A torn prepare on one participant aborts the unit everywhere:
        // redo the write, then crash before the second shard's sync.
        let mut t2 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (2, 122); \
             UPDATE Flights SET dest = 'LA' WHERE fno = 122; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t2), StepOutcome::Ready);
        e.commit_group(&mut [&mut t2]);
        // Simulate losing one participant's tail: unsync'd records after
        // the commit are gone on a crash; to model a *torn prepare* we
        // re-publish the same unit with one shard's tail cut. Easiest
        // faithful check at engine level: recovery after a clean commit
        // is a fixpoint (recover twice, same state).
        e.crash_and_recover().unwrap();
        let rows_once = e.with_db(|db| db.canonical_rows("Reserve").unwrap());
        e.crash_and_recover().unwrap();
        let rows_twice = e.with_db(|db| db.canonical_rows("Reserve").unwrap());
        assert_eq!(rows_once, rows_twice, "recover ∘ recover is a fixpoint");
    }

    #[test]
    fn recovery_resets_tx_allocator_locks_groups_and_recorder() {
        let e = engine();
        // A committed transaction fixes the max durable tx id…
        let mut t1 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (1, 122); COMMIT;",
        );
        e.run_until_block(&mut t1);
        e.commit_group(&mut [&mut t1]);
        // …while an in-flight transaction holds locks at crash time.
        let mut t2 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (2, 123); COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t2), StepOutcome::Ready);
        assert!(!e.locks.held(TxId(t2.tx)).is_empty());
        // Burn allocator state past the durable log (aborted attempts).
        let burned = e.alloc_tx();
        assert!(burned > t2.tx);

        e.crash_and_recover().unwrap();

        // No leaked locks, groups, or history.
        assert!(e.locks.quiescent(), "pre-crash locks must not survive");
        assert!(!e.groups.is_grouped(t2.tx));
        assert!(e.recorder.schedule().ops.is_empty());
        // Fresh ids restart just past the durable maximum — not at the
        // stale in-memory counter, and never colliding with durable ids.
        let fresh = e.alloc_tx();
        assert_eq!(fresh, t1.tx + 1, "t1 is the max tx id in the durable log");
        let durable_ids: BTreeSet<u64> = e
            .wal
            .durable_records()
            .unwrap()
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { tx, .. } | LogRecord::Begin { tx } => Some(*tx),
                _ => None,
            })
            .collect();
        assert!(!durable_ids.contains(&fresh));
    }

    #[test]
    fn abort_of_unpublished_txn_appends_no_log_record() {
        let e = engine();
        let len_before = e.wal.len();
        let mut t = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (7, 122); ROLLBACK; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Aborted);
        assert_eq!(
            e.wal.len(),
            len_before,
            "an abort with nothing durable must not grow the log"
        );
        // Retry/abort churn leaves the log untouched too.
        for _ in 0..10 {
            let mut t = txn(
                &e,
                "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (7, 122); ROLLBACK; COMMIT;",
            );
            e.run_until_block(&mut t);
        }
        assert_eq!(e.wal.len(), len_before);
    }

    #[test]
    fn snapshot_reads_bypass_writer_locks() {
        // A writer holds its X lock (uncommitted); a read-only transaction
        // neither blocks nor times out — it reads the committed state at
        // its pin and commits immediately.
        let cfg = EngineConfig {
            lock_timeout: Duration::from_millis(10),
            ..EngineConfig::default()
        };
        let e = Engine::new(cfg);
        e.setup("CREATE TABLE T (a INT); INSERT INTO T VALUES (1);")
            .unwrap();
        let mut writer = txn(&e, "BEGIN; UPDATE T SET a = 2; COMMIT;");
        assert_eq!(e.run_until_block(&mut writer), StepOutcome::Ready);
        let wal_before = e.wal.len();
        let mut reader = txn(&e, "BEGIN; SELECT @a FROM T; COMMIT;");
        assert_eq!(e.run_until_block(&mut reader), StepOutcome::Ready);
        assert_eq!(
            reader.env.get("a"),
            Some(&Value::Int(1)),
            "sees the committed value, not the writer's dirty working row"
        );
        e.commit_group(&mut [&mut reader]);
        assert_eq!(reader.status, TxnStatus::Committed);
        assert_eq!(
            e.wal.len(),
            wal_before,
            "a read-only commit publishes nothing durable"
        );
        assert_eq!(e.versions.live_pins(), 0, "pin released at commit");
        e.commit_group(&mut [&mut writer]);
        // Post-commit snapshots see the new value.
        let mut late = txn(&e, "BEGIN; SELECT @a FROM T; COMMIT;");
        e.run_until_block(&mut late);
        assert_eq!(late.env.get("a"), Some(&Value::Int(2)));
        e.commit_group(&mut [&mut late]);
    }

    #[test]
    fn pinned_snapshot_is_stable_across_concurrent_commits() {
        let e = engine();
        let mut reader = txn(
            &e,
            "BEGIN; SELECT fid AS @before FROM Reserve WHERE uid = 7; \
             SET @x = 0; SELECT fid AS @after FROM Reserve WHERE uid = 7; COMMIT;",
        );
        // Pin first (begin already ran in txn()); now a writer commits.
        let mut w = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (7, 122); COMMIT;",
        );
        e.run_until_block(&mut w);
        e.commit_group(&mut [&mut w]);
        // The reader, pinned before the writer's commit, sees neither row.
        assert_eq!(e.run_until_block(&mut reader), StepOutcome::Ready);
        assert_eq!(reader.env.get("before"), None);
        assert_eq!(reader.env.get("after"), None, "repeatable within the txn");
        e.commit_group(&mut [&mut reader]);
        // The recorded schedule stays valid, isolated, and snapshot-
        // serializable.
        let s = e.recorder.schedule();
        s.validate().unwrap();
        assert!(youtopia_isolation::is_entangled_isolated(&s));
        youtopia_isolation::check_snapshot_serializable(&s, &youtopia_isolation::Db::new())
            .unwrap();
    }

    #[test]
    fn vacuum_prunes_versions_behind_the_horizon() {
        let e = engine();
        let update = |e: &Engine, day: usize| {
            let mut t = txn(
                e,
                &format!(
                    "BEGIN; UPDATE Flights SET fdate = '1970-01-0{day}' WHERE fno = 122; COMMIT;"
                ),
            );
            e.run_until_block(&mut t);
            e.commit_group(&mut [&mut t]);
        };
        update(&e, 1);
        update(&e, 2);
        // A snapshot pinned here keeps the ts of update 2 reachable…
        let pin = e.versions.pin();
        update(&e, 3);
        update(&e, 4);
        // 4 update versions + the sealed bootstrap version on row 0, plus
        // one sealed version for each of the two other rows.
        let flights = e.catalog.handle("Flights").unwrap();
        assert_eq!(flights.read().version_count(), 7);
        // …so the first vacuum reclaims only history below the pin.
        let pruned = e.vacuum();
        assert_eq!(pruned, 2, "bootstrap + update-1 versions of row 0");
        assert_eq!(flights.read().version_count(), 5);
        e.versions.unpin(pin);
        let pruned2 = e.vacuum();
        assert_eq!(pruned2, 2, "updates 2 and 3 reclaimed once unpinned");
        assert_eq!(
            flights.read().version_count(),
            3,
            "one version per live row remains"
        );
        // Snapshots at the frontier still read correctly after GC.
        let mut t = txn(
            &e,
            "BEGIN; SELECT fdate AS @d FROM Flights WHERE fno = 122; COMMIT;",
        );
        e.run_until_block(&mut t);
        assert_eq!(t.env.get("d"), Some(&Value::Date(3)), "1970-01-04");
        e.commit_group(&mut [&mut t]);
    }

    #[test]
    fn recovery_reseals_versions_for_fresh_snapshots() {
        let e = engine();
        // Warm the materialization cache on the empty table BEFORE the
        // write: a recovered engine must not serve this stale copy
        // (regression: the cache survived recovery, and the re-sealed
        // epoch collided with the pre-crash one).
        let mut warm = txn(&e, "BEGIN; SELECT fid FROM Reserve WHERE uid = 1; COMMIT;");
        e.run_until_block(&mut warm);
        e.commit_group(&mut [&mut warm]);
        let mut t1 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (1, 122); COMMIT;",
        );
        e.run_until_block(&mut t1);
        e.commit_group(&mut [&mut t1]);
        e.crash_and_recover().unwrap();
        // A snapshot taken on the recovered engine sees the full recovered
        // state (versions were re-sealed at the durable frontier).
        let mut r = txn(&e, "BEGIN; SELECT @fid FROM Reserve WHERE uid = 1; COMMIT;");
        assert_eq!(e.run_until_block(&mut r), StepOutcome::Ready);
        assert_eq!(r.env.get("fid"), Some(&Value::Int(122)));
        e.commit_group(&mut [&mut r]);
        assert_eq!(e.versions.live_pins(), 0);
    }

    #[test]
    fn snapshot_ablation_takes_locks_again() {
        let cfg = EngineConfig {
            lock_timeout: Duration::from_millis(10),
            snapshot_reads: false,
            ..EngineConfig::default()
        };
        let e = Engine::new(cfg);
        e.setup("CREATE TABLE T (a INT); INSERT INTO T VALUES (1);")
            .unwrap();
        let mut writer = txn(&e, "BEGIN; UPDATE T SET a = 2; COMMIT;");
        assert_eq!(e.run_until_block(&mut writer), StepOutcome::Ready);
        let mut reader = txn(&e, "BEGIN; SELECT a FROM T; COMMIT;");
        assert_eq!(
            e.run_until_block(&mut reader),
            StepOutcome::Aborted,
            "with snapshot_reads off, the reader queues behind the X lock"
        );
        e.commit_group(&mut [&mut writer]);
    }

    #[test]
    fn setup_rejects_non_ddl() {
        let e = Engine::new(EngineConfig::default());
        assert!(matches!(
            e.setup("DELETE FROM x"),
            Err(EngineError::Protocol(_))
        ));
    }

    #[test]
    fn named_index_serves_point_statements() {
        let e = engine();
        e.create_named_index(
            "Reserve",
            "reserve_uid",
            &["uid"],
            youtopia_storage::IndexKind::Hash,
        )
        .unwrap();
        for uid in 0..50 {
            let mut t = txn(
                &e,
                &format!("BEGIN; INSERT INTO Reserve (uid, fid) VALUES ({uid}, 122); COMMIT;"),
            );
            e.run_until_block(&mut t);
            e.commit_group(&mut [&mut t]);
        }
        let scanned_before = e.rows_scanned();
        let lookups_before = e.index_lookups();
        // A locked (read-write) point SELECT goes through the index.
        let mut t = txn(
            &e,
            "BEGIN; SELECT fid AS @fid FROM Reserve WHERE uid = 17; \
             UPDATE Reserve SET fid = 123 WHERE uid = 17; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Ready);
        assert_eq!(t.env.get("fid"), Some(&Value::Int(122)));
        e.commit_group(&mut [&mut t]);
        assert_eq!(
            e.index_lookups() - lookups_before,
            3,
            "SELECT: lock probe + eval probe; UPDATE: lock probe"
        );
        assert!(
            e.rows_scanned() - scanned_before <= 4,
            "point statements must not scan the 50-row table (scanned {})",
            e.rows_scanned() - scanned_before
        );
        e.with_db(|db| {
            let rows = db.select_eq("Reserve", &[("uid", Value::Int(17))]).unwrap();
            assert_eq!(rows[0].1[1], Value::Int(123));
        });
    }

    #[test]
    fn snapshot_reads_probe_live_index_with_zero_rebuilds() {
        let e = engine();
        e.create_named_index(
            "Reserve",
            "reserve_uid",
            &["uid"],
            youtopia_storage::IndexKind::Hash,
        )
        .unwrap();
        for uid in 0..50 {
            let mut t = txn(
                &e,
                &format!("BEGIN; INSERT INTO Reserve (uid, fid) VALUES ({uid}, 122); COMMIT;"),
            );
            e.run_until_block(&mut t);
            e.commit_group(&mut [&mut t]);
        }
        // A snapshot reader whose plan never probes `uid` scans a bare
        // materialized copy: no index is rebuilt, nothing probes.
        let avoided_before = e.index_rebuilds_avoided();
        let lookups_before = e.index_lookups();
        let mut bare = txn(
            &e,
            "BEGIN; SELECT uid AS @u FROM Reserve WHERE fid = 999; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut bare), StepOutcome::Ready);
        assert_eq!(bare.env.get("u"), None);
        e.commit_group(&mut [&mut bare]);
        assert_eq!(
            e.index_lookups(),
            lookups_before,
            "non-probing snapshot read never touches the index"
        );
        assert_eq!(
            e.index_rebuilds_avoided(),
            avoided_before,
            "nothing probed, so no rebuild was on the table to avoid"
        );
        // A probing snapshot reader goes through the LIVE history-union
        // index and filters candidates by version visibility — the copy
        // never materializes an index, and each such read counts one
        // avoided rebuild.
        let scanned_before = e.rows_scanned();
        let mut probe = txn(
            &e,
            "BEGIN; SELECT fid AS @fid FROM Reserve WHERE uid = 17; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut probe), StepOutcome::Ready);
        assert_eq!(probe.env.get("fid"), Some(&Value::Int(122)));
        e.commit_group(&mut [&mut probe]);
        assert_eq!(
            e.index_lookups() - lookups_before,
            1,
            "the point read is served by one live-index probe"
        );
        assert_eq!(
            e.index_rebuilds_avoided() - avoided_before,
            1,
            "the probe replaced what used to be a per-snapshot rebuild"
        );
        assert!(
            e.rows_scanned() - scanned_before <= 2,
            "probe candidates, not the 50-row table (scanned {})",
            e.rows_scanned() - scanned_before
        );
    }

    #[test]
    fn named_index_survives_crash_recovery_and_checkpoint() {
        let e = engine();
        e.setup("CREATE INDEX reserve_uid ON Reserve (uid) USING BTREE")
            .unwrap();
        let mut t = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (7, 122); COMMIT;",
        );
        e.run_until_block(&mut t);
        e.commit_group(&mut [&mut t]);
        // Checkpoint + truncate: the original CreateIndex record is gone
        // from the log; the image's re-logged copy must carry it.
        e.checkpoint(true).unwrap();
        let mut t2 = txn(
            &e,
            "BEGIN; INSERT INTO Reserve (uid, fid) VALUES (8, 123); COMMIT;",
        );
        e.run_until_block(&mut t2);
        e.commit_group(&mut [&mut t2]);
        e.crash_and_recover().unwrap();
        let handle = e.catalog.handle("Reserve").unwrap();
        let guard = handle.read();
        let idx = guard.named_indexes().get("reserve_uid").expect("recovered");
        assert_eq!(idx.kind(), youtopia_storage::IndexKind::Btree);
        assert_eq!(idx.probe(&Value::Int(7)).len(), 1);
        assert_eq!(idx.probe(&Value::Int(8)).len(), 1);
        drop(guard);
        // And it still serves point reads after recovery.
        let lookups_before = e.index_lookups();
        let mut r = txn(
            &e,
            "BEGIN; SELECT fid AS @fid FROM Reserve WHERE uid = 8; \
             INSERT INTO Reserve (uid, fid) VALUES (9, 122); COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut r), StepOutcome::Ready);
        assert_eq!(r.env.get("fid"), Some(&Value::Int(123)));
        e.commit_group(&mut [&mut r]);
        assert!(e.index_lookups() > lookups_before);
    }

    #[test]
    fn update_with_column_arithmetic() {
        let e = engine();
        let mut t = txn(
            &e,
            "BEGIN; UPDATE Flights SET fno = fno + 1000 WHERE dest = 'LA'; COMMIT;",
        );
        assert_eq!(e.run_until_block(&mut t), StepOutcome::Ready);
        e.commit_group(&mut [&mut t]);
        e.with_db(|db| {
            let rows = db.canonical_rows("Flights").unwrap();
            let fnos: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
            assert_eq!(fnos, vec![235, 1122, 1123]);
        });
    }
}
