//! Group-commit bookkeeping (§3.3.3): transactions that entangle —
//! directly or transitively — must commit or abort together. The paper's
//! pairwise requirement "induces a requirement on groups of transactions
//! that have entangled with each other directly or transitively".

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use youtopia_lock::{TxId, VictimPolicy};

/// Union-find over engine transaction ids, tracking entanglement groups
/// formed during a run.
#[derive(Debug, Default)]
pub struct GroupManager {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    parent: HashMap<u64, u64>,
    /// Persistent group ids for WAL records: representative → group id.
    group_ids: HashMap<u64, u64>,
    next_group: u64,
}

impl Inner {
    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let r = self.find(p);
        self.parent.insert(x, r);
        r
    }

    fn union(&mut self, a: u64, b: u64) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
            // Merge group-id bookkeeping: keep rb's id if any, else ra's.
            if let Some(id) = self.group_ids.remove(&ra) {
                self.group_ids.entry(rb).or_insert(id);
            }
        }
    }
}

impl GroupManager {
    pub fn new() -> GroupManager {
        GroupManager::default()
    }

    /// Record that `txs` entangled together (one entanglement operation).
    /// Returns the stable group id for WAL logging.
    pub fn link(&self, txs: &[u64]) -> u64 {
        let mut g = self.inner.lock();
        for w in txs.windows(2) {
            g.union(w[0], w[1]);
        }
        let root = g.find(txs[0]);
        if let Some(id) = g.group_ids.get(&root) {
            return *id;
        }
        g.next_group += 1;
        let id = g.next_group;
        g.group_ids.insert(root, id);
        id
    }

    /// Every transaction in the same group as `tx` (including itself),
    /// or just `{tx}` if it never entangled.
    pub fn members(&self, tx: u64) -> HashSet<u64> {
        let mut g = self.inner.lock();
        let root = g.find(tx);
        let keys: Vec<u64> = g.parent.keys().copied().collect();
        let mut out = HashSet::new();
        for k in keys {
            if g.find(k) == root {
                out.insert(k);
            }
        }
        out.insert(tx);
        out
    }

    /// Did `tx` entangle with anyone else?
    pub fn is_grouped(&self, tx: u64) -> bool {
        self.members(tx).len() > 1
    }

    /// The WAL group id of `tx`'s group, if it has one.
    pub fn group_id(&self, tx: u64) -> Option<u64> {
        let mut g = self.inner.lock();
        let root = g.find(tx);
        g.group_ids.get(&root).copied()
    }

    /// Forget everything (between runs the engine keeps groups only for
    /// transactions still in flight; completed groups are dropped).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.parent.clear();
        g.group_ids.clear();
    }
}

/// The engine's deadlock victim policy, backed by its entanglement
/// groups: a candidate's **abort unit** is its whole group (the paper's
/// commit-together requirement is also an abort-together requirement),
/// and a unit is **immune** while any member sits inside the commit
/// pipeline (the engine's `preparing` set) — a group with a prepared
/// partner must not be half-aborted by victim conviction, so the
/// detector skips it and, if every cycle member is immune, leaves the
/// cycle to the timeout backstop.
pub struct GroupVictimPolicy {
    groups: Arc<GroupManager>,
    preparing: Arc<Mutex<HashSet<u64>>>,
}

impl GroupVictimPolicy {
    pub fn new(
        groups: Arc<GroupManager>,
        preparing: Arc<Mutex<HashSet<u64>>>,
    ) -> GroupVictimPolicy {
        GroupVictimPolicy { groups, preparing }
    }
}

impl VictimPolicy for GroupVictimPolicy {
    fn immune(&self, tx: TxId) -> bool {
        let prep = self.preparing.lock();
        if prep.is_empty() {
            return false;
        }
        if prep.contains(&tx.0) {
            return true;
        }
        self.groups.members(tx.0).iter().any(|m| prep.contains(m))
    }

    fn abort_unit(&self, tx: TxId) -> Vec<TxId> {
        let mut unit: Vec<u64> = self.groups.members(tx.0).into_iter().collect();
        unit.sort_unstable();
        unit.into_iter().map(TxId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_and_members() {
        let gm = GroupManager::new();
        gm.link(&[1, 2]);
        assert_eq!(gm.members(1), HashSet::from([1, 2]));
        assert_eq!(gm.members(2), HashSet::from([1, 2]));
        assert_eq!(gm.members(3), HashSet::from([3]));
        assert!(gm.is_grouped(1));
        assert!(!gm.is_grouped(3));
    }

    #[test]
    fn transitive_groups_merge() {
        // The paper: groups chain through shared members.
        let gm = GroupManager::new();
        let id1 = gm.link(&[1, 2]);
        let id2 = gm.link(&[2, 3]);
        assert_eq!(gm.members(1), HashSet::from([1, 2, 3]));
        // The merged group keeps a single stable id.
        assert_eq!(gm.group_id(1), gm.group_id(3));
        let _ = (id1, id2);
    }

    #[test]
    fn multiway_link() {
        let gm = GroupManager::new();
        gm.link(&[5, 6, 7]);
        assert_eq!(gm.members(6).len(), 3);
    }

    #[test]
    fn group_ids_stable_per_group() {
        let gm = GroupManager::new();
        let a = gm.link(&[1, 2]);
        let b = gm.link(&[1, 2]);
        assert_eq!(a, b, "re-linking the same group keeps its id");
        let c = gm.link(&[8, 9]);
        assert_ne!(a, c);
    }

    #[test]
    fn clear_forgets() {
        let gm = GroupManager::new();
        gm.link(&[1, 2]);
        gm.clear();
        assert!(!gm.is_grouped(1));
    }

    #[test]
    fn victim_policy_units_and_immunity() {
        let gm = Arc::new(GroupManager::new());
        let preparing: Arc<Mutex<HashSet<u64>>> = Arc::default();
        let policy = GroupVictimPolicy::new(gm.clone(), preparing.clone());
        gm.link(&[4, 5]);
        assert_eq!(policy.abort_unit(TxId(4)), vec![TxId(4), TxId(5)]);
        assert_eq!(policy.abort_unit(TxId(9)), vec![TxId(9)]);
        assert!(!policy.immune(TxId(4)));
        // A partner enters the commit pipeline: the whole group is
        // immune, strangers are not.
        preparing.lock().insert(5);
        assert!(policy.immune(TxId(4)));
        assert!(policy.immune(TxId(5)));
        assert!(!policy.immune(TxId(9)));
        preparing.lock().remove(&5);
        assert!(!policy.immune(TxId(4)));
    }
}
