//! History recorder: turns real engine executions into the abstract
//! schedules of `youtopia-isolation`, so every run of the system can be
//! audited against the formal anomaly definitions of Appendix C.
//!
//! Reads (scans, grounding reads) are recorded at **table granularity** —
//! the paper's §3.3.3 argument is phrased in terms of read locks on whole
//! tables like `Airlines` — while writes are recorded at **row
//! granularity** when the engine uses row locks, so that two partners
//! inserting different rows into `Reserve` do not register a false
//! write-write conflict. The isolation crate's multigranularity objects
//! make a table-level read conflict with any row write in that table.
//! Index-backed point reads, which hold row S locks instead of a table S
//! lock, record at row granularity ([`Recorder::read_row`]) to match —
//! recording them table-wide would claim conflicts their locks no longer
//! enforce.

use parking_lot::Mutex;
use std::collections::HashMap;
use youtopia_isolation::{Obj, Op, Schedule, Tx};

/// Thread-safe schedule recorder.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    ops: Vec<Op>,
    objs: HashMap<String, u32>,
    next_entangle: u32,
}

impl Inner {
    fn space(&mut self, table: &str) -> u32 {
        let next = self.objs.len() as u32;
        *self.objs.entry(table.to_ascii_lowercase()).or_insert(next)
    }
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// A table-granularity read (scan; conflicts with any write in the
    /// table).
    pub fn read(&self, tx: u64, table: &str) {
        let mut g = self.inner.lock();
        let space = g.space(table);
        g.ops.push(Op::Read {
            tx: Tx(tx as u32),
            obj: Obj::flat(space),
        });
    }

    /// A row-granularity read (index-backed point read holding row S locks
    /// instead of a table S lock; conflicts only with writes to that row).
    pub fn read_row(&self, tx: u64, table: &str, row: u64) {
        let mut g = self.inner.lock();
        let space = g.space(table);
        g.ops.push(Op::Read {
            tx: Tx(tx as u32),
            obj: Obj::row(space, row),
        });
    }

    /// A write; `row` gives row granularity, `None` whole-table
    /// granularity (the Ab4 ablation).
    pub fn write(&self, tx: u64, table: &str, row: Option<u64>) {
        let mut g = self.inner.lock();
        let space = g.space(table);
        let obj = match row {
            Some(r) => Obj::row(space, r),
            None => Obj::flat(space),
        };
        g.ops.push(Op::Write {
            tx: Tx(tx as u32),
            obj,
        });
    }

    /// A snapshot pin: from here on, `tx`'s snapshot reads observe the
    /// committed prefix of this schedule. Recorded by the engine at the
    /// moment the transaction pins its multi-version read timestamp.
    pub fn snapshot_pin(&self, tx: u64) {
        self.inner
            .lock()
            .ops
            .push(Op::SnapshotPin { tx: Tx(tx as u32) });
    }

    /// A snapshot read (table granularity, like ordinary reads) — takes no
    /// locks, conflicts with nothing; audited by the snapshot-cut oracle
    /// check instead of the conflict graph.
    pub fn snapshot_read(&self, tx: u64, table: &str) {
        let mut g = self.inner.lock();
        let space = g.space(table);
        g.ops.push(Op::SnapshotRead {
            tx: Tx(tx as u32),
            obj: Obj::flat(space),
        });
    }

    /// A grounding read (always table-granularity, like the shared locks
    /// that protect it).
    pub fn ground_read(&self, tx: u64, table: &str) {
        let mut g = self.inner.lock();
        let space = g.space(table);
        g.ops.push(Op::GroundRead {
            tx: Tx(tx as u32),
            obj: Obj::flat(space),
        });
    }

    /// Record an entanglement operation; returns its id. Singleton groups
    /// model "combined query evaluated, empty/self answer" so that
    /// grounding reads are always followed by an entangle op (validity
    /// constraint C.1).
    pub fn entangle(&self, txs: &[u64]) -> u32 {
        let mut g = self.inner.lock();
        g.next_entangle += 1;
        let id = g.next_entangle;
        g.ops.push(Op::Entangle {
            id,
            txs: txs.iter().map(|&t| Tx(t as u32)).collect(),
        });
        id
    }

    pub fn commit(&self, tx: u64) {
        self.inner.lock().ops.push(Op::Commit { tx: Tx(tx as u32) });
    }

    pub fn abort(&self, tx: u64) {
        self.inner.lock().ops.push(Op::Abort { tx: Tx(tx as u32) });
    }

    /// Snapshot the recorded schedule (raw; expand quasi-reads before
    /// anomaly checking).
    pub fn schedule(&self) -> Schedule {
        Schedule::new(self.inner.lock().ops.clone())
    }

    /// The table-name ↔ object-space mapping used (for diagnostics).
    pub fn object_names(&self) -> Vec<(String, u32)> {
        let g = self.inner.lock();
        let mut v: Vec<(String, u32)> = g.objs.iter().map(|(k, v)| (k.clone(), *v)).collect();
        v.sort_by_key(|(_, o)| *o);
        v
    }

    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.ops.clear();
        g.objs.clear();
        g.next_entangle = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_isolation::is_entangled_isolated;

    #[test]
    fn records_a_clean_history() {
        let r = Recorder::new();
        r.ground_read(1, "Flights");
        r.ground_read(2, "Flights");
        r.entangle(&[1, 2]);
        r.write(1, "Reserve", Some(0));
        r.write(2, "Reserve", Some(1));
        r.commit(1);
        r.commit(2);
        let s = r.schedule();
        s.validate().unwrap();
        assert!(is_entangled_isolated(&s));
    }

    #[test]
    fn records_widowed_history_as_anomalous() {
        let r = Recorder::new();
        r.ground_read(1, "Flights");
        r.ground_read(2, "Flights");
        r.entangle(&[1, 2]);
        r.commit(1);
        r.abort(2);
        assert!(!is_entangled_isolated(&r.schedule()));
    }

    #[test]
    fn object_mapping_is_stable_and_case_insensitive() {
        let r = Recorder::new();
        r.read(1, "Flights");
        r.write(1, "FLIGHTS", None);
        r.read(1, "Hotels");
        r.commit(1);
        let names = r.object_names();
        assert_eq!(names.len(), 2);
        assert_eq!(names[0].0, "flights");
        let s = r.schedule();
        assert_eq!(s.ops[0].obj(), s.ops[1].obj());
        // Row-granular writes on the same table share a space but are
        // distinct objects.
        let r2 = Recorder::new();
        r2.write(1, "t", Some(0));
        r2.write(1, "t", Some(1));
        r2.read(1, "t");
        let s2 = r2.schedule();
        let (a, b, c) = (
            s2.ops[0].obj().unwrap(),
            s2.ops[1].obj().unwrap(),
            s2.ops[2].obj().unwrap(),
        );
        assert_ne!(a, b);
        assert!(a.overlaps(&c) && b.overlaps(&c));
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn snapshot_ops_record_and_stay_isolated() {
        let r = Recorder::new();
        // A writer and a concurrent snapshot reader: the reader's ops must
        // not create conflict edges (no false cycles with the writer).
        r.snapshot_pin(2);
        r.write(1, "Counters", Some(0));
        r.commit(1);
        r.snapshot_read(2, "Counters");
        r.commit(2);
        let s = r.schedule();
        s.validate().unwrap();
        assert!(is_entangled_isolated(&s));
        assert!(youtopia_isolation::check_snapshot_serializable(
            &s,
            &youtopia_isolation::Db::new()
        )
        .is_ok());
    }

    #[test]
    fn entangle_ids_increment() {
        let r = Recorder::new();
        let a = r.entangle(&[1]);
        let b = r.entangle(&[2, 3]);
        assert!(b > a);
    }

    #[test]
    fn clear_resets() {
        let r = Recorder::new();
        r.read(1, "t");
        r.commit(1);
        r.clear();
        assert!(r.schedule().ops.is_empty());
        assert!(r.object_names().is_empty());
    }
}
