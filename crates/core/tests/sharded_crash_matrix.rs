//! Crash-matrix property test for the **sharded** log: N per-shard
//! segments cut at independent byte boundaries.
//!
//! A real multi-shard workload (shard-local transactions, cross-shard
//! classicals, and entangled pairs whose members straddle shards)
//! produces one WAL segment per shard; the matrix then truncates each
//! segment independently — simulating a crash where every device lost a
//! different amount of tail — and asserts that sharded recovery:
//!
//! 1. never half-commits a **cross-shard unit**: for every
//!    `CrossPrepare` in any durable prefix, either all member
//!    transactions win or none do, no matter which participant's
//!    segment was torn;
//! 2. never produces a durable **widow**: every `EntangleGroup` on any
//!    segment is all-in or all-out of the union winner set;
//! 3. is **idempotent**: re-partitioning the recovered database into
//!    per-shard bootstrap logs and recovering *those* reproduces the
//!    same state (recover ∘ recover is a fixpoint);
//! 4. rebuilds every **named index** coherently against the recovered
//!    heap, per shard.
//!
//! Cut combinations are restricted to *reachable* crash states. The
//! commit pipeline appends `CrossCommit{xid}` only after every
//! participant's `CrossPrepare{xid}` has been synced, so no real crash
//! can retain the shortcut record while a participant's prepare is
//! lost. Arbitrary independent cuts can manufacture exactly that
//! impossible state; [`enforce_sync_order`] repairs a sampled cut by
//! dropping any `CrossCommit` whose participants' prepares are not all
//! durable (a strictly earlier, reachable crash on that shard).

use entangled_txn::{CheckpointPolicy, Engine, EngineConfig, Program, Scheduler, SchedulerConfig};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, OnceLock};
use youtopia_storage::{shard_of_table, RowId, Value};
use youtopia_wal::{recover_sharded, LogRecord, Lsn};

const SHARDS: usize = 4;

fn flight_pair(me: &str, other: &str) -> Program {
    // Reads Flights (one shard), inserts Reserve (another): an entangled
    // group whose members each straddle two shards.
    Program::parse(&format!(
        "BEGIN WITH TIMEOUT 10 SECONDS; \
         SELECT '{me}', fno AS @fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
         AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
         INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
    ))
    .expect("valid pair program")
}

fn cross_classical(i: usize) -> Program {
    Program::parse(&format!(
        "BEGIN; INSERT INTO Reserve (uid, fid) VALUES ('solo{i}', {}); \
         UPDATE Flights SET fno = fno WHERE dest = 'LA'; COMMIT;",
        100 + i
    ))
    .expect("valid classical program")
}

fn local_reserve(i: usize) -> Program {
    Program::parse(&format!(
        "BEGIN; INSERT INTO Reserve (uid, fid) VALUES ('r{i}', {i}); COMMIT;"
    ))
    .expect("valid local program")
}

fn local_hotel(i: usize) -> Program {
    Program::parse(&format!(
        "BEGIN; INSERT INTO Hotels (hid, city) VALUES ({i}, 'LA'); COMMIT;"
    ))
    .expect("valid local program")
}

/// Drive a mixed shard-local/cross-shard workload on a 4-shard engine
/// and return each shard's re-encoded segment bytes. Built once: the
/// matrix varies the cuts, not the workload.
fn shard_segments() -> &'static Vec<Vec<u8>> {
    static SEGMENTS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    SEGMENTS.get_or_init(|| {
        let engine = Arc::new(Engine::new(EngineConfig {
            record_history: false,
            shards: SHARDS,
            ..EngineConfig::default()
        }));
        engine
            .setup(
                "CREATE TABLE Flights (fno INT, dest TEXT);\
                 CREATE TABLE Reserve (uid TEXT, fid INT);\
                 CREATE TABLE Hotels (hid INT, city TEXT);\
                 CREATE INDEX reserve_uid ON Reserve (uid);\
                 CREATE INDEX hotels_city ON Hotels (city);\
                 INSERT INTO Flights VALUES (122, 'LA');\
                 INSERT INTO Flights VALUES (123, 'LA');",
            )
            .expect("setup");
        let mut sched = Scheduler::new(
            engine.clone(),
            SchedulerConfig {
                connections: 4,
                checkpoint: CheckpointPolicy::DISABLED,
                ..SchedulerConfig::default()
            },
        );
        for wave in 0..2 {
            for i in 0..2 {
                let a = format!("a{wave}_{i}");
                let b = format!("b{wave}_{i}");
                sched.submit(flight_pair(&a, &b));
                sched.submit(flight_pair(&b, &a));
                sched.submit(local_reserve(wave * 10 + i));
                sched.submit(local_hotel(wave * 10 + i));
            }
            sched.submit(cross_classical(wave));
            sched.run_once();
        }
        sched.drain();
        let logs = engine
            .wal
            .durable_records_sharded()
            .expect("clean segments");
        assert_eq!(logs.len(), SHARDS);
        let prepared_shards = logs
            .iter()
            .filter(|log| {
                log.iter()
                    .any(|(_, r)| matches!(r, LogRecord::CrossPrepare { .. }))
            })
            .count();
        assert!(
            prepared_shards >= 2,
            "workload must drive cross-shard commits ({prepared_shards} shards saw prepares)"
        );
        logs.iter()
            .map(|log| {
                let mut bytes = Vec::new();
                for (_, rec) in log {
                    bytes.extend_from_slice(&rec.encode());
                }
                bytes
            })
            .collect()
    })
}

/// Decode the clean prefix of one truncated segment.
fn durable_prefix(bytes: &[u8]) -> Vec<(Lsn, LogRecord)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match LogRecord::decode(bytes, off) {
            Ok((rec, next)) => {
                out.push((Lsn(off as u64), rec));
                off = next;
            }
            Err(_) => break,
        }
    }
    out
}

/// Repair a sampled cut combination into a reachable crash state: drop
/// every `CrossCommit{xid}` (and the records after it) on shards where
/// some participant named by `xid`'s prepare is not durable. Loops to a
/// fixpoint because dropping a tail can also drop a `CrossPrepare`
/// another shard's shortcut depended on.
fn enforce_sync_order(prefixes: &mut [Vec<(Lsn, LogRecord)>]) {
    loop {
        let mut prepared: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        let mut required: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
        for (s, log) in prefixes.iter().enumerate() {
            for (_, rec) in log {
                if let LogRecord::CrossPrepare { xid, shards, .. } = rec {
                    prepared.entry(*xid).or_default().insert(s as u64);
                    required
                        .entry(*xid)
                        .or_default()
                        .extend(shards.iter().copied());
                }
            }
        }
        let all_prepared = |xid: &u64| {
            required.get(xid).is_some_and(|req| {
                req.iter()
                    .all(|s| prepared.get(xid).is_some_and(|p| p.contains(s)))
            })
        };
        let mut changed = false;
        for log in prefixes.iter_mut() {
            if let Some(i) = log.iter().position(
                |(_, r)| matches!(r, LogRecord::CrossCommit { xid } if !all_prepared(xid)),
            ) {
                log.truncate(i);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

/// Every named index of a recovered database equals an oracle rebuilt
/// from the recovered heap.
fn assert_recovered_indexes_match_heap(db: &youtopia_storage::Database, context: &str) {
    for name in db.table_names() {
        let t = db.table(&name).expect("listed table");
        for idx in t.named_indexes().iter() {
            let mut oracle: BTreeMap<Value, Vec<RowId>> = BTreeMap::new();
            for (id, row) in t.scan() {
                oracle
                    .entry(row[idx.column()].clone())
                    .or_default()
                    .push(id);
            }
            let mut oracle: Vec<(Value, Vec<RowId>)> = oracle.into_iter().collect();
            for (_, ids) in &mut oracle {
                ids.sort_unstable();
            }
            assert_eq!(
                idx.entries(),
                oracle,
                "{context}: recovered index {} on {}.{} diverged from the heap",
                idx.name(),
                name,
                idx.column_name()
            );
        }
    }
}

/// Re-partition a recovered database into per-shard bootstrap logs
/// (DDL + index defs + surviving rows, committed by tx 0), routed by
/// the same table-partitioning rule the engine uses.
fn sharded_checkpoint_logs(db: &youtopia_storage::Database) -> Vec<Vec<(Lsn, LogRecord)>> {
    let mut logs: Vec<Vec<LogRecord>> = vec![Vec::new(); SHARDS];
    for name in db.table_names() {
        let t = db.table(&name).expect("listed table");
        let recs = &mut logs[shard_of_table(&name, SHARDS)];
        recs.push(LogRecord::CreateTable {
            name: name.clone(),
            schema: t.schema().clone(),
        });
        for idx in t.named_indexes().iter() {
            recs.push(LogRecord::CreateIndex {
                table: name.clone(),
                name: idx.name().to_string(),
                columns: idx.column_names().to_vec(),
                kind: idx.kind(),
            });
        }
        for (id, row) in t.scan() {
            recs.push(LogRecord::Insert {
                tx: 0,
                table: name.clone(),
                row: id.0,
                values: row.clone(),
            });
        }
    }
    logs.into_iter()
        .map(|mut recs| {
            recs.push(LogRecord::Commit { tx: 0, ts: 0 });
            recs.into_iter()
                .enumerate()
                .map(|(i, r)| (Lsn(i as u64), r))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn independent_shard_cuts_are_atomic_widow_free_and_idempotent(
        fracs in prop::collection::vec(0u32..=1000, SHARDS..SHARDS + 1),
    ) {
        let segments = shard_segments();
        let mut prefixes: Vec<Vec<(Lsn, LogRecord)>> = segments
            .iter()
            .zip(&fracs)
            .map(|(bytes, f)| {
                let cut = (bytes.len() as u64 * *f as u64 / 1000) as usize;
                durable_prefix(&bytes[..cut])
            })
            .collect();
        enforce_sync_order(&mut prefixes);

        let out = recover_sharded(&prefixes).unwrap();
        let winners: BTreeSet<u64> = out
            .shards
            .iter()
            .flat_map(|o| o.winners.iter().copied())
            .collect();
        let losers: BTreeSet<u64> = out
            .shards
            .iter()
            .flat_map(|o| o.losers.iter().copied())
            .collect();

        // Cross-shard atomicity: every unit named by a durable prepare is
        // all-in or all-out of the union winner set, no matter which
        // participant segments were torn.
        for log in &prefixes {
            for (_, rec) in log {
                if let LogRecord::CrossPrepare { xid, txs, .. } = rec {
                    let won = txs.iter().filter(|t| winners.contains(t)).count();
                    prop_assert!(
                        won == 0 || won == txs.len(),
                        "cuts {fracs:?}: unit {xid} half-committed ({won}/{} won)",
                        txs.len()
                    );
                    // The global verdict and the winner set agree.
                    let resolved = out.resolution.committed_xids.contains(xid);
                    prop_assert_eq!(
                        won == txs.len(), resolved,
                        "cuts {:?}: unit {} verdict mismatch", &fracs, xid
                    );
                }
            }
        }

        // Widow-freedom: every entanglement group on any segment is
        // all-in or all-out. A transaction that wins on one shard must
        // not lose on another.
        for log in &prefixes {
            for (_, rec) in log {
                if let LogRecord::EntangleGroup { txs, .. } = rec {
                    let won = txs.iter().filter(|t| winners.contains(t)).count();
                    prop_assert!(
                        won == 0 || won == txs.len(),
                        "cuts {fracs:?}: durable widow in group {txs:?} ({won}/{} won)",
                        txs.len()
                    );
                }
            }
        }
        // Tx 0 is exempt: setup commits the bootstrap image on each
        // shard independently (no cross-shard unit), so a cut below one
        // shard's setup commit loses tx 0 there while it wins elsewhere
        // — each shard just restarts with less of the seed data.
        for w in winners.iter().filter(|w| **w != 0) {
            prop_assert!(!losers.contains(w), "cuts {fracs:?}: tx {w} both wins and loses");
        }

        // Recovered named indexes are coherent with the recovered heap
        // on every shard partition (the merged db preserves them).
        assert_recovered_indexes_match_heap(&out.db, &format!("cuts {fracs:?}"));

        // recover ∘ recover is a fixpoint over the sharded pipeline too:
        // re-partition the merged state into per-shard bootstrap logs and
        // recover those.
        let again = recover_sharded(&sharded_checkpoint_logs(&out.db)).unwrap();
        prop_assert_eq!(
            again.db.canonical(),
            out.db.canonical(),
            "cuts {:?}: recover-of-recovered state diverged", &fracs
        );
        prop_assert!(again.resolution.aborted_xids.is_empty());
        assert_recovered_indexes_match_heap(&again.db, &format!("cuts {fracs:?} (re-recovered)"));
    }
}

/// Untruncated segments recover the whole workload — the sanity anchor:
/// every pair booking, every shard-local insert, every cross-shard
/// classical survives, and nothing is in doubt.
#[test]
fn full_segments_recover_every_commit() {
    let prefixes: Vec<Vec<(Lsn, LogRecord)>> =
        shard_segments().iter().map(|b| durable_prefix(b)).collect();
    let out = recover_sharded(&prefixes).unwrap();
    assert!(
        out.resolution.aborted_xids.is_empty(),
        "nothing in doubt at the durable frontier"
    );
    assert!(
        !out.resolution.committed_xids.is_empty(),
        "workload drove cross-shard units"
    );
    let reserve = out.db.table("Reserve").expect("Reserve recovered");
    // 2 waves × (2 pairs × 2 members + 2 locals) + 2 cross classicals.
    assert_eq!(reserve.len(), 14);
    let hotels = out.db.table("Hotels").expect("Hotels recovered");
    assert_eq!(hotels.len(), 4);
    // Segments hold only their own partition's redo.
    for (s, log) in prefixes.iter().enumerate() {
        for (_, rec) in log {
            if let LogRecord::Insert { table, .. } = rec {
                assert_eq!(
                    shard_of_table(table, SHARDS),
                    s,
                    "redo for {table} landed on foreign shard {s}"
                );
            }
        }
    }
    assert_recovered_indexes_match_heap(&out.db, "full segments");
}

/// ISSUE-10: a deadlock victim convicted **mid-abort**. The engine's
/// no-steal pipeline writes redo only at commit, so the victim's durable
/// footprint is a torn commit attempt: data records on the shards it
/// touched, no `Commit` anywhere, and — because the conviction's
/// rollback was itself interrupted by the crash — an `Abort` record
/// durable on only a *subset* of those shards. Recovery must resolve
/// the victim as a loser on every shard no matter which abort records
/// survived, leave state identical to the no-victim baseline, and keep
/// recover ∘ recover a fixpoint with the victim's debris in the log.
#[test]
fn victim_mid_abort_is_a_loser_everywhere_and_keeps_the_fixpoint() {
    let victim = 9000u64;
    let rs = shard_of_table("Reserve", SHARDS);
    let hs = shard_of_table("Hotels", SHARDS);
    assert_ne!(rs, hs, "victim must straddle shards");
    let baseline = recover_sharded(
        &shard_segments()
            .iter()
            .map(|b| durable_prefix(b))
            .collect::<Vec<_>>(),
    )
    .unwrap();

    // Every reachable mid-abort cut: the abort reached neither shard,
    // one of the two, or both before the crash.
    for aborted_on in [vec![], vec![rs], vec![hs], vec![rs, hs]] {
        let mut prefixes: Vec<Vec<(Lsn, LogRecord)>> =
            shard_segments().iter().map(|b| durable_prefix(b)).collect();
        for (shard, table, values) in [
            (
                rs,
                "Reserve",
                vec![Value::Str("victim".into()), Value::Int(666)],
            ),
            (
                hs,
                "Hotels",
                vec![Value::Int(666), Value::Str("NOWHERE".into())],
            ),
        ] {
            let log = &mut prefixes[shard];
            let base = log.last().map_or(0, |(lsn, _)| lsn.0 + 1000);
            log.push((Lsn(base + 1), LogRecord::Begin { tx: victim }));
            log.push((
                Lsn(base + 2),
                LogRecord::Insert {
                    tx: victim,
                    table: table.to_string(),
                    row: 990_000,
                    values,
                },
            ));
            if aborted_on.contains(&shard) {
                log.push((Lsn(base + 3), LogRecord::Abort { tx: victim }));
            }
        }

        let out = recover_sharded(&prefixes).unwrap();
        let ctx = format!("abort durable on shards {aborted_on:?}");
        for s in [rs, hs] {
            assert!(
                out.shards[s].losers.contains(&victim),
                "{ctx}: victim won on shard {s}"
            );
            assert!(
                !out.shards[s].winners.contains(&victim),
                "{ctx}: victim in winner set on shard {s}"
            );
        }
        assert_eq!(
            out.db.canonical(),
            baseline.db.canonical(),
            "{ctx}: victim debris leaked into recovered state"
        );
        assert_recovered_indexes_match_heap(&out.db, &ctx);

        // recover ∘ recover stays a fixpoint with the victim in the log.
        let again = recover_sharded(&sharded_checkpoint_logs(&out.db)).unwrap();
        assert_eq!(
            again.db.canonical(),
            out.db.canonical(),
            "{ctx}: recover-of-recovered state diverged"
        );
        assert!(again.resolution.aborted_xids.is_empty(), "{ctx}");
    }
}
