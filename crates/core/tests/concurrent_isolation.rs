//! Concurrent-isolation stress test for the per-table concurrent catalog:
//! randomized entangled + classical programs over **overlapping** tables at
//! `connections = 8`, checked three ways —
//!
//! 1. the recorded schedule validates and `is_entangled_isolated` holds
//!    (isolation is carried by 2PL, not by any storage latch);
//! 2. every transaction commits (transient lock-timeout aborts retry to
//!    completion);
//! 3. the final database equals a `connections = 1` oracle run of the same
//!    programs (all writes in the mix are commutative or unique-row, and
//!    entangled answers are deterministic, so any correctly isolated
//!    interleaving must converge to the same canonical state).

use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig, Stats, TxnStatus};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use youtopia_isolation::{check_snapshot_serializable, is_entangled_isolated};
use youtopia_storage::{Row, Value};

const SETUP: &str = "CREATE TABLE Flights (fno INT, dest TEXT);\
     CREATE TABLE Reserve (uid TEXT, fid INT);\
     CREATE TABLE Counters (k INT, v INT);\
     CREATE TABLE Audit (uid INT, note INT);\
     INSERT INTO Flights VALUES (122, 'LA');\
     INSERT INTO Flights VALUES (123, 'LA');\
     INSERT INTO Flights VALUES (235, 'Paris');\
     INSERT INTO Counters VALUES (0, 0);\
     INSERT INTO Counters VALUES (1, 0);\
     INSERT INTO Counters VALUES (2, 0);\
     INSERT INTO Counters VALUES (3, 0);";

/// Named secondary indexes on every point-accessed column: with these
/// installed the mix's point SELECT/UPDATE statements switch from
/// table-S scans to the two-level index plans (table-IS/IX + key + row
/// locks), and every assertion in this file must still hold.
const INDEX_DDL: &str = "CREATE INDEX counters_k ON Counters (k);\
     CREATE INDEX audit_uid ON Audit (uid);\
     CREATE INDEX reserve_uid ON Reserve (uid) USING BTREE;";

fn engine(indexed: bool) -> Arc<Engine> {
    let e = Engine::new(EngineConfig {
        // Short lock timeout: contention churns into retries quickly
        // instead of stalling the whole run on the 250 ms default.
        lock_timeout: Duration::from_millis(25),
        ..EngineConfig::default()
    });
    e.setup(SETUP).unwrap();
    if indexed {
        e.setup(INDEX_DDL).unwrap();
    }
    Arc::new(e)
}

fn entangled_pair(i: usize) -> [Program; 2] {
    let q = |me: String, other: String| {
        Program::parse(&format!(
            "BEGIN; SELECT '{me}', fno AS @fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
        ))
        .unwrap()
    };
    [
        q(format!("a{i}"), format!("b{i}")),
        q(format!("b{i}"), format!("a{i}")),
    ]
}

/// A randomized batch of programs whose final database state is
/// schedule-independent: commutative increments on shared `Counters` rows,
/// unique-row inserts into `Audit`, reads of shared tables, and entangled
/// pairs booking on the static `Flights` table.
fn random_programs(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut i = 0usize;
    while out.len() < count {
        match rng.gen_range(0..4u32) {
            0 => {
                let k = rng.gen_range(0..4i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; UPDATE Counters SET v = v + 1 WHERE k = {k}; COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            1 => {
                let note = rng.gen_range(0..1000i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; INSERT INTO Audit (uid, note) VALUES ({i}, {note}); COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            2 => {
                let k = rng.gen_range(0..4i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; SELECT @v FROM Counters WHERE k = {k}; \
                         INSERT INTO Audit (uid, note) VALUES ({i}, -1); COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            _ => {
                if out.len() + 2 <= count {
                    out.extend(entangled_pair(i));
                } else {
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

fn run(
    programs: &[Program],
    connections: usize,
    indexed: bool,
) -> (Stats, BTreeMap<String, Vec<Row>>, Arc<Engine>) {
    let engine = engine(indexed);
    let mut sched = Scheduler::new(
        Arc::clone(&engine),
        SchedulerConfig {
            connections,
            max_attempts: 1000,
            ..SchedulerConfig::default()
        },
    );
    for p in programs {
        sched.submit(p.clone());
    }
    let stats = sched.drain();
    for r in sched.take_results() {
        assert_eq!(
            r.status,
            TxnStatus::Committed,
            "client {:?} after {} attempts",
            r.client,
            r.attempts
        );
    }
    let canonical = engine.with_db(|db| db.canonical());
    (stats, canonical, engine)
}

#[test]
fn concurrent_run_is_isolated_and_matches_serial_oracle() {
    // Both access-path regimes: full scans under table-S, and — with the
    // named indexes installed — the two-level point plans. Isolation and
    // oracle equality are plan-independent.
    for indexed in [false, true] {
        for seed in [7u64, 42] {
            let programs = random_programs(seed, 60);

            let (stats8, db8, engine8) = run(&programs, 8, indexed);
            assert_eq!(
                stats8.committed,
                programs.len(),
                "seed {seed} indexed {indexed}: {stats8:?}"
            );
            assert_eq!(stats8.failed, 0);

            // The recorded history of the concurrent run must be a valid,
            // entangled-isolated schedule (Appendix C).
            let sched = engine8.recorder.schedule();
            sched.validate().unwrap();
            assert!(
                is_entangled_isolated(&sched),
                "seed {seed} indexed {indexed}: concurrent history lost isolation"
            );

            // And the final database must equal the serial oracle's.
            let (stats1, db1, _) = run(&programs, 1, indexed);
            assert_eq!(stats1.committed, programs.len());
            assert_eq!(
                db8, db1,
                "seed {seed} indexed {indexed}: connections=8 diverged from the serial oracle"
            );
        }
    }
}

/// The snapshot-vs-oracle proptest (ISSUE-5): read-only snapshot
/// transactions race entangled + classical writers at `connections = 8`.
///
/// Writers keep a cross-row invariant — one transaction increments
/// counters 0 AND 1 together — so in *every* serial order the two
/// counters are equal at every commit boundary. Each snapshot reader
/// SELECTs both counters in one transaction; its results therefore match
/// some serial oracle order **iff** it saw `a == b` with `0 <= a <= N`.
/// A snapshot that observed a half-committed writer, dirty working
/// state, or a non-prefix cut would break the equality.
fn snapshot_mix(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut i = 0usize;
    while out.len() < count {
        match rng.gen_range(0..5u32) {
            // Paired increment: the invariant writer (v0 == v1 at every
            // commit boundary).
            0 => out.push(
                Program::parse(
                    "BEGIN; UPDATE Counters SET v = v + 1 WHERE k = 0; \
                     UPDATE Counters SET v = v + 1 WHERE k = 1; COMMIT;",
                )
                .unwrap(),
            ),
            // Unrelated commutative churn.
            1 => {
                let k = rng.gen_range(2..4i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; UPDATE Counters SET v = v + 1 WHERE k = {k}; COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            // Unique-row audit inserts.
            2 => out.push(
                Program::parse(&format!(
                    "BEGIN; INSERT INTO Audit (uid, note) VALUES ({i}, 1); COMMIT;"
                ))
                .unwrap(),
            ),
            // The snapshot reader under test: both invariant counters in
            // one read-only transaction.
            3 => out.push(
                Program::parse(
                    "BEGIN; SELECT v AS @a FROM Counters WHERE k = 0; \
                     SELECT v AS @b FROM Counters WHERE k = 1; COMMIT;",
                )
                .unwrap(),
            ),
            // Entangled pairs keep the §3.3.3 machinery in the mix.
            _ => {
                if out.len() + 2 <= count {
                    out.extend(entangled_pair(i));
                } else {
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// The invariant writer of [`snapshot_mix`]: exactly two UPDATE
/// statements (incrementing counters 0 and 1 together).
fn is_paired_writer(p: &Program) -> bool {
    p.statements.len() == 2
        && p.statements
            .iter()
            .all(|s| matches!(s, youtopia_sql::Statement::Update { .. }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn snapshot_readers_match_a_serial_oracle_order(seed in 0u64..10_000) {
        let programs = snapshot_mix(seed, 56);
        let paired_writers = programs.iter().filter(|p| is_paired_writer(p)).count();

        // Indexes on: snapshot readers consult the rebuilt index of the
        // materialized snapshot, the riskier of the two plans.
        let (stats, _, engine) = run(&programs, 8, true);
        prop_assert_eq!(stats.committed, programs.len());

        // 1. Final state matches every serial order of the commutative
        //    writers (readers change nothing).
        let canonical = engine.with_db(|db| db.canonical());
        let final_v0 = canonical["counters"]
            .iter()
            .find(|r| r[0] == Value::Int(0))
            .map(|r| r[1].clone())
            .unwrap();
        prop_assert_eq!(final_v0, Value::Int(paired_writers as i64));

        // 2. The recorded history still validates, is entangled-isolated,
        //    and passes the snapshot-cut oracle extension.
        let s = engine.recorder.schedule();
        s.validate().unwrap();
        prop_assert!(is_entangled_isolated(&s), "seed {seed}");
        if let Err(v) = check_snapshot_serializable(&s, &youtopia_isolation::Db::new()) {
            return Err(TestCaseError::fail(format!(
                "seed {seed}: snapshot history not oracle-serializable: {v}"
            )));
        }
    }
}

#[test]
fn snapshot_reader_results_respect_the_writer_invariant() {
    // The value-level half of the proptest, with results inspected
    // per-reader: every committed snapshot reader must have seen the two
    // invariant counters EQUAL — the defining property of reading a
    // consistent committed prefix (any interleaved or dirty observation
    // breaks it) — and the serial oracle run must agree on the final
    // state.
    for seed in [3u64, 19, 77] {
        let programs = snapshot_mix(seed, 56);
        let (stats8, db8, engine8) = run(&programs, 8, true);
        assert_eq!(stats8.committed, programs.len(), "seed {seed}");
        let mut readers_checked = 0usize;
        let paired_writers = programs.iter().filter(|p| is_paired_writer(p)).count() as i64;
        // `run` asserts every client committed; re-run to inspect envs.
        let engine = {
            let e = Engine::new(EngineConfig {
                lock_timeout: Duration::from_millis(25),
                ..EngineConfig::default()
            });
            e.setup(SETUP).unwrap();
            e.setup(INDEX_DDL).unwrap();
            Arc::new(e)
        };
        let mut sched = Scheduler::new(
            Arc::clone(&engine),
            SchedulerConfig {
                connections: 8,
                max_attempts: 1000,
                ..SchedulerConfig::default()
            },
        );
        for p in &programs {
            sched.submit(p.clone());
        }
        sched.drain();
        for r in sched.take_results() {
            assert_eq!(r.status, TxnStatus::Committed, "seed {seed}");
            if let (Some(a), Some(b)) = (r.env.get("a"), r.env.get("b")) {
                assert_eq!(a, b, "seed {seed}: snapshot saw a torn writer");
                let v = a.as_int().unwrap();
                assert!(
                    (0..=paired_writers).contains(&v),
                    "seed {seed}: value {v} outside any serial prefix"
                );
                readers_checked += 1;
            }
        }
        assert!(readers_checked > 0, "seed {seed}: mix produced no readers");
        // Deterministic final state: equal to the serial oracle run.
        let (stats1, db1, _) = run(&programs, 1, true);
        assert_eq!(stats1.committed, programs.len());
        assert_eq!(db8, db1, "seed {seed}: diverged from the serial oracle");
        drop(engine8);
    }
}

#[test]
fn repeated_concurrent_runs_converge() {
    // Same batch, several concurrent executions: every run must land on
    // the identical canonical state (schedule independence in practice).
    let programs = random_programs(99, 40);
    let (_, reference, _) = run(&programs, 8, true);
    for _ in 0..3 {
        let (_, db, _) = run(&programs, 8, true);
        assert_eq!(db, reference);
    }
}
