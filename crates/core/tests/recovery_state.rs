//! Regression tests for recovery's session-state reset (ISSUE 4):
//! `crash_and_recover` must model a **fresh process**, not just reload the
//! catalog. Before the fix it kept `next_tx` at its pre-crash counter
//! (a true fresh restart would re-mint ids already in the durable log), and
//! left the lock manager, entanglement groups, and recorder holding state
//! owned by transactions that no longer exist.

use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig, StepOutcome, Txn};
use std::collections::BTreeSet;
use std::sync::Arc;
use youtopia_lock::TxId;
use youtopia_wal::LogRecord;

fn engine() -> Arc<Engine> {
    let e = Engine::new(EngineConfig::default());
    e.setup(
        "CREATE TABLE Flights (fno INT, dest TEXT);\
         CREATE TABLE Reserve (uid TEXT, fid INT);\
         INSERT INTO Flights VALUES (122, 'LA');\
         INSERT INTO Flights VALUES (123, 'LA');",
    )
    .expect("setup");
    Arc::new(e)
}

fn pair(me: &str, other: &str) -> Program {
    Program::parse(&format!(
        "BEGIN WITH TIMEOUT 10 SECONDS; \
         SELECT '{me}', fno AS @fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
         AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
         INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
    ))
    .expect("valid program")
}

/// Transaction ids named by `Begin`/`Commit` records in the durable log.
fn durable_tx_ids(e: &Engine) -> BTreeSet<u64> {
    e.wal
        .durable_records()
        .expect("clean log")
        .iter()
        .filter_map(|(_, r)| match r {
            LogRecord::Begin { tx } | LogRecord::Commit { tx, .. } => Some(*tx),
            _ => None,
        })
        .filter(|&tx| tx != 0) // bootstrap
        .collect()
}

#[test]
fn post_recovery_commits_collide_with_nothing_and_leak_nothing() {
    let e = engine();

    // A first generation of committed work.
    let mut sched = Scheduler::new(e.clone(), SchedulerConfig::default());
    sched.submit(pair("Mickey", "Minnie"));
    sched.submit(pair("Minnie", "Mickey"));
    assert_eq!(sched.run_once().committed, 2);

    // An in-flight transaction holds 2PL locks when the power goes out.
    let prog =
        Program::parse("BEGIN; INSERT INTO Reserve (uid, fid) VALUES ('solo', 122); COMMIT;")
            .expect("valid program");
    let mut inflight = Txn::new(entangled_txn::ClientId(99), e.alloc_tx(), prog);
    e.begin(&mut inflight);
    assert_eq!(e.run_until_block(&mut inflight), StepOutcome::Ready);
    assert!(!e.locks.held(TxId(inflight.tx)).is_empty());

    let before_ids = durable_tx_ids(&e);
    let max_durable = *before_ids.iter().max().expect("committed work");

    // CRASH. Recovery must behave like a fresh engine start.
    e.crash_and_recover().expect("clean log");

    // No leaked locks, no stale groups, no stale history.
    assert!(
        e.locks.quiescent(),
        "pre-crash locks leaked through recovery"
    );
    assert!(e.locks.held(TxId(inflight.tx)).is_empty());
    assert!(!e
        .groups
        .is_grouped(before_ids.iter().next().copied().unwrap()));
    assert!(e.recorder.schedule().ops.is_empty());

    // The allocator restarts just past the durable maximum…
    let probe = e.alloc_tx();
    assert_eq!(probe, max_durable + 1, "next_tx must clear the durable log");

    // …and a second generation commits with ids disjoint from the first.
    let mut sched2 = Scheduler::new(e.clone(), SchedulerConfig::default());
    sched2.submit(pair("Donald", "Daisy"));
    sched2.submit(pair("Daisy", "Donald"));
    assert_eq!(sched2.run_once().committed, 2);
    let after_ids: BTreeSet<u64> = durable_tx_ids(&e)
        .difference(&before_ids)
        .copied()
        .collect();
    assert!(!after_ids.is_empty());
    for id in &after_ids {
        assert!(
            !before_ids.contains(id),
            "tx id {id} re-used an id already in the durable log"
        );
    }

    // A second crash still recovers all four bookings cleanly.
    let widowed = e.crash_and_recover().expect("clean log");
    assert!(widowed.is_empty());
    e.with_db(|db| {
        assert_eq!(db.table("Reserve").expect("recovered").len(), 4);
    });
    assert!(e.locks.quiescent());
}

#[test]
fn recovery_of_empty_traffic_restarts_allocator_at_one_past_bootstrap() {
    let e = engine();
    e.alloc_tx();
    e.alloc_tx();
    e.crash_and_recover().expect("clean log");
    // Only bootstrap tx 0 is durable: the allocator restarts at 1.
    assert_eq!(e.alloc_tx(), 1);
}
