//! The `LockGranularity::Table` fallback (the Ab4 ablation) must not
//! rot: classical transactions still commit, scan plans still return
//! the same answers the row-granularity point plans do, recovery still
//! rebuilds indexes from the heap — and the entangled-pair livelock
//! stays a *documented negative result*, not an accident.
//!
//! Every engine here pins its granularity explicitly, so the suite is
//! green under any `YOUTOPIA_LOCK_GRANULARITY` setting; CI additionally
//! runs it with the env var set to `table` to exercise the
//! process-wide override on default-config engines (see the last test).

use entangled_txn::{Engine, EngineConfig, LockGranularity, Program, Scheduler, SchedulerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use youtopia_storage::{RowId, Value};

const SETUP: &str = "CREATE TABLE Flights (fno INT, dest TEXT);\
     CREATE TABLE Reserve (uid TEXT, fid INT);\
     CREATE TABLE Counters (k INT, v INT);\
     CREATE TABLE Audit (uid INT, note INT);\
     CREATE INDEX counters_k ON Counters (k);\
     CREATE INDEX audit_uid ON Audit (uid) USING BTREE;\
     INSERT INTO Flights VALUES (122, 'LA');\
     INSERT INTO Counters VALUES (0, 0);\
     INSERT INTO Counters VALUES (1, 0);\
     INSERT INTO Counters VALUES (2, 0);\
     INSERT INTO Counters VALUES (3, 0);";

fn engine(granularity: LockGranularity) -> Arc<Engine> {
    let e = Engine::new(EngineConfig {
        granularity,
        lock_timeout: Duration::from_millis(25),
        ..EngineConfig::default()
    });
    e.setup(SETUP).unwrap();
    Arc::new(e)
}

/// Classical-only mix: increments, inserts, deletes, and in-transaction
/// point reads — everything the fallback must keep supporting. Returns
/// the programs plus the number of increment transactions (the serial
/// oracle for the counter sum).
fn classical_mix(seed: u64, count: usize) -> (Vec<Program>, i64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut increments = 0i64;
    for i in 0..count {
        match rng.gen_range(0..4u32) {
            0 => {
                increments += 1;
                let k = rng.gen_range(0..4i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; UPDATE Counters SET v = v + 1 WHERE k = {k}; COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            1 => out.push(
                Program::parse(&format!(
                    "BEGIN; INSERT INTO Audit (uid, note) VALUES ({i}, {}); COMMIT;",
                    rng.gen_range(0..1000i64)
                ))
                .unwrap(),
            ),
            2 => {
                let uid = rng.gen_range(0..(i + 1) as i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; DELETE FROM Audit WHERE uid = {uid}; COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            _ => {
                let k = rng.gen_range(0..4i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; SELECT v AS @v FROM Counters WHERE k = {k}; \
                         INSERT INTO Audit (uid, note) VALUES ({i}, -1); COMMIT;"
                    ))
                    .unwrap(),
                );
            }
        }
    }
    (out, increments)
}

/// Every named index equals a rebuilt-from-heap oracle (maintenance is
/// granularity-independent; only the *locking plan* changes).
fn assert_indexes_match_heap(engine: &Engine, context: &str) {
    engine.with_db(|db| {
        let mut checked = 0usize;
        for name in db.table_names() {
            let t = db.table(&name).expect("listed table");
            for idx in t.named_indexes().iter() {
                let mut oracle: BTreeMap<Value, Vec<RowId>> = BTreeMap::new();
                for (id, row) in t.scan() {
                    oracle
                        .entry(row[idx.column()].clone())
                        .or_default()
                        .push(id);
                }
                let mut oracle: Vec<(Value, Vec<RowId>)> = oracle.into_iter().collect();
                for (_, ids) in &mut oracle {
                    ids.sort_unstable();
                }
                assert_eq!(idx.entries(), oracle, "{context}: {name}.{}", idx.name());
                checked += 1;
            }
        }
        assert_eq!(checked, 2, "{context}: both named indexes checked");
    });
}

#[test]
fn classical_traffic_commits_and_stays_coherent_at_table_granularity() {
    for seed in [3u64, 17] {
        let engine = engine(LockGranularity::Table);
        let mut sched = Scheduler::new(
            Arc::clone(&engine),
            SchedulerConfig {
                connections: 8,
                max_attempts: 1000,
                ..SchedulerConfig::default()
            },
        );
        let (programs, increments) = classical_mix(seed, 40);
        for p in &programs {
            sched.submit(p.clone());
        }
        let stats = sched.drain();
        assert_eq!(stats.committed, programs.len(), "seed {seed}: {stats:?}");
        // Table-X writers fully serialize, so the counter sum is exact.
        engine.with_db(|db| {
            let sum: i64 = db
                .table("Counters")
                .unwrap()
                .scan()
                .map(|(_, row)| match row[1] {
                    Value::Int(v) => v,
                    ref other => panic!("non-int counter {other:?}"),
                })
                .sum();
            assert_eq!(sum, increments, "seed {seed}");
        });
        assert_indexes_match_heap(&engine, &format!("seed {seed}"));
    }
}

#[test]
fn scan_fallback_answers_match_row_granularity_point_plans() {
    // Identical deterministic traffic through both granularities at one
    // connection: the locking plans differ (table-S/X vs intent + key +
    // row locks — probing is an evaluator concern and happens in both),
    // final state and SELECT answers must not.
    let run = |granularity: LockGranularity| {
        let engine = engine(granularity);
        let mut sched = Scheduler::new(Arc::clone(&engine), SchedulerConfig::default());
        let (programs, _) = classical_mix(11, 32);
        for p in &programs {
            sched.submit(p.clone());
        }
        let stats = sched.drain();
        assert_eq!(stats.committed, programs.len(), "{granularity:?}");
        let mut answers: Vec<Option<Value>> = Vec::new();
        for r in sched.take_results() {
            answers.push(r.env.get("v").cloned());
        }
        let heap = engine.with_db(|db| {
            let mut rows: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
            for name in db.table_names() {
                let mut t: Vec<Vec<Value>> = db
                    .table(&name)
                    .unwrap()
                    .scan()
                    .map(|(_, r)| r.clone())
                    .collect();
                t.sort();
                rows.push((name, t));
            }
            rows
        });
        (answers, heap)
    };
    let (scan_answers, scan_heap) = run(LockGranularity::Table);
    let (point_answers, point_heap) = run(LockGranularity::Row);
    assert_eq!(scan_answers, point_answers);
    assert_eq!(scan_heap, point_heap);
}

#[test]
fn range_plans_fall_back_to_table_locks_and_match_answers() {
    // Range traffic — BETWEEN windows in read-write transactions, window
    // UPDATEs, inserts landing inside windows — through both
    // granularities. Under `Table` the planner's range probes and the
    // next-key protocol are bypassed entirely (plain table-S/X); the
    // committed answers and final heap must match `Row` exactly.
    let mix = |seed: u64, count: usize| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let lo = rng.gen_range(0..40i64);
            let hi = lo + rng.gen_range(1..5i64);
            match rng.gen_range(0..3u32) {
                0 => out.push(
                    Program::parse(&format!(
                        "BEGIN; SELECT note AS @v FROM Audit \
                          WHERE uid BETWEEN {lo} AND {hi}; \
                         INSERT INTO Audit (uid, note) VALUES ({}, {i}); COMMIT;",
                        rng.gen_range(0..40i64)
                    ))
                    .unwrap(),
                ),
                1 => out.push(
                    Program::parse(&format!(
                        "BEGIN; UPDATE Audit SET note = note + 1 \
                          WHERE uid >= {lo} AND uid <= {hi}; COMMIT;"
                    ))
                    .unwrap(),
                ),
                _ => out.push(
                    Program::parse(&format!(
                        "BEGIN; INSERT INTO Audit (uid, note) VALUES ({}, 0); COMMIT;",
                        rng.gen_range(0..40i64)
                    ))
                    .unwrap(),
                ),
            }
        }
        out
    };
    let run = |granularity: LockGranularity| {
        let engine = engine(granularity);
        engine
            .setup(
                &(0..20)
                    .map(|u| format!("INSERT INTO Audit VALUES ({}, 0);", u * 2))
                    .collect::<String>(),
            )
            .unwrap();
        let mut sched = Scheduler::new(Arc::clone(&engine), SchedulerConfig::default());
        for p in mix(23, 32) {
            sched.submit(p);
        }
        let stats = sched.drain();
        assert_eq!(stats.committed, 32, "{granularity:?}: {stats:?}");
        let answers: Vec<Option<Value>> = sched
            .take_results()
            .into_iter()
            .map(|r| r.env.get("v").cloned())
            .collect();
        let heap = engine.with_db(|db| {
            let mut rows: Vec<Vec<Value>> = db
                .table("Audit")
                .unwrap()
                .scan()
                .map(|(_, r)| r.clone())
                .collect();
            rows.sort();
            rows
        });
        (answers, heap, engine)
    };
    let (scan_answers, scan_heap, scan_engine) = run(LockGranularity::Table);
    let (range_answers, range_heap, range_engine) = run(LockGranularity::Row);
    assert_eq!(scan_answers, range_answers);
    assert_eq!(scan_heap, range_heap);
    // The fallback really did bypass the range *plans*: probing remains
    // an evaluator concern in both lanes, but only the Row lane adds the
    // planner's range probes on top — and its heap footprint shrinks from
    // O(table) write-scans to O(window) accordingly.
    assert!(
        range_engine.index_lookups() > scan_engine.index_lookups(),
        "Row lane must add range-plan probes: row={} table={}",
        range_engine.index_lookups(),
        scan_engine.index_lookups()
    );
    assert!(
        range_engine.rows_scanned() < scan_engine.rows_scanned(),
        "range plans must shrink the heap footprint: row={} table={}",
        range_engine.rows_scanned(),
        scan_engine.rows_scanned()
    );
}

#[test]
fn recovery_at_table_granularity_preserves_classical_commits() {
    let engine = engine(LockGranularity::Table);
    let mut sched = Scheduler::new(
        Arc::clone(&engine),
        SchedulerConfig {
            connections: 4,
            max_attempts: 1000,
            ..SchedulerConfig::default()
        },
    );
    let (programs, increments) = classical_mix(29, 24);
    for p in &programs {
        sched.submit(p.clone());
    }
    assert_eq!(sched.drain().committed, programs.len());

    let widowed = engine.crash_and_recover().expect("clean log");
    assert!(widowed.is_empty(), "classical traffic has no widows");
    engine.with_db(|db| {
        let sum: i64 = db
            .table("Counters")
            .unwrap()
            .scan()
            .map(|(_, row)| match row[1] {
                Value::Int(v) => v,
                ref other => panic!("non-int counter {other:?}"),
            })
            .sum();
        assert_eq!(sum, increments, "recovered counter state diverged");
    });
    // Index definitions survive the log and contents rebuild from the
    // recovered heap, granularity notwithstanding.
    assert_indexes_match_heap(&engine, "post-recovery");
}

#[test]
fn entangled_pairs_livelock_at_table_granularity_by_design() {
    // The Ab4 negative result, pinned as a test: both partners table-X
    // `Reserve`, hold to a group commit that needs the other, and fail
    // together. No commit, no partial booking, no leaked locks.
    let engine = Arc::new(Engine::new(EngineConfig {
        granularity: LockGranularity::Table,
        lock_timeout: Duration::from_millis(10),
        ..EngineConfig::default()
    }));
    engine.setup(SETUP).unwrap();
    let mut sched = Scheduler::new(
        Arc::clone(&engine),
        SchedulerConfig {
            connections: 2,
            max_attempts: 4,
            ..SchedulerConfig::default()
        },
    );
    let q = |me: &str, other: &str| {
        Program::parse(&format!(
            "BEGIN; SELECT '{me}', fno AS @fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
        ))
        .unwrap()
    };
    sched.submit(q("Mickey", "Minnie"));
    sched.submit(q("Minnie", "Mickey"));
    let stats = sched.drain();
    assert_eq!(stats.committed, 0, "the standoff must not resolve");
    engine.with_db(|db| {
        assert_eq!(db.table("Reserve").unwrap().len(), 0, "no partial booking");
    });
    assert!(engine.locks.quiescent(), "failed pairs must release locks");
}

#[test]
fn default_config_honors_the_granularity_env_var() {
    let expect = match std::env::var("YOUTOPIA_LOCK_GRANULARITY").as_deref() {
        Ok(g) if g.eq_ignore_ascii_case("table") => LockGranularity::Table,
        _ => LockGranularity::Row,
    };
    assert_eq!(EngineConfig::default().granularity, expect);
}
