//! Crash-matrix property test for the group-commit durability pipeline.
//!
//! A real multi-batch run (entangled pairs + classical transactions,
//! multiple connections, multiple scheduler runs) produces a WAL; the
//! matrix then truncates that log at **every byte boundary** — simulating
//! a crash at each possible instant, including *inside* a commit batch —
//! and asserts that recovery:
//!
//! 1. never produces a **durable widow**: for every `EntangleGroup` in the
//!    durable prefix, either all members win or none do;
//! 2. yields a consistent winners/losers partition;
//! 3. is **idempotent**: checkpointing the recovered database as a fresh
//!    bootstrap log and recovering *that* reproduces the same state
//!    (recover ∘ recover is a fixpoint);
//! 4. rebuilds every **named secondary index** coherently: at every cut
//!    (including recoveries based on a checkpoint image) each recovered
//!    index equals an oracle rebuilt from the recovered heap — index
//!    *definitions* survive truncation via the log (and the image's
//!    re-logged defs), contents are always derived from the heap.

use entangled_txn::{CheckpointPolicy, Engine, EngineConfig, Program, Scheduler, SchedulerConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use youtopia_storage::{IndexKind, RowId, Value};
use youtopia_wal::{recover, LogRecord, Lsn};

fn flight_pair(me: &str, other: &str) -> Program {
    Program::parse(&format!(
        "BEGIN WITH TIMEOUT 10 SECONDS; \
         SELECT '{me}', fno AS @fno INTO ANSWER R \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
         AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
         INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
    ))
    .expect("valid pair program")
}

fn classical(i: usize) -> Program {
    Program::parse(&format!(
        "BEGIN; INSERT INTO Reserve (uid, fid) VALUES ('solo{i}', {}); \
         UPDATE Flights SET fno = fno WHERE dest = 'LA'; COMMIT;",
        100 + i
    ))
    .expect("valid classical program")
}

/// Drive a multi-batch workload and return the re-encoded full log bytes
/// (encoding is deterministic, so concatenated frames equal the device
/// contents byte-for-byte).
fn workload_log(pairs: usize, classicals: usize, connections: usize) -> Vec<u8> {
    workload_log_configured(pairs, classicals, connections, CheckpointPolicy::DISABLED)
}

/// [`workload_log`] with a checkpoint cadence. Truncation is disabled so
/// the returned log keeps full history with checkpoint images inline —
/// which is exactly what lets the matrix cut *inside* an image and what
/// gives the full-replay oracle something to compare against.
fn workload_log_configured(
    pairs: usize,
    classicals: usize,
    connections: usize,
    checkpoint: CheckpointPolicy,
) -> Vec<u8> {
    // The byte-cut matrix models ONE log device: it concatenates the
    // record stream and truncates it at every byte, so it is pinned to a
    // single shard regardless of `YOUTOPIA_SHARDS`. The sharded variant
    // with independent per-segment cuts lives in `sharded_crash_matrix.rs`.
    let engine = Arc::new(Engine::new(EngineConfig {
        record_history: false,
        shards: 1,
        ..EngineConfig::default()
    }));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Reserve (uid TEXT, fid INT);\
             CREATE INDEX reserve_uid ON Reserve (uid);\
             CREATE INDEX flights_fno ON Flights (fno) USING BTREE;\
             INSERT INTO Flights VALUES (122, 'LA');\
             INSERT INTO Flights VALUES (123, 'LA');",
        )
        .expect("setup");
    let mut sched = Scheduler::new(
        engine.clone(),
        SchedulerConfig {
            connections,
            checkpoint,
            ..SchedulerConfig::default()
        },
    );
    // Interleave arrivals across several runs so commits land in several
    // batches (one settle wave per run, plus eager classical commits).
    for wave in 0..2 {
        for i in 0..pairs {
            let a = format!("a{wave}_{i}");
            let b = format!("b{wave}_{i}");
            sched.submit(flight_pair(&a, &b));
            sched.submit(flight_pair(&b, &a));
        }
        for i in 0..classicals {
            sched.submit(classical(wave * classicals + i));
        }
        sched.run_once();
        if wave == 0 {
            // A mid-log index definition: its `CreateIndex` record lands
            // after the first settle (and, in the checkpointed variant,
            // inside/after an image), so cuts exercise defs in the
            // suffix, in the image, and lost beyond the cut. On `dest`,
            // not `fid`: entangled partners insert the SAME fid, and a
            // key-X held to a group commit that needs the partner is the
            // Ab4 standoff at key granularity (see DESIGN.md).
            engine
                .create_named_index("Flights", "flights_dest", &["dest"], IndexKind::Hash)
                .expect("mid-log index DDL");
        }
    }
    sched.drain();
    let records = engine.wal.all_records().expect("live log scans");
    let mut bytes = Vec::new();
    for (_, rec) in &records {
        bytes.extend_from_slice(&rec.encode());
    }
    bytes
}

/// Decode the clean prefix of a truncated log (torn tails end the log).
fn durable_prefix(bytes: &[u8]) -> Vec<(Lsn, LogRecord)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match LogRecord::decode(bytes, off) {
            Ok((rec, next)) => {
                out.push((Lsn(off as u64), rec));
                off = next;
            }
            Err(_) => break,
        }
    }
    out
}

/// Assert every named index of a recovered database equals an oracle
/// rebuilt from the recovered heap (grouping row ids by the indexed
/// column) — the index-coherence half of the matrix.
fn assert_recovered_indexes_match_heap(db: &youtopia_storage::Database, context: &str) {
    for name in db.table_names() {
        let t = db.table(&name).expect("listed table");
        for idx in t.named_indexes().iter() {
            let mut oracle: BTreeMap<Value, Vec<RowId>> = BTreeMap::new();
            for (id, row) in t.scan() {
                oracle
                    .entry(row[idx.column()].clone())
                    .or_default()
                    .push(id);
            }
            let mut oracle: Vec<(Value, Vec<RowId>)> = oracle.into_iter().collect();
            for (_, ids) in &mut oracle {
                ids.sort_unstable();
            }
            assert_eq!(
                idx.entries(),
                oracle,
                "{context}: recovered index {} on {}.{} diverged from the heap",
                idx.name(),
                name,
                idx.column_name()
            );
        }
    }
}

/// Serialize a recovered database as a bootstrap log (checkpoint image):
/// DDL (tables and named-index definitions) + every surviving row,
/// committed by tx 0.
fn checkpoint_log(db: &youtopia_storage::Database) -> Vec<(Lsn, LogRecord)> {
    let mut recs = Vec::new();
    for name in db.table_names() {
        let t = db.table(&name).expect("listed table");
        recs.push(LogRecord::CreateTable {
            name: name.clone(),
            schema: t.schema().clone(),
        });
        for idx in t.named_indexes().iter() {
            recs.push(LogRecord::CreateIndex {
                table: name.clone(),
                name: idx.name().to_string(),
                columns: idx.column_names().to_vec(),
                kind: idx.kind(),
            });
        }
        for (id, row) in t.scan() {
            recs.push(LogRecord::Insert {
                tx: 0,
                table: name.clone(),
                row: id.0,
                values: row.clone(),
            });
        }
    }
    recs.push(LogRecord::Commit { tx: 0, ts: 0 });
    recs.into_iter()
        .enumerate()
        .map(|(i, r)| (Lsn(i as u64), r))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn truncation_at_every_byte_is_widow_free_and_idempotent(
        pairs in 1usize..3,
        classicals in 0usize..3,
        connections in 1usize..5,
    ) {
        let bytes = workload_log(pairs, classicals, connections);
        prop_assert!(!bytes.is_empty());

        for cut in 0..=bytes.len() {
            let records = durable_prefix(&bytes[..cut]);
            let out = recover(&records).unwrap();

            // Winners/losers is a partition; widowed rollbacks lost.
            for w in &out.winners {
                prop_assert!(!out.losers.contains(w), "cut {cut}: tx {w} both winner and loser");
            }
            for w in &out.widowed_rollbacks {
                prop_assert!(out.losers.contains(w), "cut {cut}: widowed rollback {w} must lose");
            }

            // No durable widow: every entanglement group in the prefix is
            // all-in or all-out of the winner set, no matter where the
            // crash landed — including inside a commit batch.
            for (_, rec) in &records {
                if let LogRecord::EntangleGroup { txs, .. } = rec {
                    let winners = txs.iter().filter(|t| out.winners.contains(t)).count();
                    prop_assert!(
                        winners == 0 || winners == txs.len(),
                        "cut {cut}: durable widow in group {txs:?} ({winners}/{} won)",
                        txs.len()
                    );
                }
            }

            // Recovered named indexes are coherent with the recovered
            // heap at every cut.
            assert_recovered_indexes_match_heap(&out.db, &format!("cut {cut}"));

            // Idempotence: recovering a checkpoint of the recovered state
            // reproduces it exactly (recovery is a fixpoint) — and the
            // image's re-logged index definitions rebuild coherently too.
            let again = recover(&checkpoint_log(&out.db)).unwrap();
            prop_assert_eq!(
                again.db.canonical(),
                out.db.canonical(),
                "cut {cut}: recover-of-recovered state diverged"
            );
            prop_assert!(again.widowed_rollbacks.is_empty());
            assert_recovered_indexes_match_heap(&again.db, &format!("cut {cut} (re-recovered)"));
        }
    }
}

/// The last complete checkpoint a recovery of `records` must pick: the
/// newest `CheckpointEnd` whose begin marker is also present — computed
/// independently of `recover()`'s own logic.
fn expected_checkpoint(records: &[(Lsn, LogRecord)]) -> Option<u64> {
    let mut begins = std::collections::BTreeSet::new();
    let mut last = None;
    for (_, rec) in records {
        match rec {
            LogRecord::Checkpoint { ckpt, .. } => {
                begins.insert(*ckpt);
            }
            LogRecord::CheckpointEnd { ckpt } if begins.contains(ckpt) => last = Some(*ckpt),
            _ => {}
        }
    }
    last
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The matrix across checkpoint boundaries: a log with inline
    /// checkpoint images, cut at every byte. A cut inside an image (torn
    /// snapshot) must fall back to the previous complete image or to a
    /// full replay from LSN 0; whichever base is chosen, the recovered
    /// state must equal a from-scratch replay of the same prefix with
    /// the image records stripped — and the widow-freedom and
    /// recover∘recover-fixpoint guarantees must hold at every cut.
    #[test]
    fn truncation_across_checkpoints_falls_back_and_matches_full_replay(
        pairs in 1usize..3,
        classicals in 0usize..2,
        connections in 1usize..4,
    ) {
        let policy = CheckpointPolicy {
            every_runs: Some(1),
            every_bytes: None,
            truncate: false,
        };
        let bytes = workload_log_configured(pairs, classicals, connections, policy);
        let full = durable_prefix(&bytes);
        prop_assert!(
            full.iter().filter(|(_, r)| matches!(r, LogRecord::CheckpointEnd { .. })).count() >= 2,
            "workload must produce several checkpoint images"
        );

        for cut in 0..=bytes.len() {
            let records = durable_prefix(&bytes[..cut]);
            let out = recover(&records).unwrap();

            // Recovery picks exactly the last complete image (torn images
            // are skipped; none complete ⇒ full replay).
            prop_assert_eq!(
                out.checkpoint,
                expected_checkpoint(&records),
                "cut {}: wrong checkpoint base",
                cut
            );

            // Oracle: checkpoint-based recovery ≡ full replay of the same
            // prefix without any checkpoint records.
            let stripped: Vec<(Lsn, LogRecord)> = records
                .iter()
                .filter(|(_, r)| !matches!(
                    r,
                    LogRecord::Checkpoint { .. }
                        | LogRecord::CheckpointTable { .. }
                        | LogRecord::CheckpointEnd { .. }
                ))
                .cloned()
                .collect();
            let oracle = recover(&stripped).unwrap();
            prop_assert_eq!(
                out.db.canonical(),
                oracle.db.canonical(),
                "cut {}: checkpoint recovery diverged from full replay",
                cut
            );

            // Widow-freedom across the boundary (groups wholly before the
            // base image have zero suffix winners, which is all-out).
            for (_, rec) in &records {
                if let LogRecord::EntangleGroup { txs, .. } = rec {
                    let winners = txs.iter().filter(|t| out.winners.contains(t)).count();
                    prop_assert!(
                        winners == 0 || winners == txs.len(),
                        "cut {}: durable widow in group {:?}",
                        cut,
                        txs
                    );
                }
            }

            // Index coherence across the checkpoint boundary: whether the
            // defs came from the image's re-logged records or the suffix,
            // the rebuilt contents equal the heap oracle.
            assert_recovered_indexes_match_heap(&out.db, &format!("ckpt cut {cut}"));

            // recover ∘ recover is still a fixpoint.
            let again = recover(&checkpoint_log(&out.db)).unwrap();
            prop_assert_eq!(
                again.db.canonical(),
                out.db.canonical(),
                "cut {}: recover-of-recovered state diverged",
                cut
            );
            assert_recovered_indexes_match_heap(&again.db, &format!("ckpt cut {cut} (re-recovered)"));
        }
    }
}

/// The full (untruncated) log of a drained workload recovers every pair
/// booking — a sanity anchor for the matrix above.
#[test]
fn full_log_recovers_all_committed_bookings() {
    let bytes = workload_log(2, 2, 4);
    let out = recover(&durable_prefix(&bytes)).unwrap();
    // 2 waves × 2 pairs × 2 members + 2 waves × 2 classical inserts.
    let reserve = out.db.table("Reserve").expect("Reserve recovered");
    assert_eq!(reserve.len(), 12);
    assert!(out.widowed_rollbacks.is_empty());
    assert!(out.durable_batches > 1, "expected a multi-batch log");
    // All three index definitions (two from setup, one created mid-log)
    // recovered, and the rebuilt contents cover every heap row.
    assert!(reserve.named_indexes().get("reserve_uid").is_some());
    assert!(out
        .db
        .table("Flights")
        .unwrap()
        .named_indexes()
        .get("flights_dest")
        .is_some());
    let fno = out
        .db
        .table("Flights")
        .unwrap()
        .named_indexes()
        .get("flights_fno")
        .expect("btree def recovered");
    assert_eq!(fno.kind(), IndexKind::Btree);
    assert_eq!(fno.probe(&Value::Int(122)).len(), 1);
    assert_recovered_indexes_match_heap(&out.db, "full log");
}

/// With truncation ON the retained log is a bounded suffix, yet a crash at
/// the real durable frontier still recovers every booking — the bounded
/// WAL loses nothing.
#[test]
fn truncating_checkpoints_bound_the_log_without_losing_commits() {
    let engine = Arc::new(Engine::new(EngineConfig {
        record_history: false,
        ..EngineConfig::default()
    }));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Reserve (uid TEXT, fid INT);\
             CREATE INDEX reserve_uid ON Reserve (uid);\
             INSERT INTO Flights VALUES (122, 'LA');\
             INSERT INTO Flights VALUES (123, 'LA');",
        )
        .expect("setup");
    let mut sched = Scheduler::new(
        engine.clone(),
        SchedulerConfig {
            connections: 4,
            checkpoint: CheckpointPolicy::every_runs(1),
            ..SchedulerConfig::default()
        },
    );
    for wave in 0..4 {
        for i in 0..2 {
            let a = format!("a{wave}_{i}");
            let b = format!("b{wave}_{i}");
            sched.submit(flight_pair(&a, &b));
            sched.submit(flight_pair(&b, &a));
        }
        sched.run_once();
    }
    assert_eq!(sched.stats().committed, 16);
    assert!(sched.stats().checkpoints >= 4);
    assert!(
        engine.wal.retained_len() < engine.wal.len(),
        "truncation must have reclaimed prefix bytes"
    );
    assert!(engine.wal.head().0 > 0);
    let widowed = engine.crash_and_recover().expect("clean log");
    assert!(widowed.is_empty());
    engine.with_db(|db| {
        let reserve = db.table("Reserve").expect("recovered");
        assert_eq!(reserve.len(), 16);
        // The definition survived truncation (via the image's re-logged
        // record) and the contents were rebuilt over every booking.
        let idx = reserve.named_indexes().get("reserve_uid").expect("def");
        assert_eq!(idx.key_count(), 16);
        assert_recovered_indexes_match_heap(db, "truncated log");
    });
    // And the durable suffix alone replays only O(delta) records.
    let out = recover(&engine.wal.durable_records().expect("scan")).unwrap();
    assert!(out.checkpoint.is_some());
    assert!(
        out.replayed < 16,
        "bounded replay, got {} records",
        out.replayed
    );
}
