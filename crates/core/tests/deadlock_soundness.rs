//! Randomized soundness/liveness harness for global deadlock detection
//! (ISSUE-10 satellite 2). Random table-lock schedules run at shard
//! counts 1, 2, and 4 against a [`ShardedLocks`] facade with the
//! edge-chasing [`GlobalDetector`] installed and a collecting
//! [`ProtocolAuditor`] as the event sink, then four properties are
//! checked after every schedule drains:
//!
//! - **Liveness** — every cycle is resolved by *detection*, never by the
//!   lock timeout: `total_timeouts() == 0` with a 10 s backstop that
//!   would blow the test budget if it ever fired.
//! - **No stranded waiters** — once all threads join, every shard is
//!   quiescent (no queue entry left behind by a conviction or wakeup).
//! - **Online ⊆ offline** — every conviction the detector made online is
//!   covered by a cycle the offline Tarjan pass finds in the audited
//!   lock-order graph (`uncovered_detections()` is empty), and the
//!   victim counters agree exactly with what the worker threads saw.
//! - **Soundness** — schedules that acquire in one global order are
//!   acyclic and must produce *zero* victims: the detector never invents
//!   a deadlock (no phantom convictions from a torn cut).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use youtopia_audit::ProtocolAuditor;
use youtopia_lock::{GlobalDetector, LockError, LockMode, Resource, ShardedLocks, TxId};

/// Enough tables that 4-shard routing leaves several per shard and
/// random subsets still collide hard.
const TABLES: [&str; 6] = ["ta", "tb", "tc", "td", "te", "tf"];

/// CI's fallback-honesty lane sets `YOUTOPIA_DEADLOCK=timeout`; the
/// harness then leaves the global detector out entirely, so cross-shard
/// cycles must die by a short clock while the local enqueue-time checks
/// keep convicting shard-local ones — and every soundness property that
/// does not mention the probe must still hold.
fn timeout_ablation() -> bool {
    std::env::var("YOUTOPIA_DEADLOCK").is_ok_and(|v| v.eq_ignore_ascii_case("timeout"))
}

/// The per-request timeout: effectively infinite when detection is on
/// (a fired timeout is a test failure), short enough to resolve
/// cross-shard cycles promptly on the ablation lane.
fn wait_budget() -> Duration {
    if timeout_ablation() {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(10)
    }
}

/// A sharded facade with detection on (tight probe cadence so cycles
/// die in milliseconds — omitted on the ablation lane) and a collecting
/// auditor watching every shard. The router folds the table name's
/// bytes — stable and total, and it spreads [`TABLES`] across all
/// shards at every count used here.
fn harness(shards: usize) -> (Arc<ProtocolAuditor>, Arc<ShardedLocks>) {
    let auditor = Arc::new(ProtocolAuditor::collecting());
    let mut locks = ShardedLocks::with_router(
        shards,
        Box::new(move |r| r.table_name().bytes().map(usize::from).sum::<usize>() % shards),
    );
    locks.install_sink(auditor.clone());
    if !timeout_ablation() {
        locks.enable_detection(
            GlobalDetector::new().with_timing(Duration::from_millis(1), Duration::from_millis(2)),
        );
    }
    (auditor, Arc::new(locks))
}

/// Run one thread per `(tx, tables)` plan: lock each table X in order
/// with a 10 s timeout, release everything on completion or on a
/// deadlock conviction. After winning its first lock each thread pauses
/// briefly so every transaction holds something before anyone requests
/// more — without the stagger the fast threads drain before contention
/// builds and the adversarial arm degenerates into uncontended grants.
/// Returns `(convictions, timeouts)` over the whole schedule. With
/// detection on, any timeout fails the test — resolution must come from
/// detection, local or global; on the ablation lane a timed-out thread
/// releases everything and retires, exactly like a victim.
fn run_schedule(locks: &Arc<ShardedLocks>, plans: Vec<(TxId, Vec<&'static str>)>) -> (u64, u64) {
    let workers: Vec<_> = plans
        .into_iter()
        .map(|(tx, tables)| {
            let locks = locks.clone();
            std::thread::spawn(move || {
                for (i, tbl) in tables.into_iter().enumerate() {
                    if i == 1 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    match locks.lock(tx, Resource::table(tbl), LockMode::X, Some(wait_budget())) {
                        Ok(()) => {}
                        Err(LockError::Deadlock) => {
                            locks.unlock_all(tx);
                            return (1u64, 0u64);
                        }
                        Err(LockError::Timeout) if timeout_ablation() => {
                            locks.unlock_all(tx);
                            return (0u64, 1u64);
                        }
                        Err(e) => panic!("tx {tx:?} on {tbl}: unexpected {e:?}"),
                    }
                }
                locks.unlock_all(tx);
                (0u64, 0u64)
            })
        })
        .collect();
    workers.into_iter().fold((0, 0), |(v, t), w| {
        let (dv, dt) = w.join().unwrap();
        (v + dv, t + dt)
    })
}

/// The harness is not vacuous: across a handful of seeds the staggered
/// adversarial schedules must actually form cycles (every one resolved
/// by detection — the proptest arms check the properties, this pins
/// that there is something to check).
#[test]
fn adversarial_schedules_form_real_cycles() {
    let mut resolved = 0;
    for seed in 0..8u64 {
        let (_auditor, locks) = harness(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let plans = (1..=5u64)
            .map(|i| {
                let mut tables = TABLES.to_vec();
                tables.shuffle(&mut rng);
                tables.truncate(rng.gen_range(2usize..=4));
                (TxId(i), tables)
            })
            .collect();
        let (convicted, timeouts) = run_schedule(&locks, plans);
        if !timeout_ablation() {
            assert_eq!(locks.total_timeouts(), 0, "seed {seed}");
        }
        resolved += convicted + timeouts;
    }
    assert!(
        resolved > 0,
        "no schedule ever deadlocked — the adversarial arm checks nothing"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Adversarial arm: five transactions each grab a shuffled subset of
    /// the hot tables, so cycles of every shape — shard-local and
    /// shard-straddling, length 2 up to 5 — form freely.
    #[test]
    fn random_schedules_resolve_by_detection_with_sound_convictions(seed in 0u64..10_000) {
        for shards in [1usize, 2, 4] {
            let (auditor, locks) = harness(shards);
            let mut rng = StdRng::seed_from_u64(seed ^ ((shards as u64) << 32));
            let plans = (1..=5u64)
                .map(|i| {
                    let mut tables = TABLES.to_vec();
                    tables.shuffle(&mut rng);
                    tables.truncate(rng.gen_range(2usize..=4));
                    (TxId(i), tables)
                })
                .collect();
            let (victims, clock_deaths) = run_schedule(&locks, plans);

            // Liveness: no waiter died by the clock (detection lane), or
            // every clock death is accounted for (ablation lane) — and
            // either way none were stranded.
            if timeout_ablation() {
                prop_assert_eq!(
                    locks.total_timeouts(), clock_deaths,
                    "seed {} shards {}: timeout stat disagrees with observed verdicts", seed, shards
                );
            } else {
                prop_assert_eq!(
                    locks.total_timeouts(), 0,
                    "seed {} shards {}: cycle resolved by timeout, not detection", seed, shards
                );
            }
            prop_assert!(
                locks.quiescent(),
                "seed {} shards {}: stranded waiter after drain", seed, shards
            );

            // Conviction bookkeeping: every Deadlock verdict a thread saw
            // is one deadlock in the stats, and the global detector's
            // victim count never exceeds it (local enqueue-time checks
            // convict the shard-local share).
            prop_assert_eq!(
                locks.total_deadlocks(), victims,
                "seed {} shards {}: deadlock stat disagrees with observed verdicts", seed, shards
            );
            prop_assert!(
                locks.total_deadlock_victims() <= victims,
                "seed {} shards {}: more global victims than convictions", seed, shards
            );

            // Online ⊆ offline: every conviction is backed by a Tarjan
            // cycle in the audited lock-order graph. This is a theorem of
            // the *detection* lane only — there every blocked waiter
            // either grants (its ordering edges land) or is convicted
            // (the auditor records its held → requested edges at
            // detection time), so a convicted cycle's back-edges always
            // materialize. On the timeout ablation a cycle partner can
            // die by the clock instead, recording nothing, and a sound
            // local conviction may legitimately go uncovered.
            if !timeout_ablation() {
                let uncovered = auditor.uncovered_detections();
                prop_assert!(
                    uncovered.is_empty(),
                    "seed {seed} shards {shards}: detections without an offline cycle: {uncovered:?}"
                );
            }
            prop_assert_eq!(
                auditor.detections().len() as u64,
                locks.total_deadlocks(),
                "seed {} shards {}: auditor missed a Deadlock event (local or global)", seed, shards
            );

            // The schedule itself is protocol-legal: convictions must not
            // manufacture lock-order or two-phase violations.
            let viol = auditor.violations();
            prop_assert!(
                viol.is_empty(),
                "seed {seed} shards {shards}: protocol violations: {viol:?}"
            );
        }
    }

    /// Soundness arm: the same random subsets acquired in one global
    /// (ascending) order cannot deadlock, so any conviction at all is a
    /// phantom — the consistent-cut probe must never produce one.
    #[test]
    fn acyclic_schedules_never_convict(seed in 0u64..10_000) {
        for shards in [1usize, 2, 4] {
            let (auditor, locks) = harness(shards);
            let mut rng = StdRng::seed_from_u64(seed ^ ((shards as u64) << 32));
            let plans = (1..=5u64)
                .map(|i| {
                    let mut tables = TABLES.to_vec();
                    tables.shuffle(&mut rng);
                    tables.truncate(rng.gen_range(2usize..=4));
                    tables.sort_unstable();
                    (TxId(i), tables)
                })
                .collect();
            let (victims, clock_deaths) = run_schedule(&locks, plans);

            prop_assert_eq!(victims, 0, "seed {} shards {}: phantom victim", seed, shards);
            prop_assert_eq!(clock_deaths, 0, "seed {} shards {}: acyclic timeout", seed, shards);
            prop_assert_eq!(locks.total_deadlocks(), 0);
            prop_assert_eq!(locks.total_deadlock_victims(), 0);
            prop_assert_eq!(locks.total_timeouts(), 0);
            prop_assert!(auditor.detections().is_empty());
            prop_assert!(locks.quiescent(), "seed {seed} shards {shards}: stranded waiter");
        }
    }
}
