//! Phantom/quasi-read regression test for the index point-read protocol.
//!
//! Index-backed point reads give up the table-S lock (§3.3.3's blanket
//! phantom protection) for table-IS + key-S + row-S. The key lock is
//! what stands in for the table lock: any writer that would add or
//! remove a row at that key must take key-X first. This test drives the
//! exact anomaly the protocol must prevent — a transaction point-reads
//! the same key twice while writers replace, insert, update and delete
//! rows at that key — and asserts:
//!
//! 1. **repeatable point reads**: both reads of every committed reader
//!    observe the identical row (no value change, no membership change —
//!    the unrepeatable-quasi-read shape of §3.3.3 cannot reappear);
//! 2. the replace-writers' invariant (exactly one `Acct` row per uid)
//!    holds at every commit boundary;
//! 3. the recorded history — with point reads recorded at **row**
//!    granularity — still validates and stays entangled-isolated while
//!    grounding reads (table-S, unchanged by this PR) race indexed point
//!    writers on the same table.

use entangled_txn::{
    ClientId, Engine, EngineConfig, Program, Scheduler, SchedulerConfig, StepOutcome, Txn,
    TxnStatus,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use youtopia_isolation::is_entangled_isolated;
use youtopia_storage::Value;

const UIDS: i64 = 6;

const SETUP: &str = "CREATE TABLE Flights (fno INT, dest TEXT);\
     CREATE TABLE Reserve (uid TEXT, fid INT);\
     CREATE TABLE Acct (uid INT, bal INT);\
     CREATE TABLE Audit (uid INT, note INT);\
     CREATE INDEX flights_fno ON Flights (fno);\
     CREATE INDEX reserve_uid ON Reserve (uid);\
     CREATE INDEX acct_uid ON Acct (uid) USING BTREE;\
     INSERT INTO Flights VALUES (122, 'LA');\
     INSERT INTO Flights VALUES (123, 'LA');\
     INSERT INTO Acct VALUES (0, 0);\
     INSERT INTO Acct VALUES (1, 0);\
     INSERT INTO Acct VALUES (2, 0);\
     INSERT INTO Acct VALUES (3, 0);\
     INSERT INTO Acct VALUES (4, 0);\
     INSERT INTO Acct VALUES (5, 0);";

/// The reader under test: two point reads of the same key inside a
/// read-write transaction (the write keeps it off the snapshot path, so
/// both SELECTs take the locked table-IS + key-S + row-S plan).
fn point_reader(i: usize, uid: i64) -> Program {
    Program::parse(&format!(
        "BEGIN; SELECT bal AS @a FROM Acct WHERE uid = {uid}; \
         INSERT INTO Audit (uid, note) VALUES ({i}, {uid}); \
         SELECT bal AS @b FROM Acct WHERE uid = {uid}; COMMIT;"
    ))
    .unwrap()
}

fn entangled_pair(i: usize) -> [Program; 2] {
    let q = |me: String, other: String| {
        Program::parse(&format!(
            "BEGIN; SELECT '{me}', fno AS @fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
        ))
        .unwrap()
    };
    [
        q(format!("a{i}"), format!("b{i}")),
        q(format!("b{i}"), format!("a{i}")),
    ]
}

/// Writers that attack the reader's key from every direction a phantom
/// could come from, plus entangled pairs whose grounding reads hold
/// table-S on `Flights` against the indexed point writer there.
fn churn_mix(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut i = 0usize;
    while out.len() < count {
        let uid = rng.gen_range(0..UIDS);
        match rng.gen_range(0..6u32) {
            // Value change at the key (row-X; key postings unchanged).
            0 => out.push(
                Program::parse(&format!(
                    "BEGIN; UPDATE Acct SET bal = bal + 1 WHERE uid = {uid}; COMMIT;"
                ))
                .unwrap(),
            ),
            // Membership churn at the key: delete + re-insert in one
            // transaction (key-X twice), keeping one row per uid at
            // every commit boundary.
            1 => out.push(
                Program::parse(&format!(
                    "BEGIN; DELETE FROM Acct WHERE uid = {uid}; \
                     INSERT INTO Acct (uid, bal) VALUES ({uid}, {}); COMMIT;",
                    rng.gen_range(0..100i64)
                ))
                .unwrap(),
            ),
            // Indexed point writer on the grounding-read table.
            2 => out.push(
                Program::parse("BEGIN; UPDATE Flights SET dest = 'LA' WHERE fno = 122; COMMIT;")
                    .unwrap(),
            ),
            // The reader under test.
            3 | 4 => out.push(point_reader(i, uid)),
            // Entangled pairs keep the §3.3.3 machinery in the mix.
            _ => {
                if out.len() + 2 <= count {
                    out.extend(entangled_pair(i));
                } else {
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

#[test]
fn index_on_partner_shared_key_reintroduces_the_ab4_standoff() {
    // The negative result the index-locking rules document: an index on a
    // column where entangled partners insert EQUAL keys (both book the
    // same fno into `Reserve.fid`) makes their inserts collide on the
    // key-X resource — a key lock held to a group commit that cannot
    // happen without the partner is the Ab4 table-granularity standoff
    // at key granularity. Both partners must fail *together* (no widow,
    // no partial booking); indexes on partner-distinct columns (uid)
    // stay livelock-free, as every other test in this file shows.
    let engine = Arc::new(Engine::new(EngineConfig {
        lock_timeout: Duration::from_millis(10),
        ..EngineConfig::default()
    }));
    engine
        .setup(
            "CREATE TABLE Flights (fno INT, dest TEXT);\
             CREATE TABLE Reserve (uid TEXT, fid INT);\
             CREATE INDEX reserve_fid ON Reserve (fid);\
             INSERT INTO Flights VALUES (122, 'LA');",
        )
        .unwrap();
    let mut sched = Scheduler::new(
        Arc::clone(&engine),
        SchedulerConfig {
            connections: 2,
            max_attempts: 4,
            ..SchedulerConfig::default()
        },
    );
    let [a, b] = entangled_pair(0);
    sched.submit(a);
    sched.submit(b);
    let stats = sched.drain();
    assert_eq!(stats.committed, 0, "structural standoff must not resolve");
    engine.with_db(|db| {
        assert_eq!(
            db.table("Reserve").unwrap().len(),
            0,
            "no partial booking may survive"
        );
    });
}

#[test]
fn range_reads_are_repeatable_under_concurrent_insert_into_the_range() {
    // The next-key regression: a btree range plan takes table-IS + S on
    // every in-range key *plus the successor key beyond the interval*
    // (the EOF sentinel when the range runs off the index). An insert
    // into the interval needs key-X (a duplicate of an existing key) or
    // successor-IX (a new key) — both conflict with the reader's S — so
    // interval membership is frozen until the reader commits: the range
    // phantom that previously forced range statements to table-S.
    let engine = Engine::new(EngineConfig {
        lock_timeout: Duration::from_millis(25),
        ..EngineConfig::default()
    });
    engine.setup(SETUP).unwrap();
    let txn = |script: &str| -> Txn {
        let mut t = Txn::new(
            ClientId(1),
            engine.alloc_tx(),
            Program::parse(script).unwrap(),
        );
        engine.begin(&mut t);
        t
    };

    // The reader under test: two identical BETWEEN reads in a read-write
    // transaction (the Audit insert keeps it off the snapshot path).
    let lookups_before = engine.index_lookups();
    let mut reader = txn(
        "BEGIN; SELECT bal AS @a FROM Acct WHERE uid BETWEEN 1 AND 3; \
         INSERT INTO Audit (uid, note) VALUES (100, 0); \
         SELECT bal AS @b FROM Acct WHERE uid BETWEEN 1 AND 3; COMMIT;",
    );
    assert_eq!(engine.run_until_block(&mut reader), StepOutcome::Ready);
    assert!(
        engine.index_lookups() > lookups_before,
        "the BETWEEN predicate must be served by a range probe, not table-S"
    );
    assert_eq!(
        reader.env.get("a"),
        reader.env.get("b"),
        "two range reads inside one transaction must agree"
    );

    // A duplicate-key insert into the interval collides with the
    // reader's S on the existing key...
    let mut interior = txn("BEGIN; INSERT INTO Acct (uid, bal) VALUES (2, 99); COMMIT;");
    assert_eq!(
        engine.run_until_block(&mut interior),
        StepOutcome::Aborted,
        "insert into a range-locked interval must wait for the reader"
    );

    // ...and a second reader holding a range that runs off the end of
    // the index (keys stop at uid = 5) pins the EOF sentinel, so an
    // insert *beyond the last key* is a phantom too.
    let mut tail_reader = txn(
        "BEGIN; SELECT bal AS @t FROM Acct WHERE uid >= 4 AND uid <= 9; \
         INSERT INTO Audit (uid, note) VALUES (101, 0); COMMIT;",
    );
    assert_eq!(engine.run_until_block(&mut tail_reader), StepOutcome::Ready);
    let mut beyond = txn("BEGIN; INSERT INTO Acct (uid, bal) VALUES (7, 7); COMMIT;");
    assert_eq!(
        engine.run_until_block(&mut beyond),
        StepOutcome::Aborted,
        "end-of-index insert must conflict with the EOF sentinel lock"
    );

    // Readers commit; the same inserts now go straight through.
    engine.commit_group(&mut [&mut reader]);
    engine.commit_group(&mut [&mut tail_reader]);
    for script in [
        "BEGIN; INSERT INTO Acct (uid, bal) VALUES (2, 99); COMMIT;",
        "BEGIN; INSERT INTO Acct (uid, bal) VALUES (7, 7); COMMIT;",
    ] {
        let mut t = txn(script);
        assert_eq!(engine.run_until_block(&mut t), StepOutcome::Ready);
        engine.commit_group(&mut [&mut t]);
        assert_eq!(t.status, TxnStatus::Committed);
    }
    engine.with_db(|db| {
        let idx = db
            .table("Acct")
            .unwrap()
            .named_indexes()
            .get("acct_uid")
            .unwrap();
        assert_eq!(
            idx.probe(&Value::Int(2)).len(),
            2,
            "both uid-2 rows present"
        );
        assert_eq!(idx.probe(&Value::Int(7)).len(), 1, "tail insert landed");
    });
}

#[test]
fn point_reads_are_repeatable_under_key_churn() {
    for seed in [2u64, 23, 61] {
        let engine = Arc::new(Engine::new(EngineConfig {
            lock_timeout: Duration::from_millis(25),
            ..EngineConfig::default()
        }));
        engine.setup(SETUP).unwrap();
        let mut sched = Scheduler::new(
            Arc::clone(&engine),
            SchedulerConfig {
                connections: 8,
                max_attempts: 1000,
                ..SchedulerConfig::default()
            },
        );
        let programs = churn_mix(seed, 56);
        for p in &programs {
            sched.submit(p.clone());
        }
        let stats = sched.drain();
        assert_eq!(stats.committed, programs.len(), "seed {seed}: {stats:?}");

        // 1. Every reader's two point reads of the same key agree — the
        //    key-S lock froze both the row's value and the key's
        //    membership between them.
        let mut readers_checked = 0usize;
        for r in sched.take_results() {
            assert_eq!(r.status, TxnStatus::Committed, "seed {seed}");
            if let Some(a) = r.env.get("a") {
                let b = r.env.get("b");
                assert_eq!(
                    Some(a),
                    b,
                    "seed {seed}: unrepeatable point read — the §3.3.3 anomaly is back"
                );
                readers_checked += 1;
            }
        }
        assert!(readers_checked > 0, "seed {seed}: mix produced no readers");

        // 2. The replace-writers' invariant: exactly one row per uid.
        engine.with_db(|db| {
            let acct = db.table("Acct").unwrap();
            for uid in 0..UIDS {
                let idx = acct.named_indexes().get("acct_uid").unwrap();
                assert_eq!(
                    idx.probe(&Value::Int(uid)).len(),
                    1,
                    "seed {seed}: uid {uid} must have exactly one row"
                );
            }
        });

        // 3. The row-granular read recording still yields a valid,
        //    entangled-isolated history.
        let s = engine.recorder.schedule();
        s.validate().unwrap();
        assert!(
            is_entangled_isolated(&s),
            "seed {seed}: history lost isolation with indexes enabled"
        );
    }
}
