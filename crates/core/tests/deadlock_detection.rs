//! Deterministic cross-shard deadlock scenarios for the global
//! edge-chasing detector: cycles no single shard's waits-for check can
//! see, resolved by **detection** (an explicit victim conviction within
//! a probe period), never by waiting out the lock timeout. Every
//! scenario pins the victim rule — youngest transaction id, group-mates
//! abort together, prepared groups are immune — and that survivors and
//! retries complete.
//!
//! The tables are the travel-schema names the default partitioning rule
//! spreads over four shards (`Reserve`/`User`/`Flight` are pairwise on
//! different shards at `shards = 4`), so every cycle here genuinely
//! straddles shard boundaries.

use entangled_txn::{
    DeadlockPolicy, Engine, EngineConfig, GroupManager, GroupVictimPolicy, Program, Scheduler,
    SchedulerConfig,
};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;
use youtopia_lock::{GlobalDetector, LockError, LockMode, Resource, ShardedLocks, TxId};

/// A 4-shard engine with detection on (the default policy) and a lock
/// timeout long enough that any timeout-resolved test would hang far
/// past the assertion — resolution must come from the detector.
fn detecting_engine() -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        shards: 4,
        deadlock: DeadlockPolicy::Detect,
        lock_timeout: Duration::from_secs(10),
        ..EngineConfig::default()
    }))
}

fn t(n: u64) -> TxId {
    TxId(n)
}

#[test]
fn two_tx_two_shard_cycle_convicts_youngest_and_retry_succeeds() {
    let engine = detecting_engine();
    let (reserve, user) = (Resource::table("Reserve"), Resource::table("User"));
    engine
        .locks
        .lock(t(1), reserve.clone(), LockMode::X, None)
        .unwrap();
    engine
        .locks
        .lock(t(2), user.clone(), LockMode::X, None)
        .unwrap();
    let e2 = engine.clone();
    let u2 = user.clone();
    let survivor = std::thread::spawn(move || {
        e2.locks
            .lock(t(1), u2, LockMode::X, Some(Duration::from_secs(10)))
    });
    // t2 closes the cycle and, as the youngest member, is the victim.
    let verdict = engine.locks.lock(
        t(2),
        reserve.clone(),
        LockMode::X,
        Some(Duration::from_secs(10)),
    );
    assert!(matches!(verdict, Err(LockError::Deadlock)), "{verdict:?}");
    assert_eq!(engine.deadlock_victims(), 1);
    assert_eq!(engine.timeouts(), 0, "resolved by detection, not timeout");
    assert!(engine.detection_probes() >= 1);
    // The victim aborts; the survivor's stalled request completes.
    engine.locks.unlock_all(t(2));
    survivor.join().unwrap().unwrap();
    engine.locks.unlock_all(t(1));
    // The abort cleared the conviction: the victim's retry (fresh or
    // same id) acquires both resources cleanly.
    engine.locks.lock(t(2), reserve, LockMode::X, None).unwrap();
    engine.locks.lock(t(2), user, LockMode::X, None).unwrap();
    engine.locks.unlock_all(t(2));
    assert_eq!(engine.deadlock_victims(), 1, "no false second conviction");
}

#[test]
fn three_tx_three_shard_ring_breaks_with_exactly_one_victim() {
    let engine = detecting_engine();
    let tables = [
        Resource::table("Reserve"),
        Resource::table("User"),
        Resource::table("Flight"),
    ];
    for (i, res) in tables.iter().enumerate() {
        engine
            .locks
            .lock(t(i as u64 + 1), res.clone(), LockMode::X, None)
            .unwrap();
    }
    // Close the ring: t1 → t2's table, t2 → t3's, t3 → t1's.
    let handles: Vec<_> = (0..3)
        .map(|i| {
            let e = engine.clone();
            let want = tables[(i + 1) % 3].clone();
            std::thread::spawn(move || {
                let tx = t(i as u64 + 1);
                let out = e
                    .locks
                    .lock(tx, want, LockMode::X, Some(Duration::from_secs(10)));
                e.locks.unlock_all(tx);
                (tx, out)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let victims: Vec<TxId> = results
        .iter()
        .filter(|(_, r)| matches!(r, Err(LockError::Deadlock)))
        .map(|(tx, _)| *tx)
        .collect();
    assert_eq!(victims, vec![t(3)], "youngest ring member, exactly once");
    for (tx, r) in &results {
        if *tx != t(3) {
            assert!(r.is_ok(), "{tx} must survive: {r:?}");
        }
    }
    assert_eq!(engine.deadlock_victims(), 1);
    assert_eq!(engine.timeouts(), 0);
}

#[test]
fn upgrade_deadlock_straddling_shards_convicts_upgrader() {
    let engine = detecting_engine();
    let (reserve, user) = (Resource::table("Reserve"), Resource::table("User"));
    // t1 reads Reserve; t2 writes User and reads Reserve alongside t1.
    engine
        .locks
        .lock(t(1), reserve.clone(), LockMode::S, None)
        .unwrap();
    engine
        .locks
        .lock(t(2), user.clone(), LockMode::X, None)
        .unwrap();
    engine
        .locks
        .lock(t(2), reserve.clone(), LockMode::S, None)
        .unwrap();
    // t1 blocks on t2's User shard; t2's S→X upgrade blocks on t1's S
    // over on the Reserve shard. Neither shard sees a local cycle.
    let e2 = engine.clone();
    let u2 = user.clone();
    let survivor = std::thread::spawn(move || {
        e2.locks
            .lock(t(1), u2, LockMode::X, Some(Duration::from_secs(10)))
    });
    let verdict = engine
        .locks
        .lock(t(2), reserve, LockMode::X, Some(Duration::from_secs(10)));
    assert!(matches!(verdict, Err(LockError::Deadlock)), "{verdict:?}");
    assert_eq!(engine.deadlock_victims(), 1);
    assert_eq!(engine.timeouts(), 0);
    // The convicted upgrade left no X behind: once the victim aborts,
    // the survivor takes User and can escalate over Reserve too.
    engine.locks.unlock_all(t(2));
    survivor.join().unwrap().unwrap();
    engine
        .locks
        .lock(t(1), Resource::table("Reserve"), LockMode::X, None)
        .unwrap();
    engine.locks.unlock_all(t(1));
}

#[test]
fn entangled_group_with_prepared_partner_is_immune() {
    // Drive the engine's victim policy (entanglement groups + the
    // commit-pipeline `preparing` set) through a raw sharded manager so
    // the immunity input is controllable.
    let groups = Arc::new(GroupManager::new());
    let preparing: Arc<parking_lot::Mutex<HashSet<u64>>> = Arc::default();
    let mut locks = ShardedLocks::with_router(
        2,
        Box::new(|r| usize::from(r.table_name().starts_with('b'))),
    );
    locks.enable_detection(
        GlobalDetector::with_policy(Box::new(GroupVictimPolicy::new(
            groups.clone(),
            preparing.clone(),
        )))
        .with_timing(Duration::from_millis(1), Duration::from_millis(2)),
    );
    let locks = Arc::new(locks);
    let (a, b) = (Resource::table("aa"), Resource::table("bb"));

    // t2 entangled with t3, and t3 is mid-prepare: the whole group is
    // immune, so the cycle's conviction falls to the *older* t1.
    groups.link(&[2, 3]);
    preparing.lock().insert(3);
    locks.lock(t(1), a.clone(), LockMode::X, None).unwrap();
    locks.lock(t(2), b.clone(), LockMode::X, None).unwrap();
    let l2 = Arc::clone(&locks);
    let (a2, b2) = (a.clone(), b.clone());
    let partner = std::thread::spawn(move || {
        let out = l2.lock(t(2), a2, LockMode::X, Some(Duration::from_secs(10)));
        l2.unlock_all(t(2));
        out
    });
    let verdict = locks.lock(t(1), b.clone(), LockMode::X, Some(Duration::from_secs(10)));
    assert!(
        matches!(verdict, Err(LockError::Deadlock)),
        "older tx convicted instead of the prepared group: {verdict:?}"
    );
    locks.unlock_all(t(1));
    partner.join().unwrap().unwrap();
    assert_eq!(locks.total_deadlock_victims(), 1);
    assert_eq!(locks.total_timeouts(), 0);

    // Prepare finished: the group is convictable again, and the normal
    // youngest-victim rule resumes.
    preparing.lock().clear();
    locks.lock(t(1), a.clone(), LockMode::X, None).unwrap();
    locks.lock(t(2), b.clone(), LockMode::X, None).unwrap();
    let l2 = Arc::clone(&locks);
    let survivor = std::thread::spawn(move || {
        let out = l2.lock(t(1), b2, LockMode::X, Some(Duration::from_secs(10)));
        l2.unlock_all(t(1));
        out
    });
    let verdict = locks.lock(t(2), a.clone(), LockMode::X, Some(Duration::from_secs(10)));
    assert!(matches!(verdict, Err(LockError::Deadlock)), "{verdict:?}");
    locks.unlock_all(t(2));
    survivor.join().unwrap().unwrap();
    assert_eq!(locks.total_deadlock_victims(), 2);

    // Every cycle member immune → no conviction at all; the timeout
    // backstop (shortened here) is what finally breaks the cycle.
    preparing.lock().extend([1, 2]);
    locks.lock(t(1), a.clone(), LockMode::X, None).unwrap();
    locks.lock(t(2), b.clone(), LockMode::X, None).unwrap();
    let l2 = Arc::clone(&locks);
    let (a3, b3) = (a.clone(), b.clone());
    let blocked = std::thread::spawn(move || {
        let out = l2.lock(t(1), b3, LockMode::X, Some(Duration::from_millis(80)));
        l2.unlock_all(t(1));
        out
    });
    let out2 = locks.lock(t(2), a3, LockMode::X, Some(Duration::from_millis(80)));
    locks.unlock_all(t(2));
    let out1 = blocked.join().unwrap();
    assert!(
        matches!(out1, Err(LockError::Timeout)) || matches!(out2, Err(LockError::Timeout)),
        "an all-immune cycle falls to the timeout backstop: {out1:?} / {out2:?}"
    );
    assert_eq!(
        locks.total_deadlock_victims(),
        2,
        "immunity held: no conviction inside the prepared group"
    );
}

#[test]
fn scheduler_retries_victims_to_commit_and_reports_counters() {
    // End-to-end: opposite-order cross-shard write pairs under the
    // scheduler. Victims surface as lock aborts, ride the existing
    // retry path, and everything commits with **zero** timeouts — the
    // 250 ms backstop never fires because detection wins first. The
    // cumulative Stats pin `deadlock_victims`/`detection_probes` as
    // live counters next to `deadlocks`/`timeouts`.
    let engine = Arc::new(Engine::new(EngineConfig {
        shards: 4,
        // A real per-statement cost keeps both pair members inside the
        // window where their first locks are held, so cycles form.
        cost: entangled_txn::CostModel {
            per_statement: Duration::from_millis(5),
            ..entangled_txn::CostModel::default()
        },
        ..EngineConfig::default()
    }));
    engine
        .setup(
            "CREATE TABLE Reserve (uid INT, fid INT);\
             CREATE TABLE User (uid INT, hometown TEXT);\
             INSERT INTO Reserve VALUES (0, 1);\
             INSERT INTO User VALUES (0, 'home');",
        )
        .unwrap();
    let mut sched = Scheduler::new(
        engine.clone(),
        SchedulerConfig {
            connections: 2,
            ..SchedulerConfig::default()
        },
    );
    let forward = Program::parse(
        "BEGIN; UPDATE Reserve SET fid=fid WHERE uid=0; \
         UPDATE User SET hometown=hometown WHERE uid=0; COMMIT;",
    )
    .unwrap();
    let backward = Program::parse(
        "BEGIN; UPDATE User SET hometown=hometown WHERE uid=0; \
         UPDATE Reserve SET fid=fid WHERE uid=0; COMMIT;",
    )
    .unwrap();
    let mut submitted = 0usize;
    for round in 0..20 {
        sched.submit(forward.clone());
        sched.submit(backward.clone());
        submitted += 2;
        let stats = sched.drain();
        assert_eq!(stats.committed, submitted, "victims retried to commit");
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.timeouts, 0, "detection preempts the 250ms backstop");
        if stats.deadlock_victims > 0 {
            // Counters are live and consistent across layers.
            assert!(stats.detection_probes > 0);
            assert!(stats.deadlocks >= stats.deadlock_victims);
            assert_eq!(stats.deadlock_victims, engine.deadlock_victims());
            assert_eq!(stats.detection_probes, engine.detection_probes());
            return;
        }
        assert!(round < 19, "20 opposite-order rounds never deadlocked");
    }
}
