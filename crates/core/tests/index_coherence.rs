//! Index/heap coherence stress test for the named secondary indexes:
//! randomized entangled + classical writers at `connections = 8` over
//! tables that all carry named indexes, checked two ways —
//!
//! 1. after every settle (each scheduler run, and the final drain) every
//!    named index equals an oracle rebuilt from the heap by scanning the
//!    indexed column — no stale, missing or duplicated postings survive
//!    concurrent INSERT/UPDATE/DELETE under the two-level key protocol;
//! 2. an index-backed point SELECT returns exactly what a full-scan
//!    evaluation of the same predicate returns (plans differ, answers
//!    must not).

use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig, TxnStatus};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use youtopia_storage::{RowId, Table, Value};

const SETUP: &str = "CREATE TABLE Flights (fno INT, dest TEXT);\
     CREATE TABLE Reserve (uid TEXT, fid INT);\
     CREATE TABLE Counters (k INT, v INT);\
     CREATE TABLE Audit (uid INT, note INT);\
     CREATE INDEX reserve_uid ON Reserve (uid);\
     CREATE INDEX counters_k ON Counters (k);\
     CREATE INDEX audit_uid ON Audit (uid) USING BTREE;\
     INSERT INTO Flights VALUES (122, 'LA');\
     INSERT INTO Flights VALUES (123, 'LA');\
     INSERT INTO Counters VALUES (0, 0);\
     INSERT INTO Counters VALUES (1, 0);\
     INSERT INTO Counters VALUES (2, 0);\
     INSERT INTO Counters VALUES (3, 0);";

fn engine() -> Arc<Engine> {
    let e = Engine::new(EngineConfig {
        lock_timeout: Duration::from_millis(25),
        ..EngineConfig::default()
    });
    e.setup(SETUP).unwrap();
    Arc::new(e)
}

/// The heap-rebuilt oracle for one indexed column: scan the table and
/// group row ids by key, in the canonical form of [`Index::entries`].
fn heap_oracle(t: &Table, column: usize) -> Vec<(Value, Vec<RowId>)> {
    let mut m: BTreeMap<Value, Vec<RowId>> = BTreeMap::new();
    for (id, row) in t.scan() {
        m.entry(row[column].clone()).or_default().push(id);
    }
    let mut out: Vec<(Value, Vec<RowId>)> = m.into_iter().collect();
    for (_, ids) in &mut out {
        ids.sort_unstable();
    }
    out
}

/// Every named index of every table equals its heap oracle.
fn assert_indexes_match_heap(engine: &Engine, context: &str) {
    engine.with_db(|db| {
        let mut checked = 0usize;
        for name in db.table_names() {
            let t = db.table(&name).expect("listed table");
            for idx in t.named_indexes().iter() {
                assert_eq!(
                    idx.entries(),
                    heap_oracle(t, idx.column()),
                    "{context}: index {} on {}.{} diverged from the heap",
                    idx.name(),
                    name,
                    idx.column_name()
                );
                checked += 1;
            }
        }
        assert_eq!(checked, 3, "{context}: all three named indexes checked");
    });
}

fn entangled_pair(i: usize) -> [Program; 2] {
    let q = |me: String, other: String| {
        Program::parse(&format!(
            "BEGIN; SELECT '{me}', fno AS @fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('{other}', fno) IN ANSWER R CHOOSE 1; \
             INSERT INTO Reserve (uid, fid) VALUES ('{me}', @fno); COMMIT;"
        ))
        .unwrap()
    };
    [
        q(format!("a{i}"), format!("b{i}")),
        q(format!("b{i}"), format!("a{i}")),
    ]
}

/// A randomized batch of writers that churn every indexed column:
/// point-updates on `Counters` (non-key column), key-changing updates and
/// deletes on `Audit` (the indexed `uid` column itself), unique inserts,
/// and entangled pairs inserting into the indexed `Reserve`.
fn random_programs(seed: u64, count: usize) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    let mut i = 0usize;
    while out.len() < count {
        match rng.gen_range(0..6u32) {
            0 => {
                let k = rng.gen_range(0..4i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; UPDATE Counters SET v = v + 1 WHERE k = {k}; COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            1 => {
                let note = rng.gen_range(0..1000i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; INSERT INTO Audit (uid, note) VALUES ({i}, {note}); COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            // Key-changing update: moves a row between index keys (both
            // the old and new key's postings must stay coherent).
            2 => {
                let from = rng.gen_range(0..(i + 1) as i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; UPDATE Audit SET uid = {} WHERE uid = {from}; COMMIT;",
                        from + 10_000
                    ))
                    .unwrap(),
                );
            }
            // Point delete on the indexed column.
            3 => {
                let uid = rng.gen_range(0..(i + 1) as i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; DELETE FROM Audit WHERE uid = {uid}; COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            // Locked point read (in-txn with a write, so it takes the
            // table-IS + key-S + row-S path, not the snapshot path).
            4 => {
                let k = rng.gen_range(0..4i64);
                out.push(
                    Program::parse(&format!(
                        "BEGIN; SELECT @v FROM Counters WHERE k = {k}; \
                         INSERT INTO Audit (uid, note) VALUES ({i}, -1); COMMIT;"
                    ))
                    .unwrap(),
                );
            }
            _ => {
                if out.len() + 2 <= count {
                    out.extend(entangled_pair(i));
                } else {
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn indexes_equal_heap_oracle_after_every_settle(seed in 0u64..10_000) {
        let engine = engine();
        let mut sched = Scheduler::new(
            Arc::clone(&engine),
            SchedulerConfig {
                connections: 8,
                max_attempts: 1000,
                ..SchedulerConfig::default()
            },
        );
        let programs = random_programs(seed, 48);
        // Waves: every run_once ends in a settle; the indexes must be
        // coherent at each boundary, not only at the end.
        for (wave, chunk) in programs.chunks(16).enumerate() {
            for p in chunk {
                sched.submit(p.clone());
            }
            sched.run_once();
            assert_indexes_match_heap(&engine, &format!("seed {seed} wave {wave}"));
        }
        let stats = sched.drain();
        prop_assert_eq!(stats.committed, programs.len(), "seed {}", seed);
        assert_indexes_match_heap(&engine, &format!("seed {seed} final"));
    }
}

#[test]
fn point_lookup_equals_full_scan_select() {
    // Same predicate, both plans: the index probe (storage-level and
    // through the executor's point fast path) must return exactly the
    // full-scan answer.
    let engine = engine();
    let mut sched = Scheduler::new(
        Arc::clone(&engine),
        SchedulerConfig {
            connections: 8,
            max_attempts: 1000,
            ..SchedulerConfig::default()
        },
    );
    for p in random_programs(5, 40) {
        sched.submit(p.clone());
    }
    let stats = sched.drain();
    assert_eq!(stats.failed, 0, "{stats:?}");
    sched.take_results(); // discard the churn results; probed below

    // Storage level: probe vs scan for every live key of every index.
    engine.with_db(|db| {
        for name in db.table_names() {
            let t = db.table(&name).expect("listed table");
            for idx in t.named_indexes().iter() {
                for (key, _) in heap_oracle(t, idx.column()) {
                    let mut probed: Vec<RowId> = idx.probe(&key).to_vec();
                    probed.sort_unstable();
                    let scanned: Vec<RowId> = t
                        .scan()
                        .filter(|(_, row)| row[idx.column()] == key)
                        .map(|(id, _)| id)
                        .collect();
                    assert_eq!(probed, scanned, "{name}.{}", idx.column_name());
                }
            }
        }
    });

    // Executor level: a locked point SELECT (index plan) agrees with the
    // value a heap scan finds for the same key.
    for k in 0..4i64 {
        let expected = engine.with_db(|db| {
            db.table("Counters")
                .unwrap()
                .scan()
                .find(|(_, row)| row[0] == Value::Int(k))
                .map(|(_, row)| row[1].clone())
                .unwrap()
        });
        let before = engine.index_lookups();
        sched.submit(
            Program::parse(&format!(
                "BEGIN; SELECT v AS @v FROM Counters WHERE k = {k}; \
                 INSERT INTO Audit (uid, note) VALUES ({}, -2); COMMIT;",
                900 + k
            ))
            .unwrap(),
        );
        sched.drain();
        let result = sched.take_results().pop().expect("one result");
        assert_eq!(result.status, TxnStatus::Committed);
        assert_eq!(result.env.get("v"), Some(&expected), "k = {k}");
        assert!(
            engine.index_lookups() > before,
            "point SELECT must use the index plan"
        );
    }
}
