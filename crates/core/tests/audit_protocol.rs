//! Tier-1 assertion that the engine's real execution paths are
//! **audit-clean**: debug builds install the strict lock-protocol auditor
//! ([`youtopia_audit::ProtocolAuditor`]) in `Engine::new`, so every lock
//! event this workload produces is checked online against the
//! multigranularity, strict-2PL, latch-discipline, and next-key rules — a
//! violation panics the run. This test additionally pins down that the
//! auditor really is installed and really is seeing events (a silently
//! uninstalled sink would make the whole audit lane vacuous), and that
//! the lock-order graph and run-report counters are live.

use entangled_txn::{Engine, EngineConfig, Program, Scheduler, SchedulerConfig, TxnStatus};
use std::sync::Arc;
use std::time::Duration;

const SETUP: &str = "CREATE TABLE Flights (fno INT, dest TEXT);\
     CREATE TABLE Reserve (uid TEXT, fid INT);\
     CREATE INDEX reserve_uid ON Reserve (uid) USING BTREE;\
     INSERT INTO Flights VALUES (122, 'LA');\
     INSERT INTO Flights VALUES (123, 'LA');";

#[test]
fn workload_is_audit_clean_and_counters_are_live() {
    let engine = Arc::new(Engine::new(EngineConfig {
        lock_timeout: Duration::from_millis(25),
        ..EngineConfig::default()
    }));
    engine.setup(SETUP).unwrap();
    assert!(
        engine.auditor().is_some(),
        "debug/test builds must install the protocol auditor"
    );

    let mut sched = Scheduler::new(
        Arc::clone(&engine),
        SchedulerConfig {
            connections: 4,
            max_attempts: 100,
            ..SchedulerConfig::default()
        },
    );
    for i in 0..12 {
        sched.submit(
            Program::parse(&format!(
                "BEGIN; INSERT INTO Reserve (uid, fid) VALUES ('u{i}', 122); \
                 SELECT fid AS @f FROM Reserve WHERE uid = 'u{i}'; COMMIT;"
            ))
            .unwrap(),
        );
        sched.submit(
            Program::parse("BEGIN; SELECT fno AS @n FROM Flights WHERE dest = 'LA'; COMMIT;")
                .unwrap(),
        );
    }
    let stats = sched.drain();
    for r in sched.take_results() {
        assert_eq!(r.status, TxnStatus::Committed, "client {:?}", r.client);
    }

    // The auditor observed the run (strict mode: reaching here at all
    // means zero violations were flagged).
    assert!(engine.audit_events() > 0, "auditor saw no events");
    assert_eq!(stats.audit_events, engine.audit_events());
    assert!(engine.auditor().unwrap().violations().is_empty());

    // Committed work acquires locks in growth order, so the lock-order
    // graph must have accumulated edges and be serializable.
    let json = engine.lock_order_graph_json().expect("audited build");
    assert!(json.contains("\"edges\""), "graph json malformed: {json}");
    assert!(json.contains("\"cycles\""), "graph json malformed: {json}");

    // Deadlock/timeout counters are wired through (this workload should
    // not need either, but the plumbing must report *something* sane).
    assert_eq!(stats.deadlocks, engine.deadlocks());
    assert_eq!(stats.timeouts, engine.timeouts());
}
