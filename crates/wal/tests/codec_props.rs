//! Property tests for the WAL codec and recovery invariants.

use proptest::prelude::*;
use youtopia_storage::{Schema, Value, ValueType};
use youtopia_wal::{recover, LogRecord, Lsn, Wal};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<i32>().prop_map(Value::Date),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::str),
    ]
}

fn vals() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), 0..5)
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    prop_oneof![
        any::<u64>().prop_map(|tx| LogRecord::Begin { tx }),
        (any::<u64>(), "[a-z]{1,10}", any::<u64>(), vals()).prop_map(|(tx, table, row, values)| {
            LogRecord::Insert {
                tx,
                table,
                row,
                values,
            }
        }),
        (any::<u64>(), "[a-z]{1,10}", any::<u64>(), vals()).prop_map(|(tx, table, row, before)| {
            LogRecord::Delete {
                tx,
                table,
                row,
                before,
            }
        }),
        (any::<u64>(), "[a-z]{1,10}", any::<u64>(), vals(), vals()).prop_map(
            |(tx, table, row, before, after)| LogRecord::Update {
                tx,
                table,
                row,
                before,
                after
            }
        ),
        (any::<u64>(), any::<u64>()).prop_map(|(tx, ts)| LogRecord::Commit { tx, ts }),
        any::<u64>().prop_map(|tx| LogRecord::Abort { tx }),
        (any::<u64>(), prop::collection::vec(any::<u64>(), 1..5))
            .prop_map(|(group, txs)| LogRecord::EntangleGroup { group, txs }),
        any::<u64>().prop_map(|group| LogRecord::GroupCommit { group }),
        (any::<u64>(), prop::collection::vec(any::<u64>(), 0..5)).prop_map(|(ckpt, active)| {
            LogRecord::Checkpoint {
                ckpt,
                active,
                ts: ckpt,
            }
        }),
        (any::<u64>(), prop::collection::vec(any::<u64>(), 1..5))
            .prop_map(|(batch, txs)| LogRecord::CommitBatch { batch, txs }),
        (
            any::<u64>(),
            "[a-z]{1,10}",
            prop::collection::vec((any::<u64>(), vals()), 0..4)
        )
            .prop_map(|(ckpt, name, rows)| LogRecord::CheckpointTable {
                ckpt,
                name,
                schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Str)]),
                rows,
            }),
        any::<u64>().prop_map(|ckpt| LogRecord::CheckpointEnd { ckpt }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode is the identity for every record.
    #[test]
    fn codec_roundtrip(rec in arb_record()) {
        let bytes = rec.encode();
        let (decoded, end) = LogRecord::decode(&bytes, 0).expect("decode");
        prop_assert_eq!(decoded, rec);
        prop_assert_eq!(end, bytes.len());
    }

    /// Sequences of records survive append → scan, and truncating at ANY
    /// byte boundary yields a clean prefix (torn tails never corrupt).
    #[test]
    fn torn_tails_are_clean_prefixes(
        recs in prop::collection::vec(arb_record(), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let wal = Wal::new();
        for r in &recs {
            wal.append(r);
        }
        wal.sync();
        let full = wal.durable_records().expect("scan");
        prop_assert_eq!(full.len(), recs.len());

        // Simulate a torn tail by re-encoding and cutting.
        let mut bytes = Vec::new();
        for r in &recs {
            bytes.extend_from_slice(&r.encode());
        }
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let mut off = 0usize;
        let mut count = 0usize;
        while off < cut {
            match LogRecord::decode(&bytes[..cut], off) {
                Ok((rec, next)) => {
                    prop_assert_eq!(&rec, &recs[count], "prefix must match");
                    off = next;
                    count += 1;
                }
                Err(_) => break, // torn tail detected — fine
            }
        }
        prop_assert!(count <= recs.len());
    }

    /// Recovery is idempotent: recovering the recovered log's implied
    /// records again yields the same winners/losers split.
    #[test]
    fn recovery_partition_is_a_partition(recs in prop::collection::vec(arb_record(), 0..20)) {
        let indexed: Vec<(Lsn, LogRecord)> =
            recs.iter().cloned().enumerate().map(|(i, r)| (Lsn(i as u64), r)).collect();
        let out = recover(&indexed).unwrap();
        for w in &out.winners {
            prop_assert!(!out.losers.contains(w), "tx {w} both winner and loser");
        }
        for w in &out.widowed_rollbacks {
            prop_assert!(out.losers.contains(w), "widowed rollback must be a loser");
        }
    }
}
