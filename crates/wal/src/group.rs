//! Group commit: batching concurrent sync requests behind a leader.
//!
//! The paper's §4 argues that entangled partners must become durable
//! together and that batching their commit points amortizes the expensive
//! sync. This module generalizes that to *every* committer: a transaction
//! that has published its commit batch ([`crate::Wal::publish`]) asks the
//! [`GroupCommitter`] to make its range durable. The first asker becomes
//! the **leader**: it logs a [`LogRecord::CommitBatch`] boundary naming
//! every commit the sync will cover, pays the (simulated) device latency,
//! and syncs once. **Followers** that arrive while a sync is in flight
//! wait on the leader's condvar; whoever is still uncovered when a sync
//! completes elects the next leader. One device sync thus covers many
//! commits — syncs-per-commit drops below 1 as concurrency rises.
//!
//! The device is serial, as a real fsync queue is: even with group commit
//! disabled ([`GroupCommitter::sync_exclusive`]) syncs execute one at a
//! time, which is exactly the cost group commit exists to amortize.

use crate::log::Wal;
use crate::record::LogRecord;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Leader/follower sync batching over a [`Wal`].
#[derive(Debug)]
pub struct GroupCommitter {
    /// Simulated device-sync latency (the fsync cost being amortized).
    sync_latency: Duration,
    inner: Mutex<Inner>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct Inner {
    /// Durable frontier as of the last completed sync.
    durable: u64,
    /// A leader is currently inside the device sync.
    syncing: bool,
    /// `(tx, upto)` commit points awaiting a covering sync; the next
    /// leader names the still-uncovered ones in its `CommitBatch` record
    /// and withdraws the rest (covered by an earlier sync mid-flight).
    pending: Vec<(u64, u64)>,
    /// Completed batches (== `CommitBatch` records written).
    batches: u64,
}

impl GroupCommitter {
    pub fn new(sync_latency: Duration) -> GroupCommitter {
        GroupCommitter {
            sync_latency,
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
        }
    }

    /// Make everything up to `upto` durable, batching with concurrent
    /// callers: lead a sync if none is in flight, otherwise wait for a
    /// sync that covers `upto`. `txs` are the commit points this call
    /// publishes; the covering leader names them in its `CommitBatch`
    /// boundary record (ids covered by a sync that was already mid-flight
    /// are withdrawn instead, never attributed to a later batch). Returns
    /// the batch sequence number that covered the range.
    pub fn sync_covering(&self, wal: &Wal, upto: u64, txs: &[u64]) -> u64 {
        let mut g = self.inner.lock();
        g.pending.extend(txs.iter().map(|&t| (t, upto)));
        loop {
            if g.durable >= upto {
                // Covered by a sync whose leader did not drain us (it was
                // already mid-sync when we enqueued, or our range was
                // durable before we got the lock): withdraw our ids so a
                // later, unrelated batch does not claim them.
                g.pending.retain(|&(t, _)| !txs.contains(&t));
                return g.batches;
            }
            if g.syncing {
                // A leader is mid-sync; its completion wakes us. If that
                // sync predates our publish we loop and lead the next one.
                self.cv.wait(&mut g);
                continue;
            }
            // Become the leader of the next batch: withdraw pending entries
            // an earlier sync already covered (their owners may not have
            // woken to withdraw them yet), then name the rest — only
            // commits this sync newly covers.
            g.syncing = true;
            let batch = g.batches + 1;
            let watermark = g.durable;
            g.pending.retain(|&(_, u)| u > watermark);
            let covered: Vec<u64> = std::mem::take(&mut g.pending)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            drop(g);
            // The boundary record lands before the sync, so a durable
            // CommitBatch implies every listed Commit is durable too.
            wal.append(&LogRecord::CommitBatch {
                batch,
                txs: covered,
            });
            if !self.sync_latency.is_zero() {
                std::thread::sleep(self.sync_latency);
            }
            let durable = wal.sync();
            g = self.inner.lock();
            g.durable = g.durable.max(durable);
            g.batches = batch;
            g.syncing = false;
            self.cv.notify_all();
            // The leader's own range precedes its sync, so the next loop
            // iteration returns.
        }
    }

    /// Sync without batching (group commit disabled): every caller pays
    /// its own serialized device sync — the PR-2-era durability cost this
    /// pipeline exists to amortize. Returns the durable frontier.
    pub fn sync_exclusive(&self, wal: &Wal) -> u64 {
        let mut g = self.inner.lock();
        while g.syncing {
            self.cv.wait(&mut g);
        }
        g.syncing = true;
        drop(g);
        if !self.sync_latency.is_zero() {
            std::thread::sleep(self.sync_latency);
        }
        let durable = wal.sync();
        g = self.inner.lock();
        g.durable = g.durable.max(durable);
        g.syncing = false;
        self.cv.notify_all();
        durable
    }

    /// Completed batch count (one per `CommitBatch` record written).
    pub fn batches(&self) -> u64 {
        self.inner.lock().batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_caller_leads_its_own_sync() {
        let wal = Wal::new();
        let gc = GroupCommitter::new(Duration::ZERO);
        let range = wal.publish(&[
            LogRecord::Begin { tx: 1 },
            LogRecord::Commit { tx: 1, ts: 0 },
        ]);
        let batch = gc.sync_covering(&wal, range.end, &[1]);
        assert_eq!(batch, 1);
        assert_eq!(wal.sync_count(), 1);
        // The boundary record is durable and lists the commit it covered.
        let recs = wal.durable_records().unwrap();
        assert_eq!(
            recs.last().unwrap().1,
            LogRecord::CommitBatch {
                batch: 1,
                txs: vec![1]
            }
        );
        // Already-durable ranges return without another sync.
        let again = gc.sync_covering(&wal, range.end, &[]);
        assert_eq!(again, 1);
        assert_eq!(wal.sync_count(), 1);
    }

    #[test]
    fn concurrent_commits_share_syncs() {
        let wal = Arc::new(Wal::new());
        let gc = Arc::new(GroupCommitter::new(Duration::from_millis(2)));
        let threads: u64 = 8;
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let wal = wal.clone();
                let gc = gc.clone();
                std::thread::spawn(move || {
                    let tx = i + 1;
                    let range =
                        wal.publish(&[LogRecord::Begin { tx }, LogRecord::Commit { tx, ts: 0 }]);
                    gc.sync_covering(&wal, range.end, &[tx]);
                    assert!(wal.durable_len() >= range.end, "sync must cover the range");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // With a 2ms sync latency, 8 commits racing through the committer
        // batch behind leaders: strictly fewer syncs than commits.
        assert!(
            wal.sync_count() < threads,
            "expected batching, got {} syncs for {threads} commits",
            wal.sync_count()
        );
        assert_eq!(gc.batches(), wal.sync_count());
        // Every commit is durable, and every CommitBatch lists only
        // commits whose records precede it.
        let recs = wal.durable_records().unwrap();
        let commits = recs
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Commit { .. }))
            .count();
        assert_eq!(commits as u64, threads);
    }

    #[test]
    fn sync_exclusive_never_batches() {
        let wal = Wal::new();
        let gc = GroupCommitter::new(Duration::ZERO);
        for tx in 1..=4u64 {
            let range = wal.publish(&[LogRecord::Commit { tx, ts: 0 }]);
            let durable = gc.sync_exclusive(&wal);
            assert!(durable >= range.end);
        }
        assert_eq!(wal.sync_count(), 4, "one serialized sync per commit");
        assert_eq!(gc.batches(), 0, "no batch boundaries in exclusive mode");
    }
}
