//! A simulated stable-storage device with explicit sync, crash, and
//! prefix truncation.
//!
//! The paper's prototype made middleware state persistent by serializing it
//! into the DBMS and leaning on the DBMS's recovery (§5.1). We own the whole
//! stack, so durability is modelled explicitly: appends land in a volatile
//! tail until [`StableStorage::sync`] moves the durable frontier;
//! [`StableStorage::crash`] discards everything past that frontier exactly
//! like power loss would. Tests and the recovery suite drive crashes
//! deterministically through this hook.
//!
//! Offsets are **logical**: the device keeps a `head` offset and
//! [`StableStorage::truncate_prefix`] drops the byte prefix up to a
//! checkpoint LSN while every offset-returning API keeps reporting
//! positions in the original, never-truncated coordinate space. LSNs
//! handed out before a truncation therefore stay valid names for the
//! records that survive it.

/// An append-only simulated disk with a truncatable head.
#[derive(Debug, Default, Clone)]
pub struct StableStorage {
    buf: Vec<u8>,
    /// Logical offset of `buf[0]`: everything before it has been
    /// truncated away (reclaimed by a checkpoint).
    head: u64,
    /// Bytes `[head, head + durable)` survive a crash.
    durable: usize,
    /// Count of sync calls (fsync cost accounting in benches).
    syncs: u64,
}

impl StableStorage {
    pub fn new() -> StableStorage {
        StableStorage::default()
    }

    /// Append bytes to the volatile tail; returns the logical write offset.
    pub fn append(&mut self, data: &[u8]) -> u64 {
        let off = self.head + self.buf.len() as u64;
        self.buf.extend_from_slice(data);
        off
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) {
        self.durable = self.buf.len();
        self.syncs += 1;
    }

    /// Simulate power loss: the volatile tail vanishes.
    pub fn crash(&mut self) {
        self.buf.truncate(self.durable);
    }

    /// Drop the byte prefix up to logical offset `upto` (a checkpoint
    /// LSN). Only the durable prefix may be reclaimed — `upto` is clamped
    /// into `[head, durable frontier]` so a truncation can never eat
    /// bytes that might still be lost to a crash, and never goes
    /// backwards. Returns the number of bytes dropped.
    pub fn truncate_prefix(&mut self, upto: u64) -> u64 {
        let upto = upto.clamp(self.head, self.head + self.durable as u64);
        let drop = (upto - self.head) as usize;
        self.buf.drain(..drop);
        self.durable -= drop;
        self.head = upto;
        drop as u64
    }

    /// Logical offset of the first retained byte (0 until the first
    /// truncation).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// The durable prefix (what recovery may read after a crash); its
    /// first byte sits at logical offset [`Self::head`].
    pub fn durable_bytes(&self) -> &[u8] {
        &self.buf[..self.durable]
    }

    /// Everything appended, durable or not (used while the system is up);
    /// starts at logical offset [`Self::head`].
    pub fn all_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Logical end offset: `head + retained bytes`. Monotone across
    /// truncations.
    pub fn len(&self) -> u64 {
        self.head + self.buf.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical durable frontier. Monotone across truncations.
    pub fn durable_len(&self) -> u64 {
        self.head + self.durable as u64
    }

    /// Bytes currently retained on the device (durable or not) — the
    /// restart cost a checkpoint bounds.
    pub fn retained_len(&self) -> u64 {
        self.buf.len() as u64
    }

    pub fn sync_count(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_volatile_until_sync() {
        let mut d = StableStorage::new();
        d.append(b"hello");
        assert_eq!(d.durable_bytes(), b"");
        assert_eq!(d.all_bytes(), b"hello");
        d.sync();
        assert_eq!(d.durable_bytes(), b"hello");
    }

    #[test]
    fn crash_discards_tail() {
        let mut d = StableStorage::new();
        d.append(b"abc");
        d.sync();
        d.append(b"def");
        d.crash();
        assert_eq!(d.all_bytes(), b"abc");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn offsets_and_counters() {
        let mut d = StableStorage::new();
        assert!(d.is_empty());
        assert_eq!(d.append(b"ab"), 0);
        assert_eq!(d.append(b"cd"), 2);
        assert_eq!(d.sync_count(), 0);
        d.sync();
        d.sync();
        assert_eq!(d.sync_count(), 2);
        assert_eq!(d.durable_len(), 4);
    }

    #[test]
    fn truncation_keeps_logical_offsets_stable() {
        let mut d = StableStorage::new();
        d.append(b"old-prefix");
        d.sync();
        assert_eq!(d.truncate_prefix(4), 4);
        assert_eq!(d.head(), 4);
        assert_eq!(d.all_bytes(), b"prefix");
        assert_eq!(d.durable_bytes(), b"prefix");
        // New appends continue in the original coordinate space.
        assert_eq!(d.append(b"!"), 10);
        assert_eq!(d.len(), 11);
        assert_eq!(d.durable_len(), 10);
        d.sync();
        assert_eq!(d.durable_len(), 11);
        assert_eq!(d.retained_len(), 7);
    }

    #[test]
    fn truncation_clamps_to_durable_frontier_and_never_rewinds() {
        let mut d = StableStorage::new();
        d.append(b"abcd");
        d.sync();
        d.append(b"tail"); // volatile
                           // Cannot reclaim past the durable frontier…
        assert_eq!(d.truncate_prefix(100), 4);
        assert_eq!(d.head(), 4);
        assert_eq!(d.all_bytes(), b"tail");
        // …and cannot move the head backwards.
        assert_eq!(d.truncate_prefix(0), 0);
        assert_eq!(d.head(), 4);
        d.crash();
        assert_eq!(d.all_bytes(), b"");
        assert_eq!(d.len(), 4);
    }
}
