//! A simulated stable-storage device with explicit sync and crash.
//!
//! The paper's prototype made middleware state persistent by serializing it
//! into the DBMS and leaning on the DBMS's recovery (§5.1). We own the whole
//! stack, so durability is modelled explicitly: appends land in a volatile
//! tail until [`StableStorage::sync`] moves the durable frontier;
//! [`StableStorage::crash`] discards everything past that frontier exactly
//! like power loss would. Tests and the recovery suite drive crashes
//! deterministically through this hook.

/// An append-only simulated disk.
#[derive(Debug, Default, Clone)]
pub struct StableStorage {
    buf: Vec<u8>,
    /// Bytes `[0, durable)` survive a crash.
    durable: usize,
    /// Count of sync calls (fsync cost accounting in benches).
    syncs: u64,
}

impl StableStorage {
    pub fn new() -> StableStorage {
        StableStorage::default()
    }

    /// Append bytes to the volatile tail; returns the write offset.
    pub fn append(&mut self, data: &[u8]) -> u64 {
        let off = self.buf.len() as u64;
        self.buf.extend_from_slice(data);
        off
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) {
        self.durable = self.buf.len();
        self.syncs += 1;
    }

    /// Simulate power loss: the volatile tail vanishes.
    pub fn crash(&mut self) {
        self.buf.truncate(self.durable);
    }

    /// The durable prefix (what recovery may read after a crash).
    pub fn durable_bytes(&self) -> &[u8] {
        &self.buf[..self.durable]
    }

    /// Everything appended, durable or not (used while the system is up).
    pub fn all_bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn len(&self) -> u64 {
        self.buf.len() as u64
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn durable_len(&self) -> u64 {
        self.durable as u64
    }

    pub fn sync_count(&self) -> u64 {
        self.syncs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_volatile_until_sync() {
        let mut d = StableStorage::new();
        d.append(b"hello");
        assert_eq!(d.durable_bytes(), b"");
        assert_eq!(d.all_bytes(), b"hello");
        d.sync();
        assert_eq!(d.durable_bytes(), b"hello");
    }

    #[test]
    fn crash_discards_tail() {
        let mut d = StableStorage::new();
        d.append(b"abc");
        d.sync();
        d.append(b"def");
        d.crash();
        assert_eq!(d.all_bytes(), b"abc");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn offsets_and_counters() {
        let mut d = StableStorage::new();
        assert!(d.is_empty());
        assert_eq!(d.append(b"ab"), 0);
        assert_eq!(d.append(b"cd"), 2);
        assert_eq!(d.sync_count(), 0);
        d.sync();
        d.sync();
        assert_eq!(d.sync_count(), 2);
        assert_eq!(d.durable_len(), 4);
    }
}
