//! Entanglement-aware crash recovery.
//!
//! Classical part: redo history, undo losers (ARIES-style passes over a
//! log-structured store — the log is the only durable artefact, so redo
//! rebuilds the data plane from DDL records forward).
//!
//! Entangled part (§4 "Persistence and Recovery" of the paper): *"if two
//! transactions entangle and only one manages to commit prior to a crash,
//! both must be rolled back during recovery."* Transactions that answered an
//! entangled query together form a group ([`LogRecord::EntangleGroup`]);
//! groups chain transitively through shared members. A transaction with a
//! durable `Commit` record is still a **loser** if any of its transitive
//! partners failed to commit — this is the widowed-transaction rule
//! projected onto recovery, and the fixpoint below implements it.

//! Sharded part: with per-shard log segments, a transaction (or entangled
//! group) straddling shards commits via a two-phase cross-shard record —
//! [`LogRecord::CrossPrepare`] durable on *every* participant segment is
//! the commit point, [`LogRecord::CrossCommit`] merely shortcuts the
//! participant consultation. [`recover_sharded`] resolves such in-doubt
//! units globally ([`resolve_cross_shard`]), then replays each shard's
//! segment in parallel with the resolution overlaid on its local analysis.

use crate::record::{CodecError, LogRecord, Lsn};
use std::collections::{BTreeMap, BTreeSet};
use youtopia_storage::{Database, RowId};

/// The result of recovery.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The reconstructed database.
    pub db: Database,
    /// Transactions whose effects survived (among replayed records).
    pub winners: BTreeSet<u64>,
    /// Transactions rolled back (incl. entanglement-forced rollbacks).
    pub losers: BTreeSet<u64>,
    /// Transactions that had a durable `Commit` record but were rolled
    /// back because an entanglement partner did not commit. Non-empty only
    /// when the engine crashed between a member commit and its group
    /// commit.
    pub widowed_rollbacks: BTreeSet<u64>,
    /// Group-commit batch boundaries found in the replayed suffix — one
    /// [`LogRecord::CommitBatch`] per completed sync. Recovery sees each
    /// batch as a single durable boundary: a durable boundary implies every
    /// commit it names is durable too.
    pub durable_batches: usize,
    /// The checkpoint image recovery started from (`None` = no complete
    /// checkpoint in the prefix; full replay from the log head).
    pub checkpoint: Option<u64>,
    /// LSN of that checkpoint's begin marker.
    pub checkpoint_lsn: Option<Lsn>,
    /// Log records replayed after the base image — the O(delta) restart
    /// cost checkpointing bounds (O(history) without one).
    pub replayed: usize,
    /// Highest transaction id named anywhere in the durable prefix
    /// (0 if none). A restarted engine must allocate strictly past this,
    /// or fresh transactions would collide with durable history.
    pub max_tx: u64,
    /// Highest commit timestamp named anywhere in the durable prefix —
    /// by a `Commit` record's `ts` or a checkpoint begin marker's `ts`
    /// (0 if none). A restarted engine seals the recovered state as the
    /// committed versions at this timestamp and restarts the snapshot
    /// clock strictly past it, so post-restart snapshots never alias
    /// pre-crash history.
    pub max_commit_ts: u64,
}

/// Locate the last **complete** checkpoint image: the newest
/// [`LogRecord::CheckpointEnd`] whose matching [`LogRecord::Checkpoint`]
/// begin marker is also in the prefix. A checkpoint whose end marker was
/// torn off (crash mid-image) is skipped — recovery falls back to the
/// previous complete image, or to a full replay when none exists. Returns
/// `(begin_index, end_index, ckpt id)`.
fn last_complete_checkpoint(records: &[(Lsn, LogRecord)]) -> Option<(usize, usize, u64)> {
    let mut begins: BTreeMap<u64, usize> = BTreeMap::new();
    let mut complete = None;
    for (i, (_, rec)) in records.iter().enumerate() {
        match rec {
            LogRecord::Checkpoint { ckpt, .. } => {
                begins.insert(*ckpt, i);
            }
            LogRecord::CheckpointEnd { ckpt } => {
                if let Some(&b) = begins.get(ckpt) {
                    complete = Some((b, i, *ckpt));
                }
            }
            _ => {}
        }
    }
    complete
}

/// Highest transaction id named by one record (0 if none).
fn record_max_tx(rec: &LogRecord) -> u64 {
    match rec {
        LogRecord::Begin { tx }
        | LogRecord::Insert { tx, .. }
        | LogRecord::Delete { tx, .. }
        | LogRecord::Update { tx, .. }
        | LogRecord::Commit { tx, .. }
        | LogRecord::Abort { tx } => *tx,
        LogRecord::EntangleGroup { txs, .. }
        | LogRecord::CommitBatch { txs, .. }
        | LogRecord::CrossPrepare { txs, .. } => txs.iter().copied().max().unwrap_or(0),
        LogRecord::Checkpoint { active, .. } => active.iter().copied().max().unwrap_or(0),
        LogRecord::GroupCommit { .. }
        | LogRecord::CreateTable { .. }
        | LogRecord::CreateIndex { .. }
        | LogRecord::CheckpointTable { .. }
        | LogRecord::CheckpointEnd { .. }
        | LogRecord::CrossCommit { .. } => 0,
    }
}

/// The global verdict on cross-shard commit units, computed by
/// [`resolve_cross_shard`] and overlaid on each shard's local analysis:
/// members of a globally-committed unit count as winners even where the
/// local `Commit` record was torn off, and members of a globally-aborted
/// unit lose even where a local `Commit` record *is* durable (the unit's
/// prepare never became durable on every participant).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CrossResolution {
    /// Member transactions of units resolved committed.
    pub committed: BTreeSet<u64>,
    /// Member transactions of units resolved aborted.
    pub aborted: BTreeSet<u64>,
    /// Unit ids resolved committed.
    pub committed_xids: BTreeSet<u64>,
    /// Unit ids resolved aborted (in-doubt units whose prepare was torn
    /// off at least one participant segment).
    pub aborted_xids: BTreeSet<u64>,
}

/// Decide every cross-shard unit named in the given per-shard durable
/// logs. Unit `xid` is **committed** iff any segment holds a
/// [`LogRecord::CrossCommit`] for it, or every shard its
/// [`LogRecord::CrossPrepare`] names holds a durable prepare; otherwise it
/// is aborted. Index `i` of `logs` is shard `i`'s durable record stream.
pub fn resolve_cross_shard(logs: &[Vec<(Lsn, LogRecord)>]) -> CrossResolution {
    // xid -> (required participant shards, member transactions).
    let mut units: BTreeMap<u64, (BTreeSet<u64>, BTreeSet<u64>)> = BTreeMap::new();
    // xid -> shards whose segment holds a durable prepare.
    let mut prepared_on: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut cross_committed: BTreeSet<u64> = BTreeSet::new();
    for (i, log) in logs.iter().enumerate() {
        for (_, rec) in log {
            match rec {
                LogRecord::CrossPrepare { xid, txs, shards } => {
                    let e = units.entry(*xid).or_default();
                    e.0.extend(shards.iter().copied());
                    e.1.extend(txs.iter().copied());
                    prepared_on.entry(*xid).or_default().insert(i as u64);
                }
                LogRecord::CrossCommit { xid } => {
                    cross_committed.insert(*xid);
                }
                _ => {}
            }
        }
    }
    let mut res = CrossResolution::default();
    for (xid, (required, txs)) in units {
        let all_prepared = required
            .iter()
            .all(|s| prepared_on.get(&xid).is_some_and(|p| p.contains(s)));
        if cross_committed.contains(&xid) || all_prepared {
            res.committed.extend(txs);
            res.committed_xids.insert(xid);
        } else {
            res.aborted.extend(txs);
            res.aborted_xids.insert(xid);
        }
    }
    res
}

/// Run analysis, redo and undo over a durable log prefix.
///
/// With a complete checkpoint in the prefix, the base database is loaded
/// from the image's [`LogRecord::CheckpointTable`] records and only the
/// suffix after the image is replayed; restart cost is O(suffix), not
/// O(history). The image is transactionally consistent by the engine's
/// contract (written at a commit-batch boundary with no in-flight work in
/// the shared log), so no undo is needed for pre-checkpoint history.
///
/// Returns [`CodecError::Corrupt`] when the durable prefix is internally
/// inconsistent — e.g. a checkpoint image or redo record referencing
/// table state the log never established. A corrupt log is an operator
/// problem, not a panic.
pub fn recover(records: &[(Lsn, LogRecord)]) -> Result<RecoveryOutcome, CodecError> {
    recover_with(records, None)
}

/// [`recover`] with an optional cross-shard resolution overlay — the
/// per-shard leg of [`recover_sharded`]. The overlay is applied to the
/// local analysis before the entanglement fixpoint: globally-committed
/// members join the committed set (their `Commit` record may live only on
/// a partner segment, or have been torn off locally), globally-aborted
/// members are expelled from it (a durable local `Commit` does not count
/// when the unit's prepare was torn elsewhere).
pub fn recover_with(
    records: &[(Lsn, LogRecord)],
    cross: Option<&CrossResolution>,
) -> Result<RecoveryOutcome, CodecError> {
    // `max_tx` and `max_commit_ts` range over the WHOLE prefix (including
    // records before the checkpoint): tx-id allocation and the snapshot
    // clock must both clear everything durable.
    let max_tx = records
        .iter()
        .map(|(_, r)| record_max_tx(r))
        .max()
        .unwrap_or(0);
    let max_commit_ts = records
        .iter()
        .map(|(_, r)| match r {
            LogRecord::Commit { ts, .. } | LogRecord::Checkpoint { ts, .. } => *ts,
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    // ---- Base image (last complete checkpoint, if any) ----
    let image = last_complete_checkpoint(records);
    let (mut db, suffix, checkpoint, checkpoint_lsn, mut seen) = match image {
        Some((begin, end, ckpt)) => {
            let mut db = Database::new();
            for (_, rec) in &records[begin..=end] {
                if let LogRecord::CheckpointTable {
                    ckpt: c,
                    name,
                    schema,
                    rows,
                } = rec
                {
                    if *c != ckpt {
                        continue;
                    }
                    db.create_or_replace_table(name, schema.clone());
                    let t = db
                        .table_mut(name)
                        .map_err(|_| CodecError::Corrupt("checkpoint image lost its own table"))?;
                    for (row, values) in rows {
                        let _ = t.insert_at(RowId(*row), values.clone());
                    }
                }
            }
            // Index definitions re-logged inside the image (second pass so
            // a definition never races its table's CheckpointTable record).
            // Creation rebuilds contents from the just-loaded heap.
            for (_, rec) in &records[begin..=end] {
                if let LogRecord::CreateIndex {
                    table,
                    name,
                    columns,
                    kind,
                } = rec
                {
                    let cols: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                    if let Ok(t) = db.table_mut(table) {
                        let _ = t.create_named_index(name, &cols, *kind);
                    }
                }
            }
            // Fuzzy contract: transactions active at checkpoint time have
            // no effects in the image; they lose unless the suffix commits
            // them.
            let active: BTreeSet<u64> = match &records[begin].1 {
                LogRecord::Checkpoint { active, .. } => active.iter().copied().collect(),
                _ => BTreeSet::new(),
            };
            (
                db,
                &records[end + 1..],
                Some(ckpt),
                Some(records[begin].0),
                active,
            )
        }
        None => (Database::new(), records, None, None, BTreeSet::new()),
    };

    // ---- Analysis (suffix only) ----
    let mut committed: BTreeSet<u64> = BTreeSet::new();
    let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut durable_batches = 0usize;
    for (_, rec) in suffix {
        match rec {
            LogRecord::Begin { tx }
            | LogRecord::Insert { tx, .. }
            | LogRecord::Delete { tx, .. }
            | LogRecord::Update { tx, .. }
            | LogRecord::Abort { tx } => {
                seen.insert(*tx);
            }
            LogRecord::Commit { tx, .. } => {
                seen.insert(*tx);
                committed.insert(*tx);
            }
            LogRecord::EntangleGroup { group, txs } => {
                seen.extend(txs.iter().copied());
                groups
                    .entry(*group)
                    .or_default()
                    .extend(txs.iter().copied());
            }
            // A durable batch boundary confirms every commit it names: the
            // leader appends it after the named Commit records and before
            // the sync, so the batch is durable as one unit.
            LogRecord::CommitBatch { txs, .. } => {
                durable_batches += 1;
                seen.extend(txs.iter().copied());
                committed.extend(txs.iter().copied());
            }
            // Members of a cross-shard unit are known to this segment even
            // when their redo lives elsewhere; the overlay decides them.
            LogRecord::CrossPrepare { txs, .. } => {
                seen.extend(txs.iter().copied());
            }
            LogRecord::GroupCommit { .. }
            | LogRecord::CreateTable { .. }
            | LogRecord::CreateIndex { .. }
            | LogRecord::Checkpoint { .. }
            | LogRecord::CheckpointTable { .. }
            | LogRecord::CheckpointEnd { .. }
            | LogRecord::CrossCommit { .. } => {}
        }
    }

    // Cross-shard overlay: global verdicts supersede local evidence.
    if let Some(res) = cross {
        committed.extend(res.committed.iter().copied());
        for t in &res.aborted {
            committed.remove(t);
        }
    }

    // Entanglement fixpoint: a group with any non-winner member sinks all
    // of its members. Chains propagate through shared members.
    let mut winners = committed.clone();
    loop {
        let mut changed = false;
        for txs in groups.values() {
            if txs.iter().any(|t| !winners.contains(t)) {
                for t in txs {
                    changed |= winners.remove(t);
                }
            }
        }
        if !changed {
            break;
        }
    }
    let widowed_rollbacks: BTreeSet<u64> = committed.difference(&winners).copied().collect();
    let losers: BTreeSet<u64> = seen.difference(&winners).copied().collect();

    // ---- Redo (history since the image) ----
    for (_, rec) in suffix {
        match rec {
            LogRecord::CreateTable { name, schema } => {
                db.create_or_replace_table(name, schema.clone());
            }
            // Re-create the definition; the table's mutators keep its
            // contents current through the rest of redo and undo.
            LogRecord::CreateIndex {
                table,
                name,
                columns,
                kind,
            } if db.has_table(table) => {
                let cols: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                let _ = db
                    .table_mut(table)
                    .map_err(|_| CodecError::Corrupt("redo/undo target table vanished"))?
                    .create_named_index(name, &cols, *kind);
            }
            LogRecord::Insert {
                table, row, values, ..
            } if db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .map_err(|_| CodecError::Corrupt("redo/undo target table vanished"))?
                    .insert_at(RowId(*row), values.clone());
            }
            LogRecord::Delete { table, row, .. } if db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .map_err(|_| CodecError::Corrupt("redo/undo target table vanished"))?
                    .delete(RowId(*row));
            }
            LogRecord::Update {
                table, row, after, ..
            } if db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .map_err(|_| CodecError::Corrupt("redo/undo target table vanished"))?
                    .update(RowId(*row), after.clone());
            }
            _ => {}
        }
    }

    // ---- Undo (losers, in reverse order; losers have no pre-image
    // records by the checkpoint's consistency contract) ----
    for (_, rec) in suffix.iter().rev() {
        match rec {
            LogRecord::Insert { tx, table, row, .. }
                if losers.contains(tx) && db.has_table(table) =>
            {
                let _ = db
                    .table_mut(table)
                    .map_err(|_| CodecError::Corrupt("redo/undo target table vanished"))?
                    .delete(RowId(*row));
            }
            LogRecord::Delete {
                tx,
                table,
                row,
                before,
            } if losers.contains(tx) && db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .map_err(|_| CodecError::Corrupt("redo/undo target table vanished"))?
                    .insert_at(RowId(*row), before.clone());
            }
            LogRecord::Update {
                tx,
                table,
                row,
                before,
                ..
            } if losers.contains(tx) && db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .map_err(|_| CodecError::Corrupt("redo/undo target table vanished"))?
                    .update(RowId(*row), before.clone());
            }
            _ => {}
        }
    }

    // Redo/undo run through the table mutators, which defer index-posting
    // removal (history-union postings). A recovered database has no
    // in-flight readers pinning old versions, so settle the postings to
    // exactly the live heap before handing the database over.
    for name in db.table_names() {
        db.table_mut(&name)
            .map_err(|_| CodecError::Corrupt("recovered catalog lost a listed table"))?
            .resync_named_indexes();
    }

    Ok(RecoveryOutcome {
        db,
        winners,
        losers,
        widowed_rollbacks,
        durable_batches,
        checkpoint,
        checkpoint_lsn,
        replayed: suffix.len(),
        max_tx,
        max_commit_ts,
    })
}

/// The result of recovering a set of per-shard log segments.
#[derive(Debug)]
pub struct ShardedRecoveryOutcome {
    /// Per-shard outcomes, indexed by shard: each `db` holds only that
    /// shard's table partition.
    pub shards: Vec<RecoveryOutcome>,
    /// The merged database (tables are disjoint across shards by the
    /// partitioning rule, so the merge is a union).
    pub db: Database,
    /// The cross-shard verdicts the per-shard replays were overlaid with.
    pub resolution: CrossResolution,
    /// Highest transaction id named on any segment.
    pub max_tx: u64,
    /// Highest commit timestamp named on any segment.
    pub max_commit_ts: u64,
}

/// Recover N per-shard log segments: resolve cross-shard in-doubt units
/// globally, then replay every shard **in parallel** (one thread per
/// shard) with the resolution overlaid on its local analysis, and merge
/// the per-shard partitions. With a single segment and no cross-shard
/// records this is exactly [`recover`].
pub fn recover_sharded(
    logs: &[Vec<(Lsn, LogRecord)>],
) -> Result<ShardedRecoveryOutcome, CodecError> {
    let resolution = resolve_cross_shard(logs);
    let mut slots: Vec<Option<Result<RecoveryOutcome, CodecError>>> = Vec::new();
    slots.resize_with(logs.len(), || None);
    std::thread::scope(|scope| {
        for (log, slot) in logs.iter().zip(slots.iter_mut()) {
            let res = &resolution;
            scope.spawn(move || {
                *slot = Some(recover_with(log, Some(res)));
            });
        }
    });
    let mut shards: Vec<RecoveryOutcome> = Vec::with_capacity(slots.len());
    for slot in slots {
        let out = slot.ok_or(CodecError::Corrupt("shard recovery produced no outcome"))??;
        shards.push(out);
    }
    let mut db = Database::new();
    for out in &shards {
        for t in out.db.clone().into_tables() {
            db.adopt_table(t);
        }
    }
    let max_tx = shards.iter().map(|s| s.max_tx).max().unwrap_or(0);
    let max_commit_ts = shards.iter().map(|s| s.max_commit_ts).max().unwrap_or(0);
    Ok(ShardedRecoveryOutcome {
        shards,
        db,
        resolution,
        max_tx,
        max_commit_ts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Wal;
    use youtopia_storage::{Schema, Value, ValueType};

    fn setup_wal() -> Wal {
        let wal = Wal::new();
        wal.append(&LogRecord::CreateTable {
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
        });
        wal
    }

    fn insert(wal: &Wal, tx: u64, row: u64, uid: i64, fid: i64) {
        wal.append(&LogRecord::Insert {
            tx,
            table: "Reserve".into(),
            row,
            values: vec![Value::Int(uid), Value::Int(fid)],
        });
    }

    #[test]
    fn committed_work_survives() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.db.table("Reserve").unwrap().len(), 1);
        assert!(out.winners.contains(&1));
        assert!(out.losers.is_empty());
    }

    #[test]
    fn uncommitted_work_rolled_back() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.sync(); // data durable, commit record not
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.db.table("Reserve").unwrap().len(), 0);
        assert!(out.losers.contains(&1));
    }

    #[test]
    fn updates_and_deletes_undone_with_before_images() {
        let wal = setup_wal();
        // t1 commits an insert.
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        // t2 updates then deletes, but never commits.
        wal.append(&LogRecord::Begin { tx: 2 });
        wal.append(&LogRecord::Update {
            tx: 2,
            table: "Reserve".into(),
            row: 0,
            before: vec![Value::Int(10), Value::Int(122)],
            after: vec![Value::Int(10), Value::Int(999)],
        });
        wal.append(&LogRecord::Delete {
            tx: 2,
            table: "Reserve".into(),
            row: 0,
            before: vec![Value::Int(10), Value::Int(999)],
        });
        wal.sync();
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(RowId(0)).unwrap(),
            &vec![Value::Int(10), Value::Int(122)]
        );
    }

    #[test]
    fn widowed_commit_rolled_back_with_partner() {
        // The paper's rule: t1 and t2 entangled; t1's commit is durable but
        // t2 never committed → recovery rolls BOTH back.
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        wal.append(&LogRecord::Begin { tx: 2 });
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        insert(&wal, 1, 0, 10, 122);
        insert(&wal, 2, 1, 20, 122);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.crash(); // t2's commit never happened
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(
            out.db.table("Reserve").unwrap().len(),
            0,
            "both rolled back"
        );
        assert_eq!(out.widowed_rollbacks, BTreeSet::from([1]));
        assert_eq!(out.losers, BTreeSet::from([1, 2]));
    }

    #[test]
    fn whole_group_commit_survives() {
        let wal = setup_wal();
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        insert(&wal, 1, 0, 10, 122);
        insert(&wal, 2, 1, 20, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.append_sync(&LogRecord::GroupCommit { group: 1 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.db.table("Reserve").unwrap().len(), 2);
        assert_eq!(out.winners, BTreeSet::from([1, 2]));
        assert!(out.widowed_rollbacks.is_empty());
    }

    #[test]
    fn transitive_group_rollback_chains() {
        // Groups {1,2} and {2,3}: if 3 is unresolved, 2 sinks, then 1 sinks.
        let wal = setup_wal();
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        wal.append(&LogRecord::EntangleGroup {
            group: 2,
            txs: vec![2, 3],
        });
        insert(&wal, 1, 0, 1, 1);
        insert(&wal, 2, 1, 2, 2);
        insert(&wal, 3, 2, 3, 3);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash(); // 3 never committed
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.db.table("Reserve").unwrap().len(), 0);
        assert_eq!(out.losers, BTreeSet::from([1, 2, 3]));
        assert_eq!(out.widowed_rollbacks, BTreeSet::from([1, 2]));
    }

    #[test]
    fn independent_transactions_unaffected_by_group_rollback() {
        let wal = setup_wal();
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        insert(&wal, 1, 0, 1, 1);
        insert(&wal, 3, 1, 3, 3); // classical bystander
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append_sync(&LogRecord::Commit { tx: 3, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId(1)).unwrap()[0], Value::Int(3));
        assert!(out.winners.contains(&3));
        assert!(!out.winners.contains(&1));
    }

    #[test]
    fn commit_batch_confirms_its_commits_and_counts_boundaries() {
        // The group-commit pipeline's shape: each member publishes
        // [Begin, writes, Commit] contiguously, the sync leader bounds the
        // batch with CommitBatch before syncing.
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append(&LogRecord::CommitBatch {
            batch: 1,
            txs: vec![1],
        });
        wal.sync();
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.durable_batches, 1);
        assert!(out.winners.contains(&1));
        assert_eq!(out.db.table("Reserve").unwrap().len(), 1);
    }

    #[test]
    fn crash_inside_a_batch_keeps_group_atomicity() {
        // Entangled pair published in one batch; the torn tail cuts after
        // member 1's commit but before member 2's. The EntangleGroup record
        // precedes both commits, so recovery must sink the whole group.
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 122);
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.sync(); // crash point: inside the batch, before Commit{2}
        wal.append(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.append(&LogRecord::CommitBatch {
            batch: 1,
            txs: vec![1, 2],
        });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(
            out.db.table("Reserve").unwrap().len(),
            0,
            "no durable widow"
        );
        assert_eq!(out.widowed_rollbacks, BTreeSet::from([1]));
        assert_eq!(out.durable_batches, 0, "the batch boundary was torn off");
    }

    #[test]
    fn empty_log_recovers_to_empty_db() {
        let out = recover(&[]).unwrap();
        assert!(out.db.table_names().is_empty());
        assert!(out.winners.is_empty());
        assert!(out.losers.is_empty());
        assert_eq!(out.checkpoint, None);
        assert_eq!(out.max_tx, 0);
        assert_eq!(out.replayed, 0);
    }

    /// A full checkpoint image for one `Reserve` table with the given rows.
    fn image(wal: &Wal, ckpt: u64, rows: Vec<(u64, Vec<Value>)>) {
        wal.append(&LogRecord::Checkpoint {
            ckpt,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows,
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt });
    }

    #[test]
    fn recovery_starts_from_last_complete_checkpoint() {
        let wal = Wal::new();
        // Pre-checkpoint history that must NOT be replayed (tx 1 would
        // insert row 0; the image supersedes it with different contents).
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 1, 1);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        image(&wal, 1, vec![(0, vec![Value::Int(99), Value::Int(122)])]);
        // Post-checkpoint suffix: tx 2 commits another row.
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 123);
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.checkpoint, Some(1));
        assert_eq!(out.replayed, 3, "only the suffix is replayed");
        assert_eq!(out.max_tx, 2);
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get(RowId(0)).unwrap(),
            &vec![Value::Int(99), Value::Int(122)],
            "the image, not the pre-checkpoint history, is the base"
        );
        assert!(out.winners.contains(&2));
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous_image() {
        let wal = Wal::new();
        image(&wal, 1, vec![(0, vec![Value::Int(1), Value::Int(122)])]);
        // Suffix after the first image.
        wal.append(&LogRecord::Begin { tx: 5 });
        insert(&wal, 5, 1, 2, 123);
        wal.append(&LogRecord::Commit { tx: 5, ts: 0 });
        // Second checkpoint begins but its end marker is torn off.
        wal.append(&LogRecord::Checkpoint {
            ckpt: 2,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt: 2,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows: vec![(7, vec![Value::Int(777), Value::Int(7)])],
        });
        wal.sync();
        wal.append(&LogRecord::CheckpointEnd { ckpt: 2 }); // lost in the crash
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.checkpoint, Some(1), "torn image 2 skipped");
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 2, "image 1 + replayed tx 5");
        assert!(t.get(RowId(7)).is_none(), "torn image contributes nothing");
        assert!(out.winners.contains(&5));
    }

    #[test]
    fn checkpoint_active_transactions_lose_unless_suffix_commits_them() {
        let wal = Wal::new();
        wal.append(&LogRecord::Checkpoint {
            ckpt: 1,
            active: vec![3, 4],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt: 1 });
        wal.append_sync(&LogRecord::Commit { tx: 4, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert!(
            out.losers.contains(&3),
            "active at checkpoint, never committed"
        );
        assert!(out.winners.contains(&4), "committed in the suffix");
        assert_eq!(out.max_tx, 4);
    }

    #[test]
    fn recovery_after_truncation_replays_only_the_retained_suffix() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        // Checkpoint the committed state, sync, truncate to the image.
        let begin = wal.append(&LogRecord::Checkpoint {
            ckpt: 1,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt: 1,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows: vec![(0, vec![Value::Int(10), Value::Int(122)])],
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt: 1 });
        wal.sync();
        let dropped = wal.truncate_prefix(begin);
        assert!(dropped > 0);
        // Post-truncation traffic.
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 123);
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash();
        let records = wal.durable_records().unwrap();
        assert_eq!(records[0].0, begin, "log head is the checkpoint begin LSN");
        let out = recover(&records).unwrap();
        assert_eq!(out.checkpoint, Some(1));
        assert_eq!(out.checkpoint_lsn, Some(begin));
        assert_eq!(out.db.table("Reserve").unwrap().len(), 2);
        assert_eq!(out.max_tx, 2);
    }

    #[test]
    fn index_definition_recovered_and_contents_rebuilt_from_heap() {
        use youtopia_storage::IndexKind;
        let wal = setup_wal();
        wal.append(&LogRecord::CreateIndex {
            table: "Reserve".into(),
            name: "reserve_uid".into(),
            columns: vec!["uid".into()],
            kind: IndexKind::Hash,
        });
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        insert(&wal, 1, 1, 20, 122);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
        // Loser traffic whose undo must also keep the index coherent.
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 2, 30, 123);
        wal.sync();
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        let t = out.db.table("Reserve").unwrap();
        let idx = t.named_indexes().get("reserve_uid").unwrap();
        assert_eq!(idx.probe(&Value::Int(10)), &[RowId(0)]);
        assert_eq!(idx.probe(&Value::Int(20)), &[RowId(1)]);
        assert!(idx.probe(&Value::Int(30)).is_empty(), "loser undone");
    }

    #[test]
    fn index_definition_survives_truncation_via_checkpoint_image() {
        use youtopia_storage::IndexKind;
        let wal = setup_wal();
        wal.append(&LogRecord::CreateIndex {
            table: "Reserve".into(),
            name: "reserve_uid".into(),
            columns: vec!["uid".into()],
            kind: IndexKind::Btree,
        });
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        // The checkpoint image re-logs the definition after the table.
        let begin = wal.append(&LogRecord::Checkpoint {
            ckpt: 1,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt: 1,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows: vec![(0, vec![Value::Int(10), Value::Int(122)])],
        });
        wal.append(&LogRecord::CreateIndex {
            table: "Reserve".into(),
            name: "reserve_uid".into(),
            columns: vec!["uid".into()],
            kind: IndexKind::Btree,
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt: 1 });
        wal.sync();
        // Truncation drops the original CreateIndex record entirely.
        assert!(wal.truncate_prefix(begin) > 0);
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 123);
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        let t = out.db.table("Reserve").unwrap();
        let idx = t.named_indexes().get("reserve_uid").unwrap();
        assert_eq!(idx.kind(), IndexKind::Btree);
        assert_eq!(idx.probe(&Value::Int(10)), &[RowId(0)]);
        assert_eq!(idx.probe(&Value::Int(20)), &[RowId(1)], "suffix maintained");
    }

    /// Shard 0 owns `Reserve`, shard 1 owns `Hotels`; one cross-shard
    /// transaction `tx` inserts a row on each. Returns the two logs with
    /// everything up to and including the prepares durable on shards where
    /// `sync[i]` is true (the `CrossCommit` shortcut records are appended
    /// un-synced, as the engine does).
    fn cross_shard_logs(sync: [bool; 2]) -> [Wal; 2] {
        let w0 = Wal::new();
        let w1 = Wal::new();
        w0.append(&LogRecord::CreateTable {
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
        });
        w1.append(&LogRecord::CreateTable {
            name: "Hotels".into(),
            schema: Schema::of(&[("hid", ValueType::Int), ("city", ValueType::Int)]),
        });
        w0.sync();
        w1.sync();
        let prep = LogRecord::CrossPrepare {
            xid: 1,
            txs: vec![7],
            shards: vec![0, 1],
        };
        insert(&w0, 7, 0, 10, 122);
        w0.append(&prep);
        w0.append(&LogRecord::Commit { tx: 7, ts: 5 });
        w1.append(&LogRecord::Insert {
            tx: 7,
            table: "Hotels".into(),
            row: 0,
            values: vec![Value::Int(3), Value::Int(9)],
        });
        w1.append(&prep);
        w1.append(&LogRecord::Commit { tx: 7, ts: 5 });
        if sync[0] {
            w0.sync();
        }
        if sync[1] {
            w1.sync();
        }
        // Phase two: the shortcut record, never force-synced.
        w0.append(&LogRecord::CrossCommit { xid: 1 });
        w1.append(&LogRecord::CrossCommit { xid: 1 });
        w0.crash();
        w1.crash();
        [w0, w1]
    }

    fn durable(logs: &[Wal]) -> Vec<Vec<(Lsn, LogRecord)>> {
        logs.iter().map(|w| w.durable_records().unwrap()).collect()
    }

    #[test]
    fn cross_shard_unit_commits_when_every_prepare_is_durable() {
        let logs = cross_shard_logs([true, true]);
        let out = recover_sharded(&durable(&logs)).unwrap();
        assert_eq!(out.resolution.committed_xids, BTreeSet::from([1]));
        assert_eq!(out.db.table("Reserve").unwrap().len(), 1);
        assert_eq!(out.db.table("Hotels").unwrap().len(), 1);
        assert!(out.shards[0].winners.contains(&7));
        assert!(out.shards[1].winners.contains(&7));
        assert_eq!(out.max_tx, 7);
        assert_eq!(out.max_commit_ts, 5);
    }

    #[test]
    fn torn_prepare_on_one_shard_aborts_the_unit_everywhere() {
        // Shard 0's prepare AND local commit are durable; shard 1's tail
        // (prepare + commit) was torn off. Without the global resolution,
        // shard 0 would keep a half-committed unit.
        let logs = cross_shard_logs([true, false]);
        let out = recover_sharded(&durable(&logs)).unwrap();
        assert_eq!(out.resolution.aborted_xids, BTreeSet::from([1]));
        assert_eq!(
            out.db.table("Reserve").unwrap().len(),
            0,
            "durable local Commit overridden by the missing partner prepare"
        );
        assert_eq!(out.db.table("Hotels").unwrap().len(), 0);
        assert!(out.shards[0].losers.contains(&7));
    }

    #[test]
    fn cross_commit_shortcut_decides_unit_when_partner_log_truncated() {
        // Shard 0 checkpointed and truncated its segment past the prepare
        // (its image already contains the unit's effects); shard 1 still
        // holds its prepare. The durable CrossCommit on shard 1 must keep
        // the unit committed — consulting shard 0 would find nothing.
        let w0 = Wal::new();
        let w1 = Wal::new();
        w1.append(&LogRecord::CreateTable {
            name: "Hotels".into(),
            schema: Schema::of(&[("hid", ValueType::Int), ("city", ValueType::Int)]),
        });
        w1.append(&LogRecord::Insert {
            tx: 7,
            table: "Hotels".into(),
            row: 0,
            values: vec![Value::Int(3), Value::Int(9)],
        });
        w1.append(&LogRecord::CrossPrepare {
            xid: 1,
            txs: vec![7],
            shards: vec![0, 1],
        });
        w1.append(&LogRecord::Commit { tx: 7, ts: 5 });
        w1.append(&LogRecord::CrossCommit { xid: 1 });
        w1.sync();
        w1.crash();
        let out = recover_sharded(&durable(&[w0, w1])).unwrap();
        assert_eq!(out.resolution.committed_xids, BTreeSet::from([1]));
        assert_eq!(out.db.table("Hotels").unwrap().len(), 1);
    }

    #[test]
    fn entangled_group_straddling_shards_sinks_as_a_unit() {
        // Group {1, 2}: tx 1 writes shard 0, tx 2 writes shard 1. The
        // EntangleGroup record names the full membership on both segments;
        // shard 1's prepare is torn off, so BOTH members must roll back —
        // the widowed-transaction rule across segments.
        let w0 = setup_wal();
        let w1 = Wal::new();
        w1.append(&LogRecord::CreateTable {
            name: "Hotels".into(),
            schema: Schema::of(&[("hid", ValueType::Int), ("city", ValueType::Int)]),
        });
        w0.sync();
        w1.sync();
        let eg = LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        };
        let prep = LogRecord::CrossPrepare {
            xid: 9,
            txs: vec![1, 2],
            shards: vec![0, 1],
        };
        insert(&w0, 1, 0, 10, 122);
        w0.append(&eg);
        w0.append(&prep);
        w0.append(&LogRecord::Commit { tx: 1, ts: 4 });
        w0.append(&LogRecord::Commit { tx: 2, ts: 4 });
        w0.sync();
        w1.append(&LogRecord::Insert {
            tx: 2,
            table: "Hotels".into(),
            row: 0,
            values: vec![Value::Int(3), Value::Int(9)],
        });
        w1.append(&eg);
        w1.append(&prep); // torn off below
        w0.crash();
        w1.crash();
        let out = recover_sharded(&durable(&[w0, w1])).unwrap();
        assert_eq!(out.resolution.aborted_xids, BTreeSet::from([9]));
        assert_eq!(out.db.table("Reserve").unwrap().len(), 0, "no widow");
        assert_eq!(out.db.table("Hotels").unwrap().len(), 0);
        assert!(out.shards[0].losers.contains(&1));
        assert!(out.shards[0].losers.contains(&2));
    }

    #[test]
    fn single_segment_recover_sharded_matches_plain_recover() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 2 });
        wal.crash();
        let records = wal.durable_records().unwrap();
        let plain = recover(&records).unwrap();
        let sharded = recover_sharded(std::slice::from_ref(&records)).unwrap();
        assert_eq!(sharded.shards.len(), 1);
        assert_eq!(sharded.db.canonical(), plain.db.canonical());
        assert_eq!(sharded.shards[0].winners, plain.winners);
        assert_eq!(sharded.max_tx, plain.max_tx);
        assert_eq!(sharded.max_commit_ts, plain.max_commit_ts);
        assert!(sharded.resolution.committed_xids.is_empty());
    }

    #[test]
    fn explicit_abort_is_a_loser_without_widow_status() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 1, 1);
        wal.append_sync(&LogRecord::Abort { tx: 1 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap()).unwrap();
        assert_eq!(out.db.table("Reserve").unwrap().len(), 0);
        assert!(out.losers.contains(&1));
        assert!(out.widowed_rollbacks.is_empty());
    }
}
