//! Entanglement-aware crash recovery.
//!
//! Classical part: redo history, undo losers (ARIES-style passes over a
//! log-structured store — the log is the only durable artefact, so redo
//! rebuilds the data plane from DDL records forward).
//!
//! Entangled part (§4 "Persistence and Recovery" of the paper): *"if two
//! transactions entangle and only one manages to commit prior to a crash,
//! both must be rolled back during recovery."* Transactions that answered an
//! entangled query together form a group ([`LogRecord::EntangleGroup`]);
//! groups chain transitively through shared members. A transaction with a
//! durable `Commit` record is still a **loser** if any of its transitive
//! partners failed to commit — this is the widowed-transaction rule
//! projected onto recovery, and the fixpoint below implements it.

use crate::record::{LogRecord, Lsn};
use std::collections::{BTreeMap, BTreeSet};
use youtopia_storage::{Database, RowId};

/// The result of recovery.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The reconstructed database.
    pub db: Database,
    /// Transactions whose effects survived (among replayed records).
    pub winners: BTreeSet<u64>,
    /// Transactions rolled back (incl. entanglement-forced rollbacks).
    pub losers: BTreeSet<u64>,
    /// Transactions that had a durable `Commit` record but were rolled
    /// back because an entanglement partner did not commit. Non-empty only
    /// when the engine crashed between a member commit and its group
    /// commit.
    pub widowed_rollbacks: BTreeSet<u64>,
    /// Group-commit batch boundaries found in the replayed suffix — one
    /// [`LogRecord::CommitBatch`] per completed sync. Recovery sees each
    /// batch as a single durable boundary: a durable boundary implies every
    /// commit it names is durable too.
    pub durable_batches: usize,
    /// The checkpoint image recovery started from (`None` = no complete
    /// checkpoint in the prefix; full replay from the log head).
    pub checkpoint: Option<u64>,
    /// LSN of that checkpoint's begin marker.
    pub checkpoint_lsn: Option<Lsn>,
    /// Log records replayed after the base image — the O(delta) restart
    /// cost checkpointing bounds (O(history) without one).
    pub replayed: usize,
    /// Highest transaction id named anywhere in the durable prefix
    /// (0 if none). A restarted engine must allocate strictly past this,
    /// or fresh transactions would collide with durable history.
    pub max_tx: u64,
    /// Highest commit timestamp named anywhere in the durable prefix —
    /// by a `Commit` record's `ts` or a checkpoint begin marker's `ts`
    /// (0 if none). A restarted engine seals the recovered state as the
    /// committed versions at this timestamp and restarts the snapshot
    /// clock strictly past it, so post-restart snapshots never alias
    /// pre-crash history.
    pub max_commit_ts: u64,
}

/// Locate the last **complete** checkpoint image: the newest
/// [`LogRecord::CheckpointEnd`] whose matching [`LogRecord::Checkpoint`]
/// begin marker is also in the prefix. A checkpoint whose end marker was
/// torn off (crash mid-image) is skipped — recovery falls back to the
/// previous complete image, or to a full replay when none exists. Returns
/// `(begin_index, end_index, ckpt id)`.
fn last_complete_checkpoint(records: &[(Lsn, LogRecord)]) -> Option<(usize, usize, u64)> {
    let mut begins: BTreeMap<u64, usize> = BTreeMap::new();
    let mut complete = None;
    for (i, (_, rec)) in records.iter().enumerate() {
        match rec {
            LogRecord::Checkpoint { ckpt, .. } => {
                begins.insert(*ckpt, i);
            }
            LogRecord::CheckpointEnd { ckpt } => {
                if let Some(&b) = begins.get(ckpt) {
                    complete = Some((b, i, *ckpt));
                }
            }
            _ => {}
        }
    }
    complete
}

/// Highest transaction id named by one record (0 if none).
fn record_max_tx(rec: &LogRecord) -> u64 {
    match rec {
        LogRecord::Begin { tx }
        | LogRecord::Insert { tx, .. }
        | LogRecord::Delete { tx, .. }
        | LogRecord::Update { tx, .. }
        | LogRecord::Commit { tx, .. }
        | LogRecord::Abort { tx } => *tx,
        LogRecord::EntangleGroup { txs, .. } | LogRecord::CommitBatch { txs, .. } => {
            txs.iter().copied().max().unwrap_or(0)
        }
        LogRecord::Checkpoint { active, .. } => active.iter().copied().max().unwrap_or(0),
        LogRecord::GroupCommit { .. }
        | LogRecord::CreateTable { .. }
        | LogRecord::CreateIndex { .. }
        | LogRecord::CheckpointTable { .. }
        | LogRecord::CheckpointEnd { .. } => 0,
    }
}

/// Run analysis, redo and undo over a durable log prefix.
///
/// With a complete checkpoint in the prefix, the base database is loaded
/// from the image's [`LogRecord::CheckpointTable`] records and only the
/// suffix after the image is replayed; restart cost is O(suffix), not
/// O(history). The image is transactionally consistent by the engine's
/// contract (written at a commit-batch boundary with no in-flight work in
/// the shared log), so no undo is needed for pre-checkpoint history.
pub fn recover(records: &[(Lsn, LogRecord)]) -> RecoveryOutcome {
    // `max_tx` and `max_commit_ts` range over the WHOLE prefix (including
    // records before the checkpoint): tx-id allocation and the snapshot
    // clock must both clear everything durable.
    let max_tx = records
        .iter()
        .map(|(_, r)| record_max_tx(r))
        .max()
        .unwrap_or(0);
    let max_commit_ts = records
        .iter()
        .map(|(_, r)| match r {
            LogRecord::Commit { ts, .. } | LogRecord::Checkpoint { ts, .. } => *ts,
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    // ---- Base image (last complete checkpoint, if any) ----
    let image = last_complete_checkpoint(records);
    let (mut db, suffix, checkpoint, checkpoint_lsn, mut seen) = match image {
        Some((begin, end, ckpt)) => {
            let mut db = Database::new();
            for (_, rec) in &records[begin..=end] {
                if let LogRecord::CheckpointTable {
                    ckpt: c,
                    name,
                    schema,
                    rows,
                } = rec
                {
                    if *c != ckpt {
                        continue;
                    }
                    db.create_or_replace_table(name, schema.clone());
                    let t = db.table_mut(name).expect("just created");
                    for (row, values) in rows {
                        let _ = t.insert_at(RowId(*row), values.clone());
                    }
                }
            }
            // Index definitions re-logged inside the image (second pass so
            // a definition never races its table's CheckpointTable record).
            // Creation rebuilds contents from the just-loaded heap.
            for (_, rec) in &records[begin..=end] {
                if let LogRecord::CreateIndex {
                    table,
                    name,
                    column,
                    kind,
                } = rec
                {
                    if let Ok(t) = db.table_mut(table) {
                        let _ = t.create_named_index(name, column, *kind);
                    }
                }
            }
            // Fuzzy contract: transactions active at checkpoint time have
            // no effects in the image; they lose unless the suffix commits
            // them.
            let active: BTreeSet<u64> = match &records[begin].1 {
                LogRecord::Checkpoint { active, .. } => active.iter().copied().collect(),
                _ => BTreeSet::new(),
            };
            (
                db,
                &records[end + 1..],
                Some(ckpt),
                Some(records[begin].0),
                active,
            )
        }
        None => (Database::new(), records, None, None, BTreeSet::new()),
    };

    // ---- Analysis (suffix only) ----
    let mut committed: BTreeSet<u64> = BTreeSet::new();
    let mut groups: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut durable_batches = 0usize;
    for (_, rec) in suffix {
        match rec {
            LogRecord::Begin { tx }
            | LogRecord::Insert { tx, .. }
            | LogRecord::Delete { tx, .. }
            | LogRecord::Update { tx, .. }
            | LogRecord::Abort { tx } => {
                seen.insert(*tx);
            }
            LogRecord::Commit { tx, .. } => {
                seen.insert(*tx);
                committed.insert(*tx);
            }
            LogRecord::EntangleGroup { group, txs } => {
                seen.extend(txs.iter().copied());
                groups
                    .entry(*group)
                    .or_default()
                    .extend(txs.iter().copied());
            }
            // A durable batch boundary confirms every commit it names: the
            // leader appends it after the named Commit records and before
            // the sync, so the batch is durable as one unit.
            LogRecord::CommitBatch { txs, .. } => {
                durable_batches += 1;
                seen.extend(txs.iter().copied());
                committed.extend(txs.iter().copied());
            }
            LogRecord::GroupCommit { .. }
            | LogRecord::CreateTable { .. }
            | LogRecord::CreateIndex { .. }
            | LogRecord::Checkpoint { .. }
            | LogRecord::CheckpointTable { .. }
            | LogRecord::CheckpointEnd { .. } => {}
        }
    }

    // Entanglement fixpoint: a group with any non-winner member sinks all
    // of its members. Chains propagate through shared members.
    let mut winners = committed.clone();
    loop {
        let mut changed = false;
        for txs in groups.values() {
            if txs.iter().any(|t| !winners.contains(t)) {
                for t in txs {
                    changed |= winners.remove(t);
                }
            }
        }
        if !changed {
            break;
        }
    }
    let widowed_rollbacks: BTreeSet<u64> = committed.difference(&winners).copied().collect();
    let losers: BTreeSet<u64> = seen.difference(&winners).copied().collect();

    // ---- Redo (history since the image) ----
    for (_, rec) in suffix {
        match rec {
            LogRecord::CreateTable { name, schema } => {
                db.create_or_replace_table(name, schema.clone());
            }
            // Re-create the definition; the table's mutators keep its
            // contents current through the rest of redo and undo.
            LogRecord::CreateIndex {
                table,
                name,
                column,
                kind,
            } if db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .expect("checked")
                    .create_named_index(name, column, *kind);
            }
            LogRecord::Insert {
                table, row, values, ..
            } if db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .expect("checked")
                    .insert_at(RowId(*row), values.clone());
            }
            LogRecord::Delete { table, row, .. } if db.has_table(table) => {
                let _ = db.table_mut(table).expect("checked").delete(RowId(*row));
            }
            LogRecord::Update {
                table, row, after, ..
            } if db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .expect("checked")
                    .update(RowId(*row), after.clone());
            }
            _ => {}
        }
    }

    // ---- Undo (losers, in reverse order; losers have no pre-image
    // records by the checkpoint's consistency contract) ----
    for (_, rec) in suffix.iter().rev() {
        match rec {
            LogRecord::Insert { tx, table, row, .. }
                if losers.contains(tx) && db.has_table(table) =>
            {
                let _ = db.table_mut(table).expect("checked").delete(RowId(*row));
            }
            LogRecord::Delete {
                tx,
                table,
                row,
                before,
            } if losers.contains(tx) && db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .expect("checked")
                    .insert_at(RowId(*row), before.clone());
            }
            LogRecord::Update {
                tx,
                table,
                row,
                before,
                ..
            } if losers.contains(tx) && db.has_table(table) => {
                let _ = db
                    .table_mut(table)
                    .expect("checked")
                    .update(RowId(*row), before.clone());
            }
            _ => {}
        }
    }

    RecoveryOutcome {
        db,
        winners,
        losers,
        widowed_rollbacks,
        durable_batches,
        checkpoint,
        checkpoint_lsn,
        replayed: suffix.len(),
        max_tx,
        max_commit_ts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Wal;
    use youtopia_storage::{Schema, Value, ValueType};

    fn setup_wal() -> Wal {
        let wal = Wal::new();
        wal.append(&LogRecord::CreateTable {
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
        });
        wal
    }

    fn insert(wal: &Wal, tx: u64, row: u64, uid: i64, fid: i64) {
        wal.append(&LogRecord::Insert {
            tx,
            table: "Reserve".into(),
            row,
            values: vec![Value::Int(uid), Value::Int(fid)],
        });
    }

    #[test]
    fn committed_work_survives() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.db.table("Reserve").unwrap().len(), 1);
        assert!(out.winners.contains(&1));
        assert!(out.losers.is_empty());
    }

    #[test]
    fn uncommitted_work_rolled_back() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.sync(); // data durable, commit record not
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.db.table("Reserve").unwrap().len(), 0);
        assert!(out.losers.contains(&1));
    }

    #[test]
    fn updates_and_deletes_undone_with_before_images() {
        let wal = setup_wal();
        // t1 commits an insert.
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        // t2 updates then deletes, but never commits.
        wal.append(&LogRecord::Begin { tx: 2 });
        wal.append(&LogRecord::Update {
            tx: 2,
            table: "Reserve".into(),
            row: 0,
            before: vec![Value::Int(10), Value::Int(122)],
            after: vec![Value::Int(10), Value::Int(999)],
        });
        wal.append(&LogRecord::Delete {
            tx: 2,
            table: "Reserve".into(),
            row: 0,
            before: vec![Value::Int(10), Value::Int(999)],
        });
        wal.sync();
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(RowId(0)).unwrap(),
            &vec![Value::Int(10), Value::Int(122)]
        );
    }

    #[test]
    fn widowed_commit_rolled_back_with_partner() {
        // The paper's rule: t1 and t2 entangled; t1's commit is durable but
        // t2 never committed → recovery rolls BOTH back.
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        wal.append(&LogRecord::Begin { tx: 2 });
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        insert(&wal, 1, 0, 10, 122);
        insert(&wal, 2, 1, 20, 122);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.crash(); // t2's commit never happened
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(
            out.db.table("Reserve").unwrap().len(),
            0,
            "both rolled back"
        );
        assert_eq!(out.widowed_rollbacks, BTreeSet::from([1]));
        assert_eq!(out.losers, BTreeSet::from([1, 2]));
    }

    #[test]
    fn whole_group_commit_survives() {
        let wal = setup_wal();
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        insert(&wal, 1, 0, 10, 122);
        insert(&wal, 2, 1, 20, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.append_sync(&LogRecord::GroupCommit { group: 1 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.db.table("Reserve").unwrap().len(), 2);
        assert_eq!(out.winners, BTreeSet::from([1, 2]));
        assert!(out.widowed_rollbacks.is_empty());
    }

    #[test]
    fn transitive_group_rollback_chains() {
        // Groups {1,2} and {2,3}: if 3 is unresolved, 2 sinks, then 1 sinks.
        let wal = setup_wal();
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        wal.append(&LogRecord::EntangleGroup {
            group: 2,
            txs: vec![2, 3],
        });
        insert(&wal, 1, 0, 1, 1);
        insert(&wal, 2, 1, 2, 2);
        insert(&wal, 3, 2, 3, 3);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash(); // 3 never committed
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.db.table("Reserve").unwrap().len(), 0);
        assert_eq!(out.losers, BTreeSet::from([1, 2, 3]));
        assert_eq!(out.widowed_rollbacks, BTreeSet::from([1, 2]));
    }

    #[test]
    fn independent_transactions_unaffected_by_group_rollback() {
        let wal = setup_wal();
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        insert(&wal, 1, 0, 1, 1);
        insert(&wal, 3, 1, 3, 3); // classical bystander
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append_sync(&LogRecord::Commit { tx: 3, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(RowId(1)).unwrap()[0], Value::Int(3));
        assert!(out.winners.contains(&3));
        assert!(!out.winners.contains(&1));
    }

    #[test]
    fn commit_batch_confirms_its_commits_and_counts_boundaries() {
        // The group-commit pipeline's shape: each member publishes
        // [Begin, writes, Commit] contiguously, the sync leader bounds the
        // batch with CommitBatch before syncing.
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.append(&LogRecord::CommitBatch {
            batch: 1,
            txs: vec![1],
        });
        wal.sync();
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.durable_batches, 1);
        assert!(out.winners.contains(&1));
        assert_eq!(out.db.table("Reserve").unwrap().len(), 1);
    }

    #[test]
    fn crash_inside_a_batch_keeps_group_atomicity() {
        // Entangled pair published in one batch; the torn tail cuts after
        // member 1's commit but before member 2's. The EntangleGroup record
        // precedes both commits, so recovery must sink the whole group.
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 122);
        wal.append(&LogRecord::EntangleGroup {
            group: 1,
            txs: vec![1, 2],
        });
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.sync(); // crash point: inside the batch, before Commit{2}
        wal.append(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.append(&LogRecord::CommitBatch {
            batch: 1,
            txs: vec![1, 2],
        });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(
            out.db.table("Reserve").unwrap().len(),
            0,
            "no durable widow"
        );
        assert_eq!(out.widowed_rollbacks, BTreeSet::from([1]));
        assert_eq!(out.durable_batches, 0, "the batch boundary was torn off");
    }

    #[test]
    fn empty_log_recovers_to_empty_db() {
        let out = recover(&[]);
        assert!(out.db.table_names().is_empty());
        assert!(out.winners.is_empty());
        assert!(out.losers.is_empty());
        assert_eq!(out.checkpoint, None);
        assert_eq!(out.max_tx, 0);
        assert_eq!(out.replayed, 0);
    }

    /// A full checkpoint image for one `Reserve` table with the given rows.
    fn image(wal: &Wal, ckpt: u64, rows: Vec<(u64, Vec<Value>)>) {
        wal.append(&LogRecord::Checkpoint {
            ckpt,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows,
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt });
    }

    #[test]
    fn recovery_starts_from_last_complete_checkpoint() {
        let wal = Wal::new();
        // Pre-checkpoint history that must NOT be replayed (tx 1 would
        // insert row 0; the image supersedes it with different contents).
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 1, 1);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        image(&wal, 1, vec![(0, vec![Value::Int(99), Value::Int(122)])]);
        // Post-checkpoint suffix: tx 2 commits another row.
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 123);
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.checkpoint, Some(1));
        assert_eq!(out.replayed, 3, "only the suffix is replayed");
        assert_eq!(out.max_tx, 2);
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.get(RowId(0)).unwrap(),
            &vec![Value::Int(99), Value::Int(122)],
            "the image, not the pre-checkpoint history, is the base"
        );
        assert!(out.winners.contains(&2));
    }

    #[test]
    fn torn_checkpoint_falls_back_to_previous_image() {
        let wal = Wal::new();
        image(&wal, 1, vec![(0, vec![Value::Int(1), Value::Int(122)])]);
        // Suffix after the first image.
        wal.append(&LogRecord::Begin { tx: 5 });
        insert(&wal, 5, 1, 2, 123);
        wal.append(&LogRecord::Commit { tx: 5, ts: 0 });
        // Second checkpoint begins but its end marker is torn off.
        wal.append(&LogRecord::Checkpoint {
            ckpt: 2,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt: 2,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows: vec![(7, vec![Value::Int(777), Value::Int(7)])],
        });
        wal.sync();
        wal.append(&LogRecord::CheckpointEnd { ckpt: 2 }); // lost in the crash
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.checkpoint, Some(1), "torn image 2 skipped");
        let t = out.db.table("Reserve").unwrap();
        assert_eq!(t.len(), 2, "image 1 + replayed tx 5");
        assert!(t.get(RowId(7)).is_none(), "torn image contributes nothing");
        assert!(out.winners.contains(&5));
    }

    #[test]
    fn checkpoint_active_transactions_lose_unless_suffix_commits_them() {
        let wal = Wal::new();
        wal.append(&LogRecord::Checkpoint {
            ckpt: 1,
            active: vec![3, 4],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt: 1 });
        wal.append_sync(&LogRecord::Commit { tx: 4, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert!(
            out.losers.contains(&3),
            "active at checkpoint, never committed"
        );
        assert!(out.winners.contains(&4), "committed in the suffix");
        assert_eq!(out.max_tx, 4);
    }

    #[test]
    fn recovery_after_truncation_replays_only_the_retained_suffix() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        // Checkpoint the committed state, sync, truncate to the image.
        let begin = wal.append(&LogRecord::Checkpoint {
            ckpt: 1,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt: 1,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows: vec![(0, vec![Value::Int(10), Value::Int(122)])],
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt: 1 });
        wal.sync();
        let dropped = wal.truncate_prefix(begin);
        assert!(dropped > 0);
        // Post-truncation traffic.
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 123);
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash();
        let records = wal.durable_records().unwrap();
        assert_eq!(records[0].0, begin, "log head is the checkpoint begin LSN");
        let out = recover(&records);
        assert_eq!(out.checkpoint, Some(1));
        assert_eq!(out.checkpoint_lsn, Some(begin));
        assert_eq!(out.db.table("Reserve").unwrap().len(), 2);
        assert_eq!(out.max_tx, 2);
    }

    #[test]
    fn index_definition_recovered_and_contents_rebuilt_from_heap() {
        use youtopia_storage::IndexKind;
        let wal = setup_wal();
        wal.append(&LogRecord::CreateIndex {
            table: "Reserve".into(),
            name: "reserve_uid".into(),
            column: "uid".into(),
            kind: IndexKind::Hash,
        });
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        insert(&wal, 1, 1, 20, 122);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
        // Loser traffic whose undo must also keep the index coherent.
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 2, 30, 123);
        wal.sync();
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        let t = out.db.table("Reserve").unwrap();
        let idx = t.named_indexes().get("reserve_uid").unwrap();
        assert_eq!(idx.probe(&Value::Int(10)), &[RowId(0)]);
        assert_eq!(idx.probe(&Value::Int(20)), &[RowId(1)]);
        assert!(idx.probe(&Value::Int(30)).is_empty(), "loser undone");
    }

    #[test]
    fn index_definition_survives_truncation_via_checkpoint_image() {
        use youtopia_storage::IndexKind;
        let wal = setup_wal();
        wal.append(&LogRecord::CreateIndex {
            table: "Reserve".into(),
            name: "reserve_uid".into(),
            column: "uid".into(),
            kind: IndexKind::Btree,
        });
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 10, 122);
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        // The checkpoint image re-logs the definition after the table.
        let begin = wal.append(&LogRecord::Checkpoint {
            ckpt: 1,
            active: vec![],
            ts: 0,
        });
        wal.append(&LogRecord::CheckpointTable {
            ckpt: 1,
            name: "Reserve".into(),
            schema: Schema::of(&[("uid", ValueType::Int), ("fid", ValueType::Int)]),
            rows: vec![(0, vec![Value::Int(10), Value::Int(122)])],
        });
        wal.append(&LogRecord::CreateIndex {
            table: "Reserve".into(),
            name: "reserve_uid".into(),
            column: "uid".into(),
            kind: IndexKind::Btree,
        });
        wal.append(&LogRecord::CheckpointEnd { ckpt: 1 });
        wal.sync();
        // Truncation drops the original CreateIndex record entirely.
        assert!(wal.truncate_prefix(begin) > 0);
        wal.append(&LogRecord::Begin { tx: 2 });
        insert(&wal, 2, 1, 20, 123);
        wal.append_sync(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        let t = out.db.table("Reserve").unwrap();
        let idx = t.named_indexes().get("reserve_uid").unwrap();
        assert_eq!(idx.kind(), IndexKind::Btree);
        assert_eq!(idx.probe(&Value::Int(10)), &[RowId(0)]);
        assert_eq!(idx.probe(&Value::Int(20)), &[RowId(1)], "suffix maintained");
    }

    #[test]
    fn explicit_abort_is_a_loser_without_widow_status() {
        let wal = setup_wal();
        wal.append(&LogRecord::Begin { tx: 1 });
        insert(&wal, 1, 0, 1, 1);
        wal.append_sync(&LogRecord::Abort { tx: 1 });
        wal.crash();
        let out = recover(&wal.durable_records().unwrap());
        assert_eq!(out.db.table("Reserve").unwrap().len(), 0);
        assert!(out.losers.contains(&1));
        assert!(out.widowed_rollbacks.is_empty());
    }
}
