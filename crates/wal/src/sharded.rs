//! A log partitioned into independent per-shard segments.
//!
//! [`ShardedWal`] owns N [`Wal`]s, one per shard. Each segment is its own
//! device with its own durable frontier, sync counter, and LSN coordinate
//! space — a sync on one shard never waits on another, which is the whole
//! point: N shards are N parallel commit pipelines. The engine routes
//! records by the owning table's shard (`shard_of_table` lives in
//! `youtopia-storage`) and the cross-shard commit protocol
//! ([`crate::LogRecord::CrossPrepare`] / [`crate::LogRecord::CrossCommit`])
//! keeps multi-shard units atomic across segments.
//!
//! Aggregate accessors (`len`, `sync_count`, `retained_len`,
//! `durable_records`) sum or concatenate across shards so existing
//! single-log call sites keep working; with one shard every method is
//! byte-for-byte the plain [`Wal`] behaviour.

use crate::log::Wal;
use crate::record::{CodecError, LogRecord, Lsn};

/// N independent WAL segments, one per shard.
#[derive(Debug)]
pub struct ShardedWal {
    shards: Vec<Wal>,
}

impl ShardedWal {
    /// Create `n` empty segments (`n` is clamped to at least 1).
    pub fn new(n: usize) -> ShardedWal {
        ShardedWal {
            shards: (0..n.max(1)).map(|_| Wal::new()).collect(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The segment owned by shard `i`.
    pub fn shard(&self, i: usize) -> &Wal {
        &self.shards[i]
    }

    /// Total logical length across all segments (monotone, like
    /// [`Wal::len`]).
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|w| w.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|w| w.is_empty())
    }

    /// Total bytes currently retained across segments.
    pub fn retained_len(&self) -> u64 {
        self.shards.iter().map(|w| w.retained_len()).sum()
    }

    /// Total fsync-equivalents across segments.
    pub fn sync_count(&self) -> u64 {
        self.shards.iter().map(|w| w.sync_count()).sum()
    }

    /// Per-shard fsync-equivalents, indexed by shard.
    pub fn sync_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|w| w.sync_count()).collect()
    }

    /// Force every segment durable.
    pub fn sync_all(&self) {
        for w in &self.shards {
            w.sync();
        }
    }

    /// Simulate a crash on every segment: each un-synced tail is lost.
    pub fn crash(&self) {
        for w in &self.shards {
            w.crash();
        }
    }

    /// The durable records of every segment, one `Vec` per shard — the
    /// input shape of [`crate::recover_sharded`].
    pub fn durable_records_sharded(&self) -> Result<Vec<Vec<(Lsn, LogRecord)>>, CodecError> {
        self.shards.iter().map(|w| w.durable_records()).collect()
    }

    /// All segments' durable records concatenated in shard order. LSNs are
    /// per-segment coordinates; callers scanning for record *presence*
    /// (tests, diagnostics) can use this directly.
    pub fn durable_records(&self) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
        let mut out = Vec::new();
        for w in &self.shards {
            out.extend(w.durable_records()?);
        }
        Ok(out)
    }

    /// All segments' appended records concatenated in shard order.
    pub fn all_records(&self) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
        let mut out = Vec::new();
        for w in &self.shards {
            out.extend(w.all_records()?);
        }
        Ok(out)
    }

    /// Head of shard 0's segment — meaningful for single-shard
    /// configurations that treat the sharded log as one [`Wal`].
    pub fn head(&self) -> Lsn {
        self.shards[0].head()
    }
}

impl Default for ShardedWal {
    fn default() -> ShardedWal {
        ShardedWal::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_matches_plain_wal() {
        let sw = ShardedWal::new(1);
        let plain = Wal::new();
        for rec in [
            LogRecord::Begin { tx: 1 },
            LogRecord::Commit { tx: 1, ts: 3 },
        ] {
            sw.shard(0).append(&rec);
            plain.append(&rec);
        }
        sw.sync_all();
        plain.sync();
        assert_eq!(sw.len(), plain.len());
        assert_eq!(sw.durable_records(), plain.durable_records());
        assert_eq!(sw.sync_counts(), vec![1]);
    }

    #[test]
    fn shards_have_independent_frontiers() {
        let sw = ShardedWal::new(3);
        sw.shard(0).append_sync(&LogRecord::Begin { tx: 1 });
        sw.shard(1).append(&LogRecord::Begin { tx: 2 }); // never synced
        sw.shard(2).append_sync(&LogRecord::Begin { tx: 3 });
        sw.crash();
        let per = sw.durable_records_sharded().unwrap();
        assert_eq!(per[0].len(), 1);
        assert_eq!(per[1].len(), 0, "unsynced shard-1 tail lost alone");
        assert_eq!(per[2].len(), 1);
        assert_eq!(sw.durable_records().unwrap().len(), 2);
        assert_eq!(sw.sync_count(), 2);
    }

    #[test]
    fn zero_clamps_to_one_shard() {
        let sw = ShardedWal::new(0);
        assert_eq!(sw.shards(), 1);
        assert!(sw.is_empty());
    }
}
