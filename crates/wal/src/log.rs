//! The write-ahead log: concurrently-appendable record batches, sync,
//! scan; thin wrapper tying records to the simulated device.
//!
//! The commit hot path is [`Wal::publish`]: callers encode their frames
//! **outside** the device lock, then reserve a contiguous LSN range and
//! copy the pre-encoded bytes in during one short critical section. The
//! device lock is never held across record encoding, so concurrent
//! committers contend only on a memcpy, not on serialization work.

use crate::device::StableStorage;
use crate::record::{CodecError, LogRecord, Lsn};
use parking_lot::Mutex;

/// A contiguous, atomically-reserved range of the log returned by
/// [`Wal::publish`]: frames occupy byte offsets `[start.0, end)`.
///
/// `end` is the durability watermark a committer hands to the
/// [`crate::GroupCommitter`] — once the device's durable frontier reaches
/// `end`, every record of the batch is durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsnRange {
    /// LSN of the first frame in the batch.
    pub start: Lsn,
    /// Byte offset one past the last frame.
    pub end: u64,
}

/// A WAL over simulated stable storage.
///
/// The log is the *only* durable artefact in this system (the data plane is
/// in memory), so recovery rebuilds the database from the durable log
/// prefix — see [`crate::recover()`].
#[derive(Debug, Default)]
pub struct Wal {
    dev: Mutex<StableStorage>,
}

impl Wal {
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Append a record to the volatile tail; returns its LSN. The frame is
    /// encoded before the device lock is acquired.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let frame = rec.encode();
        let mut dev = self.dev.lock();
        Lsn(dev.append(&frame))
    }

    /// Append and immediately make durable (used at bootstrap commit
    /// points). Encoding happens before the device lock is acquired.
    pub fn append_sync(&self, rec: &LogRecord) -> Lsn {
        let frame = rec.encode();
        let mut dev = self.dev.lock();
        let lsn = Lsn(dev.append(&frame));
        dev.sync();
        lsn
    }

    /// Publish a batch of records as one contiguous LSN range.
    ///
    /// All frames are encoded into a private buffer with **no** lock held;
    /// the device lock then covers only the reservation-plus-copy that
    /// makes the range visible. A batch is contiguous by construction: no
    /// other committer's frames can interleave inside the range, which is
    /// what lets a commit batch order `EntangleGroup` records ahead of the
    /// member `Commit` records it covers.
    pub fn publish(&self, recs: &[LogRecord]) -> LsnRange {
        let mut frames = Vec::with_capacity(recs.len() * 64);
        for rec in recs {
            frames.extend_from_slice(&rec.encode());
        }
        let mut dev = self.dev.lock();
        let start = dev.append(&frames);
        LsnRange {
            start: Lsn(start),
            end: start + frames.len() as u64,
        }
    }

    /// Force everything appended so far to stable storage; returns the new
    /// durable frontier (in bytes), i.e. the `end` of every [`LsnRange`]
    /// this sync covers.
    pub fn sync(&self) -> u64 {
        let mut dev = self.dev.lock();
        dev.sync();
        dev.durable_len()
    }

    /// The durable frontier in bytes (how much of the log survives a crash
    /// right now).
    pub fn durable_len(&self) -> u64 {
        self.dev.lock().durable_len()
    }

    /// Simulate a crash: the un-synced tail is lost.
    pub fn crash(&self) {
        self.dev.lock().crash();
    }

    /// Number of fsync-equivalents so far (group commit amortizes these).
    pub fn sync_count(&self) -> u64 {
        self.dev.lock().sync_count()
    }

    /// Logical end offset of the log (durable or not); monotone across
    /// truncations.
    pub fn len(&self) -> u64 {
        self.dev.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.dev.lock().is_empty()
    }

    /// Drop the log prefix up to `upto` (a checkpoint begin LSN). Only
    /// the durable prefix can be reclaimed; LSNs of surviving records are
    /// unchanged (the device keeps a logical head offset). Returns the
    /// number of bytes reclaimed.
    pub fn truncate_prefix(&self, upto: Lsn) -> u64 {
        self.dev.lock().truncate_prefix(upto.0)
    }

    /// LSN of the first retained record (`Lsn(0)` until the first
    /// truncation).
    pub fn head(&self) -> Lsn {
        Lsn(self.dev.lock().head())
    }

    /// Bytes currently retained on the device — what a restart must read.
    /// Truncation shrinks this; [`Wal::len`] stays monotone.
    pub fn retained_len(&self) -> u64 {
        self.dev.lock().retained_len()
    }

    /// Scan the **durable** prefix, stopping cleanly at a torn tail.
    /// Genuine mid-log corruption is reported as an error.
    pub fn durable_records(&self) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
        let dev = self.dev.lock();
        scan(dev.durable_bytes(), dev.head())
    }

    /// Scan everything appended so far (for live diagnostics).
    pub fn all_records(&self) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
        let dev = self.dev.lock();
        scan(dev.all_bytes(), dev.head())
    }
}

fn scan(data: &[u8], base: u64) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        match LogRecord::decode(data, off) {
            Ok((rec, next)) => {
                out.push((Lsn(base + off as u64), rec));
                off = next;
            }
            // A torn or checksum-failed *final* frame ends the log.
            Err(CodecError::Torn) | Err(CodecError::BadChecksum) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_scan_roundtrip() {
        let wal = Wal::new();
        let l1 = wal.append(&LogRecord::Begin { tx: 1 });
        let l2 = wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        assert!(l1 < l2);
        wal.sync();
        let recs = wal.durable_records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1, LogRecord::Begin { tx: 1 });
        assert_eq!(recs[1].1, LogRecord::Commit { tx: 1, ts: 0 });
    }

    #[test]
    fn unsynced_tail_lost_on_crash() {
        let wal = Wal::new();
        wal.append_sync(&LogRecord::Begin { tx: 1 });
        wal.append(&LogRecord::Commit { tx: 1, ts: 0 }); // not synced
        wal.crash();
        let recs = wal.durable_records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::Begin { tx: 1 });
    }

    #[test]
    fn durable_scan_ignores_volatile_tail() {
        let wal = Wal::new();
        wal.append_sync(&LogRecord::Begin { tx: 1 });
        wal.append(&LogRecord::Abort { tx: 1 });
        assert_eq!(wal.durable_records().unwrap().len(), 1);
        assert_eq!(wal.all_records().unwrap().len(), 2);
    }

    #[test]
    fn publish_is_contiguous_and_syncable_by_range_end() {
        let wal = Wal::new();
        let range = wal.publish(&[
            LogRecord::Begin { tx: 1 },
            LogRecord::Commit { tx: 1, ts: 0 },
            LogRecord::CommitBatch {
                batch: 1,
                txs: vec![1],
            },
        ]);
        assert_eq!(range.start, Lsn(0));
        assert_eq!(range.end, wal.len());
        // Nothing durable until a sync reaches the range end.
        assert!(wal.durable_records().unwrap().is_empty());
        let durable = wal.sync();
        assert!(durable >= range.end);
        assert_eq!(wal.durable_len(), durable);
        let recs = wal.durable_records().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].0, range.start);
        // An empty publish reserves an empty range at the tail.
        let empty = wal.publish(&[]);
        assert_eq!(empty.start.0, empty.end);
    }

    #[test]
    fn truncate_prefix_keeps_lsns_stable() {
        let wal = Wal::new();
        let l1 = wal.append(&LogRecord::Begin { tx: 1 });
        let l2 = wal.append(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.sync();
        assert_eq!(wal.head(), Lsn(0));
        let dropped = wal.truncate_prefix(l2);
        assert_eq!(dropped, l2.0 - l1.0);
        assert_eq!(wal.head(), l2);
        // The surviving record keeps its original LSN…
        let recs = wal.durable_records().unwrap();
        assert_eq!(recs, vec![(l2, LogRecord::Commit { tx: 1, ts: 0 })]);
        // …and new appends continue in the same coordinate space.
        let l3 = wal.append_sync(&LogRecord::Begin { tx: 2 });
        assert!(l3 > l2);
        assert_eq!(
            wal.len(),
            l3.0 + LogRecord::Begin { tx: 2 }.encode().len() as u64
        );
        assert!(wal.retained_len() < wal.len());
        // Truncation cannot reclaim the volatile tail.
        wal.append(&LogRecord::Commit { tx: 2, ts: 0 });
        wal.truncate_prefix(Lsn(wal.len()));
        assert_eq!(wal.head(), Lsn(wal.durable_len()));
        assert_eq!(wal.all_records().unwrap().len(), 1);
    }

    #[test]
    fn sync_counting() {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { tx: 1 });
        assert_eq!(wal.sync_count(), 0);
        wal.append_sync(&LogRecord::Commit { tx: 1, ts: 0 });
        wal.sync();
        assert_eq!(wal.sync_count(), 2);
        assert!(!wal.is_empty());
        // Two framed records: len is the durable byte size, > 2 headers.
        assert!(wal.len() >= 16);
    }
}
