//! The write-ahead log: append, sync, scan; thin wrapper tying records to
//! the simulated device.

use crate::device::StableStorage;
use crate::record::{CodecError, LogRecord, Lsn};
use parking_lot::Mutex;

/// A WAL over simulated stable storage.
///
/// The log is the *only* durable artefact in this system (the data plane is
/// in memory), so recovery rebuilds the database from the durable log
/// prefix — see [`crate::recover()`].
#[derive(Debug, Default)]
pub struct Wal {
    dev: Mutex<StableStorage>,
}

impl Wal {
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Append a record to the volatile tail; returns its LSN.
    pub fn append(&self, rec: &LogRecord) -> Lsn {
        let frame = rec.encode();
        let mut dev = self.dev.lock();
        Lsn(dev.append(&frame))
    }

    /// Append and immediately make durable (used at commit points).
    pub fn append_sync(&self, rec: &LogRecord) -> Lsn {
        let frame = rec.encode();
        let mut dev = self.dev.lock();
        let lsn = Lsn(dev.append(&frame));
        dev.sync();
        lsn
    }

    /// Force everything appended so far to stable storage.
    pub fn sync(&self) {
        self.dev.lock().sync();
    }

    /// Simulate a crash: the un-synced tail is lost.
    pub fn crash(&self) {
        self.dev.lock().crash();
    }

    /// Number of fsync-equivalents so far (group commit amortizes these).
    pub fn sync_count(&self) -> u64 {
        self.dev.lock().sync_count()
    }

    /// Total bytes appended (durable or not).
    pub fn len(&self) -> u64 {
        self.dev.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.dev.lock().is_empty()
    }

    /// Scan the **durable** prefix, stopping cleanly at a torn tail.
    /// Genuine mid-log corruption is reported as an error.
    pub fn durable_records(&self) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
        let dev = self.dev.lock();
        scan(dev.durable_bytes())
    }

    /// Scan everything appended so far (for live diagnostics).
    pub fn all_records(&self) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
        let dev = self.dev.lock();
        scan(dev.all_bytes())
    }
}

fn scan(data: &[u8]) -> Result<Vec<(Lsn, LogRecord)>, CodecError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        match LogRecord::decode(data, off) {
            Ok((rec, next)) => {
                out.push((Lsn(off as u64), rec));
                off = next;
            }
            // A torn or checksum-failed *final* frame ends the log.
            Err(CodecError::Torn) | Err(CodecError::BadChecksum) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_scan_roundtrip() {
        let wal = Wal::new();
        let l1 = wal.append(&LogRecord::Begin { tx: 1 });
        let l2 = wal.append(&LogRecord::Commit { tx: 1 });
        assert!(l1 < l2);
        wal.sync();
        let recs = wal.durable_records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].1, LogRecord::Begin { tx: 1 });
        assert_eq!(recs[1].1, LogRecord::Commit { tx: 1 });
    }

    #[test]
    fn unsynced_tail_lost_on_crash() {
        let wal = Wal::new();
        wal.append_sync(&LogRecord::Begin { tx: 1 });
        wal.append(&LogRecord::Commit { tx: 1 }); // not synced
        wal.crash();
        let recs = wal.durable_records().unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1, LogRecord::Begin { tx: 1 });
    }

    #[test]
    fn durable_scan_ignores_volatile_tail() {
        let wal = Wal::new();
        wal.append_sync(&LogRecord::Begin { tx: 1 });
        wal.append(&LogRecord::Abort { tx: 1 });
        assert_eq!(wal.durable_records().unwrap().len(), 1);
        assert_eq!(wal.all_records().unwrap().len(), 2);
    }

    #[test]
    fn sync_counting() {
        let wal = Wal::new();
        wal.append(&LogRecord::Begin { tx: 1 });
        assert_eq!(wal.sync_count(), 0);
        wal.append_sync(&LogRecord::Commit { tx: 1 });
        wal.sync();
        assert_eq!(wal.sync_count(), 2);
        assert!(!wal.is_empty());
        // Two framed records: len is the durable byte size, > 2 headers.
        assert!(wal.len() >= 16);
    }
}
