//! Log record types and their binary codec.
//!
//! Frames are `[len: u32][crc32: u32][payload]`; a torn final frame (crash
//! mid-append) is detected by length or checksum mismatch and treated as
//! end-of-log, which is the standard WAL convention.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use youtopia_storage::{Column, IndexKind, Schema, Value, ValueType};

/// Log sequence number = byte offset of the frame in the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

/// One write-ahead-log record.
///
/// Beyond the classical record types, two are entanglement-specific (§4
/// "Persistence and Recovery"): [`LogRecord::EntangleGroup`] persists *who
/// has entangled with whom* so group commits survive crashes, and
/// [`LogRecord::GroupCommit`] marks the atomic durability point of a whole
/// entanglement group.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        tx: u64,
    },
    /// Physiological redo/undo images.
    Insert {
        tx: u64,
        table: String,
        row: u64,
        values: Vec<Value>,
    },
    Delete {
        tx: u64,
        table: String,
        row: u64,
        before: Vec<Value>,
    },
    Update {
        tx: u64,
        table: String,
        row: u64,
        before: Vec<Value>,
        after: Vec<Value>,
    },
    /// Transaction `tx` committed at commit timestamp `ts` — the
    /// multi-version clock value its installed row versions carry. All
    /// members of one commit batch share a `ts`; recovery re-seeds the
    /// snapshot clock past the highest durable `ts` so post-restart
    /// snapshots can never alias pre-crash history. `ts = 0` marks commits
    /// that installed no versions (bootstrap replay, tests).
    Commit {
        tx: u64,
        ts: u64,
    },
    Abort {
        tx: u64,
    },
    /// DDL is logged so recovery can rebuild the catalog from scratch.
    CreateTable {
        name: String,
        schema: Schema,
    },
    /// Transactions `txs` entangled (answered one entanglement operation
    /// together); they must commit or abort as a unit.
    EntangleGroup {
        group: u64,
        txs: Vec<u64>,
    },
    /// All members of `group` are now durably committed.
    GroupCommit {
        group: u64,
    },
    /// Fuzzy-checkpoint begin marker: opens checkpoint image `ckpt` and
    /// records the ids of transactions active at checkpoint time, plus the
    /// snapshot clock's stable frontier `ts` at the quiesce point (the
    /// image's rows are exactly the committed versions visible at `ts`).
    /// The image is the [`LogRecord::CheckpointTable`] records that
    /// follow, sealed by a matching [`LogRecord::CheckpointEnd`]; an image
    /// whose end marker never became durable is torn and recovery ignores
    /// it. Carrying `ts` keeps the clock monotone across a restart even
    /// when truncation has dropped every pre-checkpoint `Commit` record.
    Checkpoint {
        ckpt: u64,
        active: Vec<u64>,
        ts: u64,
    },
    /// One durable boundary of the group-commit pipeline: the sync leader
    /// logs the transactions whose commit points the upcoming sync covers,
    /// then syncs. Every `Commit` listed here precedes this record in the
    /// log, so a durable `CommitBatch` implies its whole batch is durable.
    CommitBatch {
        batch: u64,
        txs: Vec<u64>,
    },
    /// One table of checkpoint image `ckpt`: the full schema and every
    /// live row (id + values) as of the checkpoint's quiesce point.
    /// Recovery rebuilds the base database from these instead of
    /// replaying history from LSN 0.
    CheckpointTable {
        ckpt: u64,
        name: String,
        schema: Schema,
        rows: Vec<(u64, Vec<Value>)>,
    },
    /// Seals checkpoint image `ckpt`: a durable `CheckpointEnd` implies
    /// the whole image (begin marker + every table record) is durable,
    /// because the image is published as one contiguous range before it.
    CheckpointEnd {
        ckpt: u64,
    },
    /// Named secondary-index DDL. Only the *definition* is logged — index
    /// contents are always rebuilt from the recovered heap, so redo/undo
    /// of row records never has to touch index state. Checkpoint images
    /// re-log every live definition so truncation cannot drop one.
    CreateIndex {
        table: String,
        name: String,
        columns: Vec<String>,
        kind: IndexKind,
    },
    /// Phase one of a cross-shard commit: shard-local redo for cross-shard
    /// unit `xid` (one transaction, or one entanglement group straddling
    /// shards) is durable on this segment. `txs` are the member
    /// transactions, `shards` every participating shard — so recovery on
    /// any one segment knows which other segments to consult. The unit is
    /// committed iff *every* shard in `shards` holds a durable
    /// `CrossPrepare{xid}` (or any holds a [`LogRecord::CrossCommit`]);
    /// a torn tail on one segment therefore aborts the unit everywhere.
    CrossPrepare {
        xid: u64,
        txs: Vec<u64>,
        shards: Vec<u64>,
    },
    /// Phase two of a cross-shard commit: all participant prepares for
    /// `xid` are durable. Written after the last prepare sync, never
    /// force-synced itself — it only shortcuts the participant-log
    /// consultation during recovery.
    CrossCommit {
        xid: u64,
    },
}

/// Codec failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Frame extends past the durable end (torn write) — treated as EOF.
    Torn,
    /// Checksum mismatch — treated as EOF.
    BadChecksum,
    /// A structurally invalid payload: genuine corruption.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Torn => write!(f, "torn frame at end of log"),
            CodecError::BadChecksum => write!(f, "checksum mismatch"),
            CodecError::Corrupt(w) => write!(f, "corrupt log record: {w}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---- crc32 (IEEE, bitwise — no table needed at this scale) ----

pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---- value / schema codecs ----

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Corrupt("string length"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(CodecError::Corrupt("string body"));
    }
    let b = buf.copy_to_bytes(n);
    String::from_utf8(b.to_vec()).map_err(|_| CodecError::Corrupt("utf8"))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Date(d) => {
            buf.put_u8(3);
            buf.put_i32_le(*d);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::Tuple(vs) => {
            buf.put_u8(5);
            put_values(buf, vs);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Corrupt("value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if !buf.has_remaining() {
                return Err(CodecError::Corrupt("bool"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(CodecError::Corrupt("int"));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        3 => {
            if buf.remaining() < 4 {
                return Err(CodecError::Corrupt("date"));
            }
            Ok(Value::Date(buf.get_i32_le()))
        }
        4 => Ok(Value::Str(get_str(buf)?)),
        5 => Ok(Value::Tuple(get_values(buf)?)),
        _ => Err(CodecError::Corrupt("value tag")),
    }
}

fn put_values(buf: &mut BytesMut, vs: &[Value]) {
    buf.put_u32_le(vs.len() as u32);
    for v in vs {
        put_value(buf, v);
    }
}

fn get_values(buf: &mut Bytes) -> Result<Vec<Value>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Corrupt("values length"));
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(get_value(buf)?);
    }
    Ok(out)
}

fn put_u64s(buf: &mut BytesMut, xs: &[u64]) {
    buf.put_u32_le(xs.len() as u32);
    for x in xs {
        buf.put_u64_le(*x);
    }
}

fn get_u64s(buf: &mut Bytes) -> Result<Vec<u64>, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Corrupt("u64s length"));
    }
    let n = buf.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        if buf.remaining() < 8 {
            return Err(CodecError::Corrupt("u64"));
        }
        out.push(buf.get_u64_le());
    }
    Ok(out)
}

fn put_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u32_le(schema.arity() as u32);
    for c in schema.columns() {
        put_str(buf, &c.name);
        buf.put_u8(ty_tag(c.ty));
    }
}

fn get_schema(buf: &mut Bytes) -> Result<Schema, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Corrupt("schema arity"));
    }
    let n = buf.get_u32_le() as usize;
    let mut cols = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let cname = get_str(buf)?;
        if !buf.has_remaining() {
            return Err(CodecError::Corrupt("column type"));
        }
        cols.push(Column::new(cname, ty_from(buf.get_u8())?));
    }
    Schema::new(cols).map_err(|_| CodecError::Corrupt("schema"))
}

fn ty_tag(t: ValueType) -> u8 {
    match t {
        ValueType::Null => 0,
        ValueType::Bool => 1,
        ValueType::Int => 2,
        ValueType::Date => 3,
        ValueType::Str => 4,
        ValueType::Tuple => 5,
    }
}

fn ty_from(tag: u8) -> Result<ValueType, CodecError> {
    Ok(match tag {
        0 => ValueType::Null,
        1 => ValueType::Bool,
        2 => ValueType::Int,
        3 => ValueType::Date,
        4 => ValueType::Str,
        5 => ValueType::Tuple,
        _ => return Err(CodecError::Corrupt("type tag")),
    })
}

impl LogRecord {
    /// Encode into a checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = BytesMut::with_capacity(64);
        match self {
            LogRecord::Begin { tx } => {
                body.put_u8(0);
                body.put_u64_le(*tx);
            }
            LogRecord::Insert {
                tx,
                table,
                row,
                values,
            } => {
                body.put_u8(1);
                body.put_u64_le(*tx);
                put_str(&mut body, table);
                body.put_u64_le(*row);
                put_values(&mut body, values);
            }
            LogRecord::Delete {
                tx,
                table,
                row,
                before,
            } => {
                body.put_u8(2);
                body.put_u64_le(*tx);
                put_str(&mut body, table);
                body.put_u64_le(*row);
                put_values(&mut body, before);
            }
            LogRecord::Update {
                tx,
                table,
                row,
                before,
                after,
            } => {
                body.put_u8(3);
                body.put_u64_le(*tx);
                put_str(&mut body, table);
                body.put_u64_le(*row);
                put_values(&mut body, before);
                put_values(&mut body, after);
            }
            LogRecord::Commit { tx, ts } => {
                body.put_u8(4);
                body.put_u64_le(*tx);
                body.put_u64_le(*ts);
            }
            LogRecord::Abort { tx } => {
                body.put_u8(5);
                body.put_u64_le(*tx);
            }
            LogRecord::CreateTable { name, schema } => {
                body.put_u8(6);
                put_str(&mut body, name);
                put_schema(&mut body, schema);
            }
            LogRecord::EntangleGroup { group, txs } => {
                body.put_u8(7);
                body.put_u64_le(*group);
                put_u64s(&mut body, txs);
            }
            LogRecord::GroupCommit { group } => {
                body.put_u8(8);
                body.put_u64_le(*group);
            }
            LogRecord::Checkpoint { ckpt, active, ts } => {
                body.put_u8(9);
                body.put_u64_le(*ckpt);
                put_u64s(&mut body, active);
                body.put_u64_le(*ts);
            }
            LogRecord::CommitBatch { batch, txs } => {
                body.put_u8(10);
                body.put_u64_le(*batch);
                put_u64s(&mut body, txs);
            }
            LogRecord::CheckpointTable {
                ckpt,
                name,
                schema,
                rows,
            } => {
                body.put_u8(11);
                body.put_u64_le(*ckpt);
                put_str(&mut body, name);
                put_schema(&mut body, schema);
                body.put_u32_le(rows.len() as u32);
                for (id, values) in rows {
                    body.put_u64_le(*id);
                    put_values(&mut body, values);
                }
            }
            LogRecord::CheckpointEnd { ckpt } => {
                body.put_u8(12);
                body.put_u64_le(*ckpt);
            }
            LogRecord::CreateIndex {
                table,
                name,
                columns,
                kind,
            } => {
                body.put_u8(13);
                put_str(&mut body, table);
                put_str(&mut body, name);
                body.put_u32_le(columns.len() as u32);
                for c in columns {
                    put_str(&mut body, c);
                }
                body.put_u8(match kind {
                    IndexKind::Hash => 0,
                    IndexKind::Btree => 1,
                });
            }
            LogRecord::CrossPrepare { xid, txs, shards } => {
                body.put_u8(14);
                body.put_u64_le(*xid);
                put_u64s(&mut body, txs);
                put_u64s(&mut body, shards);
            }
            LogRecord::CrossCommit { xid } => {
                body.put_u8(15);
                body.put_u64_le(*xid);
            }
        }
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Decode one frame starting at `data[offset..]`; returns the record
    /// and the offset just past it.
    pub fn decode(data: &[u8], offset: usize) -> Result<(LogRecord, usize), CodecError> {
        if data.len() < offset + 8 {
            return Err(CodecError::Torn);
        }
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let start = offset + 8;
        if data.len() < start + len {
            return Err(CodecError::Torn);
        }
        let body = &data[start..start + len];
        if crc32(body) != crc {
            return Err(CodecError::BadChecksum);
        }
        let mut buf = Bytes::copy_from_slice(body);
        if !buf.has_remaining() {
            return Err(CodecError::Corrupt("empty body"));
        }
        let rec = match buf.get_u8() {
            0 => LogRecord::Begin {
                tx: need_u64(&mut buf)?,
            },
            1 => LogRecord::Insert {
                tx: need_u64(&mut buf)?,
                table: get_str(&mut buf)?,
                row: need_u64(&mut buf)?,
                values: get_values(&mut buf)?,
            },
            2 => LogRecord::Delete {
                tx: need_u64(&mut buf)?,
                table: get_str(&mut buf)?,
                row: need_u64(&mut buf)?,
                before: get_values(&mut buf)?,
            },
            3 => LogRecord::Update {
                tx: need_u64(&mut buf)?,
                table: get_str(&mut buf)?,
                row: need_u64(&mut buf)?,
                before: get_values(&mut buf)?,
                after: get_values(&mut buf)?,
            },
            4 => LogRecord::Commit {
                tx: need_u64(&mut buf)?,
                ts: need_u64(&mut buf)?,
            },
            5 => LogRecord::Abort {
                tx: need_u64(&mut buf)?,
            },
            6 => LogRecord::CreateTable {
                name: get_str(&mut buf)?,
                schema: get_schema(&mut buf)?,
            },
            7 => LogRecord::EntangleGroup {
                group: need_u64(&mut buf)?,
                txs: get_u64s(&mut buf)?,
            },
            8 => LogRecord::GroupCommit {
                group: need_u64(&mut buf)?,
            },
            9 => LogRecord::Checkpoint {
                ckpt: need_u64(&mut buf)?,
                active: get_u64s(&mut buf)?,
                ts: need_u64(&mut buf)?,
            },
            10 => LogRecord::CommitBatch {
                batch: need_u64(&mut buf)?,
                txs: get_u64s(&mut buf)?,
            },
            11 => {
                let ckpt = need_u64(&mut buf)?;
                let name = get_str(&mut buf)?;
                let schema = get_schema(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(CodecError::Corrupt("checkpoint row count"));
                }
                let n = buf.get_u32_le() as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let id = need_u64(&mut buf)?;
                    rows.push((id, get_values(&mut buf)?));
                }
                LogRecord::CheckpointTable {
                    ckpt,
                    name,
                    schema,
                    rows,
                }
            }
            12 => LogRecord::CheckpointEnd {
                ckpt: need_u64(&mut buf)?,
            },
            13 => {
                let table = get_str(&mut buf)?;
                let name = get_str(&mut buf)?;
                if buf.remaining() < 4 {
                    return Err(CodecError::Corrupt("index columns length"));
                }
                let n = buf.get_u32_le() as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    columns.push(get_str(&mut buf)?);
                }
                if !buf.has_remaining() {
                    return Err(CodecError::Corrupt("index kind"));
                }
                let kind = match buf.get_u8() {
                    0 => IndexKind::Hash,
                    1 => IndexKind::Btree,
                    _ => return Err(CodecError::Corrupt("index kind")),
                };
                LogRecord::CreateIndex {
                    table,
                    name,
                    columns,
                    kind,
                }
            }
            14 => LogRecord::CrossPrepare {
                xid: need_u64(&mut buf)?,
                txs: get_u64s(&mut buf)?,
                shards: get_u64s(&mut buf)?,
            },
            15 => LogRecord::CrossCommit {
                xid: need_u64(&mut buf)?,
            },
            _ => return Err(CodecError::Corrupt("record tag")),
        };
        if buf.has_remaining() {
            return Err(CodecError::Corrupt("trailing bytes"));
        }
        Ok((rec, start + len))
    }
}

fn need_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Corrupt("u64"));
    }
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { tx: 7 },
            LogRecord::Insert {
                tx: 7,
                table: "Flights".into(),
                row: 3,
                values: vec![
                    Value::Int(122),
                    Value::Date(100),
                    Value::str("LA"),
                    Value::Tuple(vec![Value::Int(1), Value::str("x"), Value::Null]),
                ],
            },
            LogRecord::Delete {
                tx: 7,
                table: "Reserve".into(),
                row: 0,
                before: vec![Value::Int(1), Value::Null],
            },
            LogRecord::Update {
                tx: 8,
                table: "Hotels".into(),
                row: 12,
                before: vec![Value::str("old"), Value::Bool(false)],
                after: vec![Value::str("new"), Value::Bool(true)],
            },
            LogRecord::Commit { tx: 7, ts: 42 },
            LogRecord::Abort { tx: 8 },
            LogRecord::CreateTable {
                name: "Flights".into(),
                schema: Schema::of(&[("fno", ValueType::Int), ("dest", ValueType::Str)]),
            },
            LogRecord::EntangleGroup {
                group: 1,
                txs: vec![7, 8, 9],
            },
            LogRecord::GroupCommit { group: 1 },
            LogRecord::Checkpoint {
                ckpt: 2,
                active: vec![10, 11],
                ts: 42,
            },
            LogRecord::CommitBatch {
                batch: 3,
                txs: vec![7, 8],
            },
            LogRecord::CheckpointTable {
                ckpt: 2,
                name: "Flights".into(),
                schema: Schema::of(&[("fno", ValueType::Int), ("dest", ValueType::Str)]),
                rows: vec![
                    (0, vec![Value::Int(122), Value::str("LA")]),
                    (3, vec![Value::Int(235), Value::str("Paris")]),
                ],
            },
            LogRecord::CheckpointEnd { ckpt: 2 },
            LogRecord::CreateIndex {
                table: "Reserve".into(),
                name: "reserve_uid".into(),
                columns: vec!["uid".into(), "fno".into()],
                kind: IndexKind::Btree,
            },
            LogRecord::CrossPrepare {
                xid: 9,
                txs: vec![7, 8],
                shards: vec![0, 2],
            },
            LogRecord::CrossCommit { xid: 9 },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for rec in samples() {
            let bytes = rec.encode();
            let (got, end) = LogRecord::decode(&bytes, 0).unwrap();
            assert_eq!(got, rec);
            assert_eq!(end, bytes.len());
        }
    }

    #[test]
    fn sequential_frames_decode() {
        let mut log = Vec::new();
        for rec in samples() {
            log.extend_from_slice(&rec.encode());
        }
        let mut off = 0;
        let mut count = 0;
        while off < log.len() {
            let (_, next) = LogRecord::decode(&log, off).unwrap();
            off = next;
            count += 1;
        }
        assert_eq!(count, samples().len());
    }

    #[test]
    fn torn_tail_detected() {
        let rec = LogRecord::Commit { tx: 1, ts: 1 };
        let bytes = rec.encode();
        // Truncated header.
        assert_eq!(LogRecord::decode(&bytes[..4], 0), Err(CodecError::Torn));
        // Truncated body.
        assert_eq!(
            LogRecord::decode(&bytes[..bytes.len() - 1], 0),
            Err(CodecError::Torn)
        );
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let rec = LogRecord::Begin { tx: 42 };
        let mut bytes = rec.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert_eq!(LogRecord::decode(&bytes, 0), Err(CodecError::BadChecksum));
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
