//! # youtopia-wal
//!
//! Durability substrate for the *Entangled Transactions* reproduction:
//! a write-ahead log over simulated stable storage, plus the
//! entanglement-aware recovery pass the paper sketches in §4
//! ("Persistence and Recovery").
//!
//! Two things distinguish this WAL from a classical one:
//!
//! 1. **Entanglement state is logged.** `EntangleGroup` records persist who
//!    has entangled with whom, and `GroupCommit` marks the durability point
//!    of an entire group — the state §4 says "must be made persistent to
//!    ensure correct crash recovery".
//! 2. **Recovery is group-atomic.** A transaction with a durable commit
//!    record is still rolled back if any transitive entanglement partner
//!    failed to commit — the paper's rule that a crash between partner
//!    commits must not produce a durable widowed transaction.
//!
//! The device is simulated (`StableStorage`) so that tests and benches can
//! inject crashes at precise points, including *between* the commits of two
//! entangled partners.
//!
//! Durability is pipelined: committers pre-encode their frames, [`Wal::publish`]
//! reserves a contiguous LSN range under one short device-lock hold, and the
//! [`GroupCommitter`] batches concurrent sync requests behind a leader whose
//! single device sync (bounded by [`LogRecord::CommitBatch`]) covers every
//! follower — syncs-per-commit drops below one under concurrency.
//!
//! The log can also be **sharded** ([`ShardedWal`]): N independent segments,
//! each with its own device and sync pipeline. Cross-shard commit units are
//! kept atomic across segments by the two-phase
//! [`LogRecord::CrossPrepare`] / [`LogRecord::CrossCommit`] protocol, and
//! [`recover_sharded`] replays the segments in parallel.

pub mod device;
pub mod group;
pub mod log;
pub mod record;
pub mod recover;
pub mod sharded;

pub use device::StableStorage;
pub use group::GroupCommitter;
pub use log::{LsnRange, Wal};
pub use record::{CodecError, LogRecord, Lsn};
pub use recover::{
    recover, recover_sharded, recover_with, resolve_cross_shard, CrossResolution, RecoveryOutcome,
    ShardedRecoveryOutcome,
};
pub use sharded::ShardedWal;
