//! # youtopia-wal
//!
//! Durability substrate for the *Entangled Transactions* reproduction:
//! a write-ahead log over simulated stable storage, plus the
//! entanglement-aware recovery pass the paper sketches in §4
//! ("Persistence and Recovery").
//!
//! Two things distinguish this WAL from a classical one:
//!
//! 1. **Entanglement state is logged.** `EntangleGroup` records persist who
//!    has entangled with whom, and `GroupCommit` marks the durability point
//!    of an entire group — the state §4 says "must be made persistent to
//!    ensure correct crash recovery".
//! 2. **Recovery is group-atomic.** A transaction with a durable commit
//!    record is still rolled back if any transitive entanglement partner
//!    failed to commit — the paper's rule that a crash between partner
//!    commits must not produce a durable widowed transaction.
//!
//! The device is simulated (`StableStorage`) so that tests and benches can
//! inject crashes at precise points, including *between* the commits of two
//! entangled partners.

pub mod device;
pub mod log;
pub mod record;
pub mod recover;

pub use device::StableStorage;
pub use log::Wal;
pub use record::{CodecError, LogRecord, Lsn};
pub use recover::{recover, RecoveryOutcome};
