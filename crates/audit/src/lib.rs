//! # youtopia-audit
//!
//! Machine-checked locking: a runtime auditor for the engine's lock
//! protocol plus an offline lock-order (deadlock-potential) analysis.
//!
//! The engine's correctness rests on conventions no single component can
//! see whole: the two-level intent/key/row protocol, next-key locking for
//! phantom protection, strict-2PL phase discipline, and the latch rules
//! that keep physical and logical synchronization from deadlocking each
//! other. [`ProtocolAuditor`] implements
//! [`youtopia_lock::LockEventSink`] and re-derives every transaction's
//! held set from the event stream, checking **online**:
//!
//! * **Multigranularity legality** — a row or index-key lock requires a
//!   held ancestor *table* lock of the right strength (S/IS under at
//!   least IS; X/IX/SIX under at least IX).
//! * **Strict-2PL phasing** — no lock is acquired after the transaction
//!   first released one, and no single-resource release happens at all
//!   unless the transaction was explicitly exempted (the relaxed
//!   isolation levels release read locks early by design).
//! * **Latch discipline** — storage latches are acquired in sorted order
//!   and are never held while the thread blocks on a lock-manager wait.
//! * **Next-key coverage** — every locked range read reports the
//!   successor-or-EOF resource it fenced; the auditor verifies the
//!   transaction really holds an S-covering lock on it.
//!
//! Violations panic (in the engine's debug/test configuration) with the
//! offending rule and the most recent event trace, or are collected for
//! inspection when built with [`ProtocolAuditor::collecting`] — the mode
//! the deliberate-violation tests use.
//!
//! Independently of the rule checks, the auditor aggregates a global
//! **lock-order graph**: an edge `a → b` means some transaction acquired
//! `b` while holding `a`. Edges are tagged with the lock shard each
//! resource routes to, and [`ProtocolAuditor::cycles`] reports the
//! strongly-connected components — cycles that span more than one shard
//! are exactly the deadlocks the per-shard detector cannot see and the
//! 250 ms timeout currently papers over.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use youtopia_lock::{LockEvent, LockEventSink, LockMode, Resource, TxId};

/// How many formatted events the rolling trace keeps for violation
/// reports.
const TRACE_DEPTH: usize = 64;

/// One broken protocol rule, with enough context to debug it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable rule identifier (`multigranularity`, `2pl-phase`,
    /// `early-release`, `latch-order`, `latch-across-wait`, `next-key`).
    pub rule: &'static str,
    /// Human-readable description of the offending transition.
    pub detail: String,
    /// The most recent lock events, oldest first, ending at the offense.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "lock protocol violation [{}]: {}",
            self.rule, self.detail
        )?;
        writeln!(f, "recent events (oldest first):")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

#[derive(Default)]
struct TxState {
    /// Resource → (held mode, owning shard).
    held: HashMap<Resource, (LockMode, usize)>,
    /// The transaction has released at least one lock (shrink phase).
    shrunk: bool,
}

#[derive(Default)]
struct AuditState {
    txs: HashMap<TxId, TxState>,
    /// Transactions exempt from the 2PL phasing rule (relaxed isolation).
    exempt: BTreeSet<TxId>,
    trace: VecDeque<String>,
    violations: Vec<Violation>,
    /// Lock-order edges: (held, then-acquired) → (held shard, acquired
    /// shard).
    edges: BTreeMap<(Resource, Resource), (usize, usize)>,
    /// Online victim convictions, in stream order.
    detections: Vec<Detection>,
}

thread_local! {
    /// Names of the storage latches the current thread holds, in
    /// acquisition order. Thread-local because latches are held across
    /// short critical sections on one thread only.
    static LATCH_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII witness of one held storage latch; unregisters on drop.
#[derive(Debug)]
pub struct LatchToken {
    name: String,
}

impl Drop for LatchToken {
    fn drop(&mut self) {
        LATCH_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(i) = s.iter().rposition(|n| n == &self.name) {
                s.remove(i);
            }
        });
    }
}

/// One online victim conviction observed on the event stream: the
/// cross-shard probe overlay (or a shard-local waits-for check) refused
/// `tx`'s request and aborted it to break a cycle.
#[derive(Debug, Clone)]
pub struct Detection {
    /// The convicted transaction.
    pub tx: TxId,
    /// The resource the victim was blocked on when convicted.
    pub requested: String,
    /// The lock shard that surfaced the conviction.
    pub shard: usize,
    /// Resources the victim held at conviction time — the sources of the
    /// ordering edges its blocked request proved.
    pub held: Vec<String>,
}

/// A cycle (strongly-connected component) in the lock-order graph.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// The resources in the component, sorted.
    pub resources: Vec<String>,
    /// Every lock shard the component's internal edges touch.
    pub shards: BTreeSet<usize>,
    /// True when the cycle spans more than one shard — invisible to the
    /// per-shard waits-for detector, breakable only by timeout.
    pub cross_shard: bool,
}

/// The runtime protocol checker. Install with
/// [`youtopia_lock::ShardedLocks::install_sink`]; feed latch and range
/// events from the executor via [`Self::latch`] and
/// [`Self::range_probe_covered`].
pub struct ProtocolAuditor {
    panic_on_violation: bool,
    /// Engine-wide phasing waiver: the `EarlyReadLockRelease` isolation
    /// level releases read locks mid-transaction by design, so the
    /// strict-2PL phasing rules don't apply to any of its transactions.
    relaxed_phasing: AtomicBool,
    events_seen: AtomicU64,
    inner: Mutex<AuditState>,
}

impl fmt::Debug for ProtocolAuditor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolAuditor")
            .field("panic_on_violation", &self.panic_on_violation)
            .field("events_seen", &self.events_seen.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ProtocolAuditor {
    fn default() -> Self {
        Self::strict()
    }
}

impl ProtocolAuditor {
    /// Panic on the first violation — the engine's debug/test mode.
    pub fn strict() -> ProtocolAuditor {
        ProtocolAuditor {
            panic_on_violation: true,
            relaxed_phasing: AtomicBool::new(false),
            events_seen: AtomicU64::new(0),
            inner: Mutex::new(AuditState::default()),
        }
    }

    /// Record violations without panicking — for the auditor's own
    /// deliberate-violation tests.
    pub fn collecting() -> ProtocolAuditor {
        ProtocolAuditor {
            panic_on_violation: false,
            ..ProtocolAuditor::strict()
        }
    }

    /// Exempt `tx` from the 2PL phasing rule: the relaxed isolation
    /// levels (§3.3.1) release read locks before commit by design. The
    /// exemption dies with the transaction's final release.
    pub fn exempt_phasing(&self, tx: TxId) {
        self.inner.lock().exempt.insert(tx);
    }

    /// Waive the phasing rules for *every* transaction — set when the
    /// whole engine runs `EarlyReadLockRelease` isolation.
    pub fn set_relaxed_phasing(&self, relaxed: bool) {
        self.relaxed_phasing.store(relaxed, Ordering::Relaxed);
    }

    /// Total audit events processed (lock events + latch + range
    /// checks) — surfaced as `RunReport::audit_events`.
    pub fn events_seen(&self) -> u64 {
        self.events_seen.load(Ordering::Relaxed)
    }

    /// Violations collected so far (empty in strict mode unless a panic
    /// was caught upstream).
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().violations.clone()
    }

    /// Register a storage latch acquisition on this thread and check the
    /// sorted-order discipline: a new latch name must not sort before one
    /// already held (equal names are re-entrant reads and fine). Hold the
    /// returned token exactly as long as the latch guard.
    pub fn latch(&self, name: &str) -> LatchToken {
        self.events_seen.fetch_add(1, Ordering::Relaxed);
        let offending = LATCH_STACK.with(|s| {
            let held = s.borrow();
            held.iter().find(|h| name < h.as_str()).cloned()
        });
        if let Some(prior) = offending {
            self.flag(
                "latch-order",
                format!("latch '{name}' acquired while holding later-sorting latch '{prior}'"),
            );
        }
        LATCH_STACK.with(|s| s.borrow_mut().push(name.to_string()));
        LatchToken {
            name: name.to_string(),
        }
    }

    /// Verify next-key coverage: after a locked range read converges, the
    /// executor reports the successor-or-EOF resource that fences the
    /// range; `tx` must hold an S-covering lock on it or phantoms can
    /// slip past the probe.
    pub fn range_probe_covered(&self, tx: TxId, successor: &Resource) {
        self.events_seen.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.lock();
        let covered = st
            .txs
            .get(&tx)
            .and_then(|t| t.held.get(successor))
            .is_some_and(|(m, _)| m.covers(LockMode::S));
        if !covered {
            let v = Self::violation_in(
                &mut st,
                "next-key",
                format!(
                    "{tx} finished a locked range read without S on next-key fence {successor}"
                ),
            );
            drop(st);
            self.raise(v);
        }
    }

    /// JSON rendering of the lock-order graph plus its cycle report —
    /// the artifact CI uploads next to the BENCH jsons.
    pub fn graph_json(&self) -> String {
        let st = self.inner.lock();
        let mut out = String::from("{\n  \"edges\": [\n");
        let mut first = true;
        for ((from, to), (fs, ts)) in &st.edges {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"from_shard\": {fs}, \"to_shard\": {ts}}}",
                escape(&from.to_string()),
                escape(&to.to_string()),
            ));
        }
        out.push_str("\n  ],\n  \"detections\": [\n");
        first = true;
        for d in &st.detections {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let held = d
                .held
                .iter()
                .map(|r| format!("\"{}\"", escape(r)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"tx\": {}, \"requested\": \"{}\", \"shard\": {}, \"held\": [{held}]}}",
                d.tx.0,
                escape(&d.requested),
                d.shard,
            ));
        }
        out.push_str("\n  ],\n  \"cycles\": [\n");
        let cycles = Self::cycles_in(&st);
        drop(st);
        first = true;
        for c in &cycles {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let members = c
                .resources
                .iter()
                .map(|r| format!("\"{}\"", escape(r)))
                .collect::<Vec<_>>()
                .join(", ");
            let shards = c
                .shards
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "    {{\"resources\": [{members}], \"shards\": [{shards}], \"cross_shard\": {}}}",
                c.cross_shard
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Cycles (SCCs of size > 1, or self-loops) in the lock-order graph.
    /// A non-empty result means some interleaving of the observed
    /// transactions can deadlock; `cross_shard` members are the ones the
    /// per-shard detector cannot break.
    pub fn cycles(&self) -> Vec<CycleReport> {
        Self::cycles_in(&self.inner.lock())
    }

    /// Number of lock-order edges observed (diagnostics).
    pub fn edge_count(&self) -> usize {
        self.inner.lock().edges.len()
    }

    /// Every online victim conviction seen on the event stream, in order.
    pub fn detections(&self) -> Vec<Detection> {
        self.inner.lock().detections.clone()
    }

    /// Cross-check the online detector against the offline analysis:
    /// detections whose blocked resource appears in **no** lock-order
    /// cycle. A sound detector leaves this empty — every runtime
    /// conviction corresponds to a cycle the offline Tarjan pass also
    /// finds (the victim's own edges are recorded at conviction, the
    /// survivors' when their stalled grants land), so a non-empty result
    /// means the detector convicted a transaction that was never actually
    /// entangled in an ordering cycle.
    pub fn uncovered_detections(&self) -> Vec<Detection> {
        let st = self.inner.lock();
        let cycles = Self::cycles_in(&st);
        st.detections
            .iter()
            .filter(|d| {
                !cycles.iter().any(|c| c.resources.contains(&d.requested))
            })
            .cloned()
            .collect()
    }

    // ---- internals ----------------------------------------------------

    fn flag(&self, rule: &'static str, detail: String) {
        let mut st = self.inner.lock();
        let v = Self::violation_in(&mut st, rule, detail);
        drop(st);
        self.raise(v);
    }

    fn violation_in(st: &mut AuditState, rule: &'static str, detail: String) -> Violation {
        let v = Violation {
            rule,
            detail,
            trace: st.trace.iter().cloned().collect(),
        };
        st.violations.push(v.clone());
        v
    }

    fn raise(&self, v: Violation) {
        if self.panic_on_violation {
            panic!("{v}");
        }
    }

    fn tarjan_sccs(adj: &BTreeMap<&Resource, Vec<&Resource>>) -> Vec<Vec<Resource>> {
        // Iterative Tarjan: indices assigned in DFS order, lowlink
        // tracking via an explicit frame stack.
        #[derive(Clone)]
        struct Node {
            index: usize,
            lowlink: usize,
            on_stack: bool,
        }
        let mut meta: HashMap<&Resource, Node> = HashMap::new();
        let mut stack: Vec<&Resource> = Vec::new();
        let mut sccs: Vec<Vec<Resource>> = Vec::new();
        let mut next_index = 0usize;
        for &start in adj.keys() {
            if meta.contains_key(start) {
                continue;
            }
            // Frame: (node, next child position).
            let mut frames: Vec<(&Resource, usize)> = vec![(start, 0)];
            meta.insert(
                start,
                Node {
                    index: next_index,
                    lowlink: next_index,
                    on_stack: true,
                },
            );
            stack.push(start);
            next_index += 1;
            while let Some(&mut (v, ref mut child)) = frames.last_mut() {
                let succs = adj.get(v).map(|s| s.as_slice()).unwrap_or(&[]);
                if *child < succs.len() {
                    let w = succs[*child];
                    *child += 1;
                    match meta.get(w) {
                        None => {
                            meta.insert(
                                w,
                                Node {
                                    index: next_index,
                                    lowlink: next_index,
                                    on_stack: true,
                                },
                            );
                            stack.push(w);
                            next_index += 1;
                            frames.push((w, 0));
                        }
                        Some(n) if n.on_stack => {
                            let wi = n.index;
                            let m = meta.get_mut(v).unwrap();
                            m.lowlink = m.lowlink.min(wi);
                        }
                        Some(_) => {}
                    }
                } else {
                    frames.pop();
                    let vm = meta[v].clone();
                    if let Some(&mut (p, _)) = frames.last_mut() {
                        let low = vm.lowlink;
                        let pm = meta.get_mut(p).unwrap();
                        pm.lowlink = pm.lowlink.min(low);
                    }
                    if vm.lowlink == vm.index {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            meta.get_mut(w).unwrap().on_stack = false;
                            comp.push(w.clone());
                            if w == v {
                                break;
                            }
                        }
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    fn cycles_in(st: &AuditState) -> Vec<CycleReport> {
        let mut adj: BTreeMap<&Resource, Vec<&Resource>> = BTreeMap::new();
        for (from, to) in st.edges.keys() {
            adj.entry(from).or_default().push(to);
            adj.entry(to).or_default();
        }
        let mut out = Vec::new();
        for comp in Self::tarjan_sccs(&adj) {
            let cyclic = comp.len() > 1
                || (comp.len() == 1 && st.edges.contains_key(&(comp[0].clone(), comp[0].clone())));
            if !cyclic {
                continue;
            }
            let members: BTreeSet<&Resource> = comp.iter().collect();
            let mut shards = BTreeSet::new();
            for ((from, to), (fs, ts)) in &st.edges {
                if members.contains(from) && members.contains(to) {
                    shards.insert(*fs);
                    shards.insert(*ts);
                }
            }
            out.push(CycleReport {
                resources: comp
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect(),
                cross_shard: shards.len() > 1,
                shards,
            });
        }
        out
    }

    /// The table at the root of a resource's granularity hierarchy. Index
    /// key/EOF resources are rows of a synthetic `table#index` name; their
    /// locking ancestor is the *base* table (the same rule
    /// `shard_of_table` uses for routing).
    fn ancestor_table(res: &Resource) -> Resource {
        let base = res.table_name().split('#').next().unwrap_or_default();
        Resource::table(base)
    }

    fn check_granted(&self, tx: TxId, res: &Resource, mode: LockMode, shard: usize) {
        let mut st = self.inner.lock();
        let grew = st
            .txs
            .get(&tx)
            .and_then(|t| t.held.get(res))
            .map(|(m, _)| *m)
            != Some(mode);
        let mut pending = Vec::new();
        if grew {
            // Strict-2PL phasing: growth after any shrink is illegal
            // unless the transaction runs a relaxed isolation level.
            let relaxed = self.relaxed_phasing.load(Ordering::Relaxed);
            let t = st.txs.entry(tx).or_default();
            if t.shrunk && !relaxed && !st.exempt.contains(&tx) {
                pending.push((
                    "2pl-phase",
                    format!("{tx} acquired {mode:?} on {res} after releasing a lock"),
                ));
            }
            // Multigranularity: row-level locks need a table ancestor of
            // the right strength already held.
            if matches!(res, Resource::Row(..)) {
                let ancestor = Self::ancestor_table(res);
                let parent_mode = st
                    .txs
                    .get(&tx)
                    .and_then(|t| t.held.get(&ancestor))
                    .map(|(m, _)| *m);
                let needs_write_intent = matches!(mode, LockMode::X | LockMode::IX | LockMode::SIX);
                let ok = match parent_mode {
                    Some(pm) if needs_write_intent => {
                        matches!(pm, LockMode::IX | LockMode::SIX | LockMode::X)
                    }
                    Some(_) => true,
                    None => false,
                };
                if !ok {
                    pending.push((
                        "multigranularity",
                        format!(
                            "{tx} took {mode:?} on {res} holding {} on ancestor {ancestor}",
                            parent_mode.map_or("nothing".to_string(), |m| format!("{m:?}")),
                        ),
                    ));
                }
            }
            // Lock-order graph: every held resource was ordered before
            // the new one by this transaction.
            let snapshot: Vec<(Resource, usize)> = st
                .txs
                .get(&tx)
                .map(|t| {
                    t.held
                        .iter()
                        .filter(|(r, _)| *r != res)
                        .map(|(r, (_, s))| (r.clone(), *s))
                        .collect()
                })
                .unwrap_or_default();
            for (prior, prior_shard) in snapshot {
                st.edges
                    .entry((prior, res.clone()))
                    .or_insert((prior_shard, shard));
            }
        }
        st.txs
            .entry(tx)
            .or_default()
            .held
            .insert(res.clone(), (mode, shard));
        let raised: Vec<Violation> = pending
            .into_iter()
            .map(|(rule, detail)| Self::violation_in(&mut st, rule, detail))
            .collect();
        drop(st);
        for v in raised {
            self.raise(v);
        }
    }
}

impl LockEventSink for ProtocolAuditor {
    fn on_event(&self, event: &LockEvent) {
        self.events_seen.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = self.inner.lock();
            if st.trace.len() == TRACE_DEPTH {
                st.trace.pop_front();
            }
            st.trace.push_back(event.to_string());
        }
        match event {
            LockEvent::Granted {
                tx,
                res,
                mode,
                shard,
            } => self.check_granted(*tx, res, *mode, *shard),
            LockEvent::Wait { tx, res, .. } => {
                let held = LATCH_STACK.with(|s| s.borrow().clone());
                if !held.is_empty() {
                    self.flag(
                        "latch-across-wait",
                        format!(
                            "{tx} blocked on lock {res} while this thread holds latch(es) [{}]",
                            held.join(", ")
                        ),
                    );
                }
            }
            LockEvent::Released { tx, res, .. } => {
                let mut st = self.inner.lock();
                let exempt = self.relaxed_phasing.load(Ordering::Relaxed) || st.exempt.contains(tx);
                let t = st.txs.entry(*tx).or_default();
                t.held.remove(res);
                t.shrunk = true;
                if !exempt {
                    let v = Self::violation_in(
                        &mut st,
                        "early-release",
                        format!("{tx} released {res} before commit without a relaxed-isolation exemption"),
                    );
                    drop(st);
                    self.raise(v);
                }
            }
            LockEvent::ReleasedAll { tx, .. } => {
                let mut st = self.inner.lock();
                st.txs.remove(tx);
                st.exempt.remove(tx);
            }
            LockEvent::Deadlock { tx, res, shard, .. } => {
                // A legal outcome, but one that asserts a resource
                // ordering: the victim demonstrably tried to acquire
                // `res` while holding its current set, so those edges
                // belong in the lock-order graph even though the grant
                // never happened. Recording them here is what makes the
                // online ⊆ offline cross-check sound — the surviving
                // cycle members contribute their edges when their stalled
                // requests are eventually granted, and the victim's edge
                // would otherwise be lost with the abort.
                let mut st = self.inner.lock();
                let held_snapshot: Vec<(Resource, usize)> = st
                    .txs
                    .get(tx)
                    .map(|t| t.held.iter().map(|(r, (_, s))| (r.clone(), *s)).collect())
                    .unwrap_or_default();
                for (prior, prior_shard) in &held_snapshot {
                    if prior != res {
                        st.edges
                            .entry((prior.clone(), res.clone()))
                            .or_insert((*prior_shard, *shard));
                    }
                }
                let mut held: Vec<String> =
                    held_snapshot.iter().map(|(r, _)| r.to_string()).collect();
                held.sort();
                st.detections.push(Detection {
                    tx: *tx,
                    requested: res.to_string(),
                    shard: *shard,
                    held,
                });
            }
            LockEvent::Timeout { .. } => {
                // A legal outcome; it reaches RunReport via LockStats.
            }
            LockEvent::Reset { .. } => {
                let mut st = self.inner.lock();
                st.txs.clear();
                st.exempt.clear();
            }
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;
    use youtopia_lock::{LockManager, ShardedLocks};

    fn t(n: u64) -> TxId {
        TxId(n)
    }

    fn audited_manager() -> (Arc<ProtocolAuditor>, LockManager) {
        let auditor = Arc::new(ProtocolAuditor::collecting());
        let mut lm = LockManager::new();
        lm.set_sink(0, auditor.clone());
        (auditor, lm)
    }

    #[test]
    fn clean_two_level_protocol_passes() {
        let (a, lm) = audited_manager();
        lm.lock(t(1), Resource::table("flights"), LockMode::IX, None)
            .unwrap();
        lm.lock(t(1), Resource::row("flights", 7), LockMode::X, None)
            .unwrap();
        lm.lock(t(1), Resource::row("flights#by_day", 3), LockMode::X, None)
            .unwrap();
        lm.unlock_all(t(1));
        assert!(a.violations().is_empty(), "{:?}", a.violations());
        assert!(a.events_seen() > 0);
    }

    #[test]
    fn row_lock_without_table_intent_is_flagged() {
        let (a, lm) = audited_manager();
        lm.lock(t(1), Resource::row("flights", 1), LockMode::X, None)
            .unwrap();
        let v = a.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "multigranularity");
        assert!(v[0].detail.contains("t1"), "{}", v[0].detail);
        assert!(!v[0].trace.is_empty(), "violation must carry its trace");
    }

    #[test]
    fn row_write_under_read_intent_is_flagged() {
        let (a, lm) = audited_manager();
        lm.lock(t(1), Resource::table("flights"), LockMode::IS, None)
            .unwrap();
        lm.lock(t(1), Resource::row("flights", 1), LockMode::X, None)
            .unwrap();
        let v = a.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "multigranularity");
    }

    #[test]
    fn acquire_after_release_is_flagged() {
        let (a, lm) = audited_manager();
        let r1 = Resource::table("a");
        lm.lock(t(1), r1.clone(), LockMode::S, None).unwrap();
        lm.release(t(1), &r1);
        lm.lock(t(1), Resource::table("b"), LockMode::S, None)
            .unwrap();
        let rules: Vec<&str> = a.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"early-release"), "{rules:?}");
        assert!(rules.contains(&"2pl-phase"), "{rules:?}");
    }

    #[test]
    fn exempt_transaction_may_release_early() {
        let (a, lm) = audited_manager();
        a.exempt_phasing(t(1));
        let r1 = Resource::table("a");
        lm.lock(t(1), r1.clone(), LockMode::S, None).unwrap();
        lm.release(t(1), &r1);
        lm.lock(t(1), Resource::table("b"), LockMode::S, None)
            .unwrap();
        lm.unlock_all(t(1));
        assert!(a.violations().is_empty(), "{:?}", a.violations());
        // The exemption died with the transaction.
        let r2 = Resource::table("c");
        lm.lock(t(1), r2.clone(), LockMode::S, None).unwrap();
        lm.release(t(1), &r2);
        assert_eq!(a.violations().len(), 1);
    }

    #[test]
    fn latch_across_wait_is_flagged() {
        let auditor = Arc::new(ProtocolAuditor::collecting());
        let mut lm = LockManager::new();
        lm.set_sink(0, auditor.clone());
        let lm = Arc::new(lm);
        let r = Resource::table("flights");
        lm.lock(t(1), r.clone(), LockMode::X, None).unwrap();
        let token = auditor.latch("flights");
        // t2 must wait for the X holder — with a latch held on this
        // thread, that wait is the violation.
        let _ = lm.lock(t(2), r, LockMode::S, Some(Duration::from_millis(10)));
        drop(token);
        let v = auditor.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "latch-across-wait");
        assert!(v[0].detail.contains("flights"), "{}", v[0].detail);
    }

    #[test]
    fn unsorted_latch_order_is_flagged() {
        let a = ProtocolAuditor::collecting();
        let t1 = a.latch("hotels");
        let t2 = a.latch("flights"); // "flights" < "hotels": out of order
        drop(t2);
        drop(t1);
        let v = a.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "latch-order");
        // Sorted acquisition (with re-entry) is clean.
        let t1 = a.latch("flights");
        let t2 = a.latch("flights");
        let t3 = a.latch("hotels");
        drop((t1, t2, t3));
        assert_eq!(a.violations().len(), 1);
    }

    #[test]
    fn range_read_missing_next_key_lock_is_flagged() {
        let (a, lm) = audited_manager();
        lm.lock(t(1), Resource::table("flights"), LockMode::IS, None)
            .unwrap();
        lm.lock(t(1), Resource::row("flights#by_day", 10), LockMode::S, None)
            .unwrap();
        // The successor key was never locked.
        a.range_probe_covered(t(1), &Resource::row("flights#by_day", 11));
        let v = a.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "next-key");
        // And with the fence held, the same check is clean.
        lm.lock(t(1), Resource::row("flights#by_day", 11), LockMode::S, None)
            .unwrap();
        a.range_probe_covered(t(1), &Resource::row("flights#by_day", 11));
        assert_eq!(a.violations().len(), 1);
    }

    #[test]
    fn strict_mode_panics_with_trace() {
        let a = Arc::new(ProtocolAuditor::strict());
        let mut lm = LockManager::new();
        lm.set_sink(0, a.clone());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lm.lock(t(1), Resource::row("flights", 1), LockMode::X, None)
                .unwrap();
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("multigranularity"), "{msg}");
        assert!(msg.contains("recent events"), "{msg}");
    }

    #[test]
    fn lock_order_graph_detects_cross_shard_cycle() {
        let auditor = Arc::new(ProtocolAuditor::collecting());
        // Two shards routed by first byte parity, like the engine's hash
        // router: "a…" on shard 0 (b'a' is odd → 1… keep it simple and
        // route by explicit table name instead).
        let mut locks = ShardedLocks::with_router(
            2,
            Box::new(|r| usize::from(r.table_name().starts_with('b'))),
        );
        locks.install_sink(auditor.clone());
        let a = Resource::table("aa");
        let b = Resource::table("bb");
        // t1 orders aa → bb; t2 orders bb → aa. No runtime deadlock (the
        // acquisitions are sequential) but the order graph has the cycle.
        locks.lock(t(1), a.clone(), LockMode::S, None).unwrap();
        locks.lock(t(1), b.clone(), LockMode::S, None).unwrap();
        locks.unlock_all(t(1));
        locks.lock(t(2), b.clone(), LockMode::S, None).unwrap();
        locks.lock(t(2), a.clone(), LockMode::S, None).unwrap();
        locks.unlock_all(t(2));
        let cycles = auditor.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].cross_shard);
        assert_eq!(
            cycles[0].shards.iter().copied().collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(
            cycles[0].resources,
            vec!["aa".to_string(), "bb".to_string()]
        );
        let json = auditor.graph_json();
        assert!(json.contains("\"cross_shard\": true"), "{json}");
        assert!(json.contains("\"from\": \"aa\""), "{json}");
    }

    #[test]
    fn online_detection_is_covered_by_offline_cycle() {
        use youtopia_lock::GlobalDetector;
        let auditor = Arc::new(ProtocolAuditor::collecting());
        let mut locks = ShardedLocks::with_router(
            2,
            Box::new(|r| usize::from(r.table_name().starts_with('b'))),
        );
        locks.install_sink(auditor.clone());
        locks.enable_detection(
            GlobalDetector::new().with_timing(Duration::from_millis(1), Duration::from_millis(2)),
        );
        let locks = Arc::new(locks);
        let a = Resource::table("aa");
        let b = Resource::table("bb");
        locks.lock(t(1), a.clone(), LockMode::X, None).unwrap();
        locks.lock(t(2), b.clone(), LockMode::X, None).unwrap();
        let l2 = locks.clone();
        let b2 = b.clone();
        let survivor = std::thread::spawn(move || {
            // t1 closes the cycle: it wants bb while t2 wants aa.
            l2.lock(t(1), b2, LockMode::X, Some(Duration::from_secs(10)))
        });
        // t2 is the younger id: the detector convicts it, t1 survives.
        let verdict = locks.lock(t(2), a.clone(), LockMode::X, Some(Duration::from_secs(10)));
        assert!(
            matches!(verdict, Err(youtopia_lock::LockError::Deadlock)),
            "{verdict:?}"
        );
        locks.unlock_all(t(2));
        survivor.join().unwrap().unwrap();
        locks.unlock_all(t(1));
        let detections = auditor.detections();
        assert_eq!(detections.len(), 1, "{detections:?}");
        assert_eq!(detections[0].tx, t(2));
        assert_eq!(detections[0].requested, "aa");
        assert_eq!(detections[0].held, vec!["bb".to_string()]);
        // The conviction is backed by an offline cycle: online ⊆ offline.
        assert!(
            auditor.uncovered_detections().is_empty(),
            "{:?}",
            auditor.uncovered_detections()
        );
        let json = auditor.graph_json();
        assert!(json.contains("\"requested\": \"aa\""), "{json}");
    }

    #[test]
    fn acyclic_order_graph_reports_no_cycles() {
        let (a, lm) = audited_manager();
        lm.lock(t(1), Resource::table("aa"), LockMode::S, None)
            .unwrap();
        lm.lock(t(1), Resource::table("bb"), LockMode::S, None)
            .unwrap();
        lm.unlock_all(t(1));
        lm.lock(t(2), Resource::table("aa"), LockMode::S, None)
            .unwrap();
        lm.lock(t(2), Resource::table("bb"), LockMode::S, None)
            .unwrap();
        lm.unlock_all(t(2));
        assert!(a.cycles().is_empty());
        assert_eq!(a.edge_count(), 1);
    }
}
