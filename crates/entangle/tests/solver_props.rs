//! Property tests for the coordinating-set solver: on arbitrary randomly
//! generated query sets, any solution must be *sound* — the union of the
//! chosen heads covers every chosen grounding's postconditions (the
//! defining property of a coordinating set, Appendix A).

use proptest::prelude::*;
use youtopia_entangle::{
    ground, solve, Atom, Body, Filter, Membership, QueryIr, QueryOutcome, SolveInput, SolverConfig,
    Term,
};
use youtopia_sql::{parse_statement, Statement, VarEnv};
use youtopia_storage::{Database, Schema, Value, ValueType};

fn db_with_flights(n: i64) -> Database {
    let mut db = Database::new();
    db.create_table(
        "Flights",
        Schema::of(&[("fno", ValueType::Int), ("dest", ValueType::Str)]),
    )
    .expect("schema");
    for i in 0..n {
        let dest = if i % 2 == 0 { "LA" } else { "SF" };
        db.insert("Flights", vec![Value::Int(i), Value::str(dest)])
            .expect("insert");
    }
    db
}

/// Build a random query: person `me` requires person `other`'s tuple on a
/// shared answer relation, restricted to one destination.
fn query(me: u8, other: u8, dest: &str, rel: u8) -> QueryIr {
    let sql = format!(
        "SELECT 'p{me}', fno INTO ANSWER R{rel} \
         WHERE fno IN (SELECT fno FROM Flights WHERE dest='{dest}') \
         AND ('p{other}', fno) IN ANSWER R{rel} CHOOSE 1"
    );
    let Statement::Entangled(eq) = parse_statement(&sql).expect("parse") else {
        unreachable!()
    };
    youtopia_entangle::from_ast(&eq, &VarEnv::new()).expect("ir")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Soundness: every answered query's postconditions are covered by the
    /// union of the chosen heads; every query is assigned at most one
    /// grounding; unanswered queries contribute nothing.
    #[test]
    fn solutions_are_always_coordinating_sets(
        flights in 1i64..12,
        specs in prop::collection::vec((0u8..6, 0u8..6, prop::bool::ANY, 0u8..2), 1..7),
    ) {
        let db = db_with_flights(flights);
        let irs: Vec<QueryIr> = specs
            .iter()
            .map(|(me, other, la, rel)| query(*me, *other, if *la { "LA" } else { "SF" }, *rel))
            .collect();
        let grounded: Vec<_> = irs
            .iter()
            .map(|ir| ground(&db, ir, &VarEnv::new()).expect("ground"))
            .collect();
        let inputs: Vec<SolveInput> = irs
            .iter()
            .zip(&grounded)
            .map(|(ir, g)| SolveInput { ir, grounding: g })
            .collect();
        let sol = solve(&inputs, &SolverConfig::default());

        // Collect chosen heads and posts.
        let mut heads = Vec::new();
        let mut posts = Vec::new();
        for (i, o) in sol.outcomes.iter().enumerate() {
            if let QueryOutcome::Answered { grounding } = o {
                let g = &grounded[i].groundings[*grounding];
                heads.extend(g.heads.iter().cloned());
                posts.extend(g.posts.iter().cloned());
            }
        }
        for p in &posts {
            prop_assert!(
                heads.contains(p),
                "unsatisfied postcondition {p} in solution {:?}",
                sol.outcomes
            );
        }
        // Answer relations equal the union of chosen heads.
        for h in &heads {
            let rows = &sol.answer_relations[&h.relation];
            let row: Vec<Value> = h
                .terms
                .iter()
                .map(|t| t.as_const().expect("ground").clone())
                .collect();
            prop_assert!(rows.contains(&row));
        }
        // Groups partition the answered queries.
        let answered: usize = sol
            .outcomes
            .iter()
            .filter(|o| matches!(o, QueryOutcome::Answered { .. }))
            .count();
        let grouped: usize = sol.groups.iter().map(|g| g.len()).sum();
        prop_assert_eq!(answered, grouped);
    }

    /// Determinism: solving the same inputs twice gives identical results.
    #[test]
    fn solver_is_deterministic(
        flights in 1i64..8,
        specs in prop::collection::vec((0u8..4, 0u8..4), 1..5),
    ) {
        let db = db_with_flights(flights);
        let irs: Vec<QueryIr> =
            specs.iter().map(|(me, other)| query(*me, *other, "LA", 0)).collect();
        let grounded: Vec<_> = irs
            .iter()
            .map(|ir| ground(&db, ir, &VarEnv::new()).expect("ground"))
            .collect();
        let inputs: Vec<SolveInput> = irs
            .iter()
            .zip(&grounded)
            .map(|(ir, g)| SolveInput { ir, grounding: g })
            .collect();
        let a = solve(&inputs, &SolverConfig::default());
        let b = solve(&inputs, &SolverConfig::default());
        prop_assert_eq!(a.outcomes, b.outcomes);
        prop_assert_eq!(a.answer_relations, b.answer_relations);
        prop_assert_eq!(a.groups, b.groups);
    }
}

/// Hand-built IR (no SQL): an unsatisfiable self-demand never gets
/// answered, regardless of groundings present.
#[test]
fn unsatisfiable_posts_never_answered() {
    let ir = QueryIr {
        heads: vec![Atom::new(
            "R",
            vec![Term::Const(Value::str("a")), Term::Var("x".into())],
        )],
        posts: vec![Atom::new("S", vec![Term::Const(Value::str("b"))])], // nobody provides S
        body: Body {
            memberships: vec![Membership {
                tuple: vec![Term::Var("x".into())],
                select: match parse_statement("SELECT fno FROM Flights").expect("parse") {
                    Statement::Select(s) => s,
                    _ => unreachable!(),
                },
            }],
            filters: vec![Filter {
                op: youtopia_storage::CmpOp::Ge,
                lhs: Term::Var("x".into()),
                rhs: Term::Const(Value::Int(0)),
            }],
        },
        bindings: vec![],
        choose: 1,
    };
    let db = db_with_flights(4);
    let g = ground(&db, &ir, &VarEnv::new()).expect("ground");
    assert!(!g.groundings.is_empty());
    let sol = solve(
        &[SolveInput {
            ir: &ir,
            grounding: &g,
        }],
        &SolverConfig::default(),
    );
    assert_eq!(sol.outcomes[0], QueryOutcome::NoPartner);
}
