//! Grounding (Appendix A): evaluate the body of each entangled query
//! against the database, producing the set of *groundings* — the query with
//! variables replaced by constants under each valuation.
//!
//! "To compute a grounding essentially means to evaluate the portion of the
//! WHERE clause which does not refer to an ANSWER relation." The valuations
//! come from the membership subqueries; filters restrict them. The tables
//! touched are reported as the grounding-read footprint so the engine can
//! issue `R^G` operations and take the shared locks that keep quasi-reads
//! repeatable (§3.3.3).

use crate::ir::{Atom, QueryIr, Term};
use std::collections::HashMap;
use std::fmt;
use youtopia_sql::{lower_select, LowerError, VarEnv};
use youtopia_storage::{eval_spj, StorageError, TableProvider, Value};

/// One grounding of a query: its ground head and postcondition atoms plus
/// the valuation that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct Grounding {
    pub heads: Vec<Atom>,
    pub posts: Vec<Atom>,
    /// The head tuple for the first INTO relation — what the querying
    /// transaction receives as its answer row.
    pub answer_row: Vec<Value>,
    pub valuation: HashMap<String, Value>,
}

/// All groundings of one query on one database snapshot.
#[derive(Debug, Clone, Default)]
pub struct GroundingSet {
    pub groundings: Vec<Grounding>,
    /// Tables the grounding read (lower-cased, deduplicated).
    pub tables_read: Vec<String>,
}

/// Grounding failures.
#[derive(Debug, Clone, PartialEq)]
pub enum GroundError {
    Lower(LowerError),
    Storage(StorageError),
    /// A filter compared terms that were not bound — cannot happen for
    /// range-restricted queries, kept for defense in depth.
    UnboundFilterTerm(String),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::Lower(e) => write!(f, "{e}"),
            GroundError::Storage(e) => write!(f, "{e}"),
            GroundError::UnboundFilterTerm(t) => write!(f, "unbound term `{t}` in filter"),
        }
    }
}

impl std::error::Error for GroundError {}

impl From<LowerError> for GroundError {
    fn from(e: LowerError) -> Self {
        GroundError::Lower(e)
    }
}

impl From<StorageError> for GroundError {
    fn from(e: StorageError) -> Self {
        GroundError::Storage(e)
    }
}

/// Compute all groundings of `ir` on `db` — any table source: an owned
/// `Database` or a pinned view over the concurrent catalog (the engine
/// grounds against per-table read guards whose consistency is guaranteed by
/// the grounding-read 2PL locks of §3.3.3, not by a global latch). Host
/// variables were already substituted into the IR; `vars` is still
/// consulted for host variables inside body subqueries.
pub fn ground(
    db: &dyn TableProvider,
    ir: &QueryIr,
    vars: &VarEnv,
) -> Result<GroundingSet, GroundError> {
    // Start from the empty valuation and join in each membership.
    let mut valuations: Vec<HashMap<String, Value>> = vec![HashMap::new()];
    for m in &ir.body.memberships {
        let lowered = lower_select(db, &m.select, vars)?;
        let out = eval_spj(db, &lowered.query)?;
        let mut next = Vec::new();
        for val in &valuations {
            for row in &out.rows {
                if row.len() != m.tuple.len() {
                    return Err(GroundError::Lower(LowerError::Unsupported(
                        "membership tuple arity mismatch",
                    )));
                }
                if let Some(extended) = unify_tuple(val, &m.tuple, row) {
                    next.push(extended);
                }
            }
        }
        valuations = next;
        if valuations.is_empty() {
            break;
        }
    }

    // Apply filters.
    let mut kept = Vec::new();
    'vals: for val in valuations {
        for f in &ir.body.filters {
            let l = term_value(&f.lhs, &val)?;
            let r = term_value(&f.rhs, &val)?;
            if !f.op.eval(&l, &r) {
                continue 'vals;
            }
        }
        kept.push(val);
    }

    // Materialize groundings; deduplicate identical ground atoms (two
    // valuations may project to the same head, e.g. unused body columns).
    let mut groundings = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for val in kept {
        let heads: Vec<Atom> = ir
            .heads
            .iter()
            .map(|a| a.substitute(&val).expect("range-restricted"))
            .collect();
        let posts: Vec<Atom> = ir
            .posts
            .iter()
            .map(|a| a.substitute(&val).expect("range-restricted"))
            .collect();
        let key: (Vec<Atom>, Vec<Atom>) = (heads.clone(), posts.clone());
        if !seen.insert(key) {
            continue;
        }
        let answer_row: Vec<Value> = heads
            .first()
            .map(|h| {
                h.terms
                    .iter()
                    .map(|t| t.as_const().expect("ground").clone())
                    .collect()
            })
            .unwrap_or_default();
        groundings.push(Grounding {
            heads,
            posts,
            answer_row,
            valuation: val,
        });
    }

    Ok(GroundingSet {
        groundings,
        tables_read: ir.tables_read(),
    })
}

fn unify_tuple(
    base: &HashMap<String, Value>,
    tuple: &[Term],
    row: &[Value],
) -> Option<HashMap<String, Value>> {
    let mut val = base.clone();
    for (t, v) in tuple.iter().zip(row) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(x) => match val.get(x) {
                Some(bound) if bound != v => return None,
                Some(_) => {}
                None => {
                    val.insert(x.clone(), v.clone());
                }
            },
        }
    }
    Some(val)
}

fn term_value(t: &Term, val: &HashMap<String, Value>) -> Result<Value, GroundError> {
    match t {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(x) => val
            .get(x)
            .cloned()
            .ok_or_else(|| GroundError::UnboundFilterTerm(x.clone())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::from_ast;
    use youtopia_sql::{parse_statement, Statement};
    use youtopia_storage::{Database, Schema, ValueType};

    /// The Figure 1(a) database.
    fn fig1_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Flights",
            Schema::of(&[
                ("fno", ValueType::Int),
                ("fdate", ValueType::Date),
                ("dest", ValueType::Str),
            ]),
        )
        .unwrap();
        db.create_table(
            "Airlines",
            Schema::of(&[("fno", ValueType::Int), ("airline", ValueType::Str)]),
        )
        .unwrap();
        for (fno, d, dest) in [
            (122, 100, "LA"),
            (123, 101, "LA"),
            (124, 100, "LA"),
            (235, 102, "Paris"),
        ] {
            db.insert(
                "Flights",
                vec![Value::Int(fno), Value::Date(d), Value::str(dest)],
            )
            .unwrap();
        }
        for (fno, a) in [
            (122, "United"),
            (123, "United"),
            (124, "USAir"),
            (235, "Delta"),
        ] {
            db.insert("Airlines", vec![Value::Int(fno), Value::str(a)])
                .unwrap();
        }
        db
    }

    fn ir_of(sql: &str) -> QueryIr {
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        from_ast(&eq, &VarEnv::new()).unwrap()
    }

    #[test]
    fn mickey_grounds_to_three_flights() {
        // Figure 7(b), groundings 1-3: flights 122, 123, 124.
        let db = fig1_db();
        let ir = ir_of(
            "SELECT 'Mickey', fno, fdate INTO ANSWER Reservation \
             WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
             AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1",
        );
        let gs = ground(&db, &ir, &VarEnv::new()).unwrap();
        assert_eq!(gs.groundings.len(), 3);
        let fnos: Vec<i64> = gs
            .groundings
            .iter()
            .map(|g| g.answer_row[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos, vec![122, 123, 124]);
        assert_eq!(gs.tables_read, vec!["flights"]);
        // Posts mirror heads with Minnie substituted.
        assert_eq!(
            gs.groundings[0].posts[0].terms[0],
            Term::Const(Value::str("Minnie"))
        );
    }

    #[test]
    fn minnie_grounds_to_united_flights_only() {
        // Figure 7(b), groundings 4-5: flights 122 and 123 (United only).
        let db = fig1_db();
        let ir = ir_of(
            "SELECT 'Minnie', fno, fdate INTO ANSWER Reservation \
             WHERE fno, fdate IN (SELECT fno, fdate FROM Flights F, Airlines A \
                                  WHERE F.dest='LA' AND F.fno = A.fno AND A.airline='United') \
             AND ('Mickey', fno, fdate) IN ANSWER Reservation CHOOSE 1",
        );
        let gs = ground(&db, &ir, &VarEnv::new()).unwrap();
        let fnos: Vec<i64> = gs
            .groundings
            .iter()
            .map(|g| g.answer_row[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos, vec![122, 123]);
        assert_eq!(gs.tables_read, vec!["airlines", "flights"]);
    }

    #[test]
    fn filters_prune_valuations() {
        let db = fig1_db();
        let ir = ir_of(
            "SELECT 'M', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') AND fno > 122 \
             AND ('N', fno) IN ANSWER R CHOOSE 1",
        );
        let gs = ground(&db, &ir, &VarEnv::new()).unwrap();
        let fnos: Vec<i64> = gs
            .groundings
            .iter()
            .map(|g| g.answer_row[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos, vec![123, 124]);
    }

    #[test]
    fn multiple_memberships_join_on_shared_vars() {
        let db = fig1_db();
        // fno must be an LA flight AND a United flight.
        let ir = ir_of(
            "SELECT 'M', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND fno IN (SELECT fno FROM Airlines WHERE airline='United') \
             AND ('N', fno) IN ANSWER R CHOOSE 1",
        );
        let gs = ground(&db, &ir, &VarEnv::new()).unwrap();
        let fnos: Vec<i64> = gs
            .groundings
            .iter()
            .map(|g| g.answer_row[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos, vec![122, 123]);
    }

    #[test]
    fn empty_grounding_set_when_no_data() {
        let db = fig1_db();
        let ir = ir_of(
            "SELECT 'M', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='Tokyo') \
             AND ('N', fno) IN ANSWER R CHOOSE 1",
        );
        let gs = ground(&db, &ir, &VarEnv::new()).unwrap();
        assert!(gs.groundings.is_empty());
        assert_eq!(
            gs.tables_read,
            vec!["flights"],
            "footprint reported even when empty"
        );
    }

    #[test]
    fn constant_tuple_positions_filter() {
        let db = fig1_db();
        // The constant May-3 date (day 100) restricts via tuple unification.
        let ir = ir_of(
            "SELECT 'M', fno INTO ANSWER R \
             WHERE (fno, '1970-04-11') IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
             AND ('N', fno) IN ANSWER R CHOOSE 1",
        );
        let gs = ground(&db, &ir, &VarEnv::new()).unwrap();
        let fnos: Vec<i64> = gs
            .groundings
            .iter()
            .map(|g| g.answer_row[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos, vec![122, 124]); // the two day-100 flights
    }

    #[test]
    fn duplicate_groundings_deduplicated() {
        let db = fig1_db();
        // Only fno is projected into the head; fdate is joined in the
        // membership but unused, so 122/May3 and 122 via another row would
        // collapse. Here each fno is unique so dedup is a no-op, but a
        // repeated insert creates a real duplicate.
        let mut db2 = db.clone();
        db2.insert(
            "Flights",
            vec![Value::Int(122), Value::Date(100), Value::str("LA")],
        )
        .unwrap();
        let ir = ir_of(
            "SELECT 'M', fno INTO ANSWER R \
             WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
             AND ('N', fno) IN ANSWER R CHOOSE 1",
        );
        let gs = ground(&db2, &ir, &VarEnv::new()).unwrap();
        let fnos: Vec<i64> = gs
            .groundings
            .iter()
            .map(|g| g.answer_row[1].as_int().unwrap())
            .collect();
        assert_eq!(fnos, vec![122, 123, 124], "122 appears once");
    }
}
