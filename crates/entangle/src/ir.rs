//! The intermediate representation of entangled queries (Appendix A):
//! `{C} H ← B` — head `H` and postcondition `C` are conjunctions of atoms
//! over answer relations, body `B` is a select-project-join over database
//! relations that binds the variables.

use std::collections::{HashMap, HashSet};
use std::fmt;
use youtopia_sql::{Cond, EntangledSelect, Scalar, Select, VarEnv};
use youtopia_storage::{CmpOp, Value};

/// A term: constant or variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    Const(Value),
    Var(String),
}

impl Term {
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(x) => write!(f, "?{x}"),
        }
    }
}

/// A relational atom over an answer relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Answer-relation name, normalized to lower case.
    pub relation: String,
    pub terms: Vec<Term>,
}

impl Atom {
    pub fn new(relation: &str, terms: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_ascii_lowercase(),
            terms,
        }
    }

    /// Is every term a constant?
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| matches!(t, Term::Const(_)))
    }

    /// Substitute a valuation, producing a ground atom; returns `None` if
    /// any variable is unbound.
    pub fn substitute(&self, val: &HashMap<String, Value>) -> Option<Atom> {
        let terms = self
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(v) => Some(Term::Const(v.clone())),
                Term::Var(x) => val.get(x).cloned().map(Term::Const),
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Atom {
            relation: self.relation.clone(),
            terms,
        })
    }

    /// Syntactic unification of two *patterns* (variables on both sides are
    /// treated as distinct — the atoms come from different queries).
    /// Used for partner matching (Appendix B): two patterns unify iff their
    /// relations and arities agree and constants agree position-wise.
    pub fn unifiable(&self, other: &Atom) -> bool {
        self.relation == other.relation
            && self.terms.len() == other.terms.len()
            && self
                .terms
                .iter()
                .zip(&other.terms)
                .all(|(a, b)| match (a, b) {
                    (Term::Const(x), Term::Const(y)) => x == y,
                    _ => true,
                })
    }

    /// All variables in this atom.
    pub fn vars(&self) -> impl Iterator<Item = &str> + '_ {
        self.terms.iter().filter_map(|t| match t {
            Term::Var(x) => Some(x.as_str()),
            Term::Const(_) => None,
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// One membership constraint of the body: `tuple IN (SELECT …)`.
#[derive(Debug, Clone)]
pub struct Membership {
    pub tuple: Vec<Term>,
    /// Grounding subquery, still in AST form (lowered against the current
    /// database snapshot at grounding time).
    pub select: Select,
}

/// A comparison filter over body terms.
#[derive(Debug, Clone)]
pub struct Filter {
    pub op: CmpOp,
    pub lhs: Term,
    pub rhs: Term,
}

/// The body `B`: memberships bind variables, filters restrict them.
#[derive(Debug, Clone, Default)]
pub struct Body {
    pub memberships: Vec<Membership>,
    pub filters: Vec<Filter>,
}

/// An entangled query in IR form.
#[derive(Debug, Clone)]
pub struct QueryIr {
    /// Head atoms (the query's contribution to the answer relations).
    pub heads: Vec<Atom>,
    /// Postcondition atoms (what must also be present in the answers).
    pub posts: Vec<Atom>,
    pub body: Body,
    /// `(head tuple index, host variable)` — the `AS @var` bindings.
    pub bindings: Vec<(usize, String)>,
    /// `CHOOSE k` (the paper always uses 1).
    pub choose: u64,
}

/// Errors in IR construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A variable in H or C does not occur in B — violates the
    /// range-restriction requirement of Appendix A.
    NotRangeRestricted(String),
    /// A host variable was unbound at translation time.
    UnboundVariable(String),
    /// Construct outside the supported entangled fragment.
    Unsupported(&'static str),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::NotRangeRestricted(v) => {
                write!(
                    f,
                    "variable `{v}` in head/postcondition is not bound by the body"
                )
            }
            IrError::UnboundVariable(v) => write!(f, "unbound host variable @{v}"),
            IrError::Unsupported(w) => write!(f, "unsupported entangled construct: {w}"),
        }
    }
}

impl std::error::Error for IrError {}

fn scalar_to_term(s: &Scalar, vars: &VarEnv) -> Result<Term, IrError> {
    match s {
        Scalar::Lit(v) => Ok(Term::Const(v.clone())),
        Scalar::HostVar(n) => vars
            .get(n)
            .cloned()
            .map(Term::Const)
            .ok_or_else(|| IrError::UnboundVariable(n.clone())),
        Scalar::Col(c) => {
            if c.qualifier.is_some() {
                return Err(IrError::Unsupported("qualified variable in entangled head"));
            }
            Ok(Term::Var(c.column.to_ascii_lowercase()))
        }
        Scalar::Add(..) | Scalar::Sub(..) => Err(IrError::Unsupported(
            "arithmetic in entangled head/postcondition",
        )),
    }
}

/// Translate a parsed entangled SELECT into IR, substituting the current
/// host-variable environment (host variables become constants, matching
/// §3.1 where earlier answers parameterize later queries).
pub fn from_ast(eq: &EntangledSelect, vars: &VarEnv) -> Result<QueryIr, IrError> {
    // Head: one atom per answer relation listed in INTO (the same tuple
    // goes to each — see DESIGN.md on the underspecified multi-INTO form).
    let tuple: Vec<Term> = eq
        .items
        .iter()
        .map(|it| scalar_to_term(&it.expr, vars))
        .collect::<Result<_, _>>()?;
    let heads: Vec<Atom> = eq
        .into
        .iter()
        .map(|rel| Atom::new(rel, tuple.clone()))
        .collect();
    let bindings: Vec<(usize, String)> = eq
        .items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| it.bind.clone().map(|b| (i, b)))
        .collect();

    let mut posts = Vec::new();
    let mut body = Body::default();
    for c in eq.where_clause.conjuncts() {
        match c {
            Cond::InAnswer { tuple, answer } => {
                let terms = tuple
                    .iter()
                    .map(|s| scalar_to_term(s, vars))
                    .collect::<Result<Vec<_>, _>>()?;
                posts.push(Atom::new(answer, terms));
            }
            Cond::InSelect { tuple, select } => {
                if select.where_clause.mentions_answer() {
                    return Err(IrError::Unsupported(
                        "ANSWER reference inside body subquery",
                    ));
                }
                let terms = tuple
                    .iter()
                    .map(|s| scalar_to_term(s, vars))
                    .collect::<Result<Vec<_>, _>>()?;
                body.memberships.push(Membership {
                    tuple: terms,
                    select: (**select).clone(),
                });
            }
            Cond::Cmp { op, lhs, rhs } => {
                body.filters.push(Filter {
                    op: *op,
                    lhs: scalar_to_term(lhs, vars)?,
                    rhs: scalar_to_term(rhs, vars)?,
                });
            }
            Cond::True => {}
            Cond::And(..) => unreachable!("conjuncts() flattens"),
            Cond::Or(..) | Cond::Not(..) => {
                return Err(IrError::Unsupported("OR/NOT in entangled WHERE clause"))
            }
        }
    }

    let ir = QueryIr {
        heads,
        posts,
        body,
        bindings,
        choose: eq.choose,
    };
    ir.check_range_restriction()?;
    Ok(ir)
}

impl QueryIr {
    /// Enforce the range-restriction (safety) requirement of Appendix A:
    /// every variable appearing in `H` or `C` must appear in `B`.
    pub fn check_range_restriction(&self) -> Result<(), IrError> {
        let bound: HashSet<&str> = self
            .body
            .memberships
            .iter()
            .flat_map(|m| m.tuple.iter())
            .filter_map(|t| match t {
                Term::Var(x) => Some(x.as_str()),
                Term::Const(_) => None,
            })
            .collect();
        for atom in self.heads.iter().chain(&self.posts) {
            for v in atom.vars() {
                if !bound.contains(v) {
                    return Err(IrError::NotRangeRestricted(v.to_string()));
                }
            }
        }
        // Filters may only mention bound variables too.
        for f in &self.body.filters {
            for t in [&f.lhs, &f.rhs] {
                if let Term::Var(x) = t {
                    if !bound.contains(x.as_str()) {
                        return Err(IrError::NotRangeRestricted(x.clone()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Database tables the body reads when grounding — the *grounding-read
    /// footprint* that the isolation layer turns into `R^G` operations and
    /// the lock manager protects with shared locks.
    pub fn tables_read(&self) -> Vec<String> {
        // One table walk for the whole system: `Select::collect_tables`
        // (FROM plus IN-subqueries, recursively) also feeds the executor's
        // latch footprint, so lock and latch pinning can never diverge.
        let mut names = Vec::new();
        for m in &self.body.memberships {
            m.select.collect_tables(&mut names);
        }
        let mut out: Vec<String> = names.into_iter().map(|n| n.to_ascii_lowercase()).collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use youtopia_sql::{parse_statement, Statement};

    fn mickey_ir() -> QueryIr {
        let sql = "SELECT 'Mickey', fno, fdate INTO ANSWER Reservation \
                   WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
                   AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        from_ast(&eq, &VarEnv::new()).unwrap()
    }

    #[test]
    fn translation_matches_figure7() {
        // Figure 7(a): {R(Minnie,x,y)} R(Mickey,x,y) <- F(x,y,LA).
        let ir = mickey_ir();
        assert_eq!(ir.heads.len(), 1);
        let h = &ir.heads[0];
        assert_eq!(h.relation, "reservation");
        assert_eq!(h.terms[0], Term::Const(Value::str("Mickey")));
        assert_eq!(h.terms[1], Term::Var("fno".into()));
        assert_eq!(ir.posts.len(), 1);
        assert_eq!(ir.posts[0].terms[0], Term::Const(Value::str("Minnie")));
        assert_eq!(ir.body.memberships.len(), 1);
        assert_eq!(ir.choose, 1);
    }

    #[test]
    fn range_restriction_enforced() {
        // `hid` never bound by the body.
        let sql = "SELECT 'Mickey', hid INTO ANSWER R \
                   WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(
            from_ast(&eq, &VarEnv::new()).unwrap_err(),
            IrError::NotRangeRestricted("hid".into())
        );
    }

    #[test]
    fn host_vars_become_constants() {
        let sql = "SELECT 'Mickey', hid, @ArrivalDay INTO ANSWER HotelRes \
                   WHERE hid IN (SELECT hid FROM Hotels WHERE location='LA') \
                   AND ('Minnie', hid, @ArrivalDay) IN ANSWER HotelRes CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let mut vars = VarEnv::new();
        vars.insert("ArrivalDay".into(), Value::Date(100));
        let ir = from_ast(&eq, &vars).unwrap();
        assert_eq!(ir.heads[0].terms[2], Term::Const(Value::Date(100)));
        assert_eq!(ir.posts[0].terms[2], Term::Const(Value::Date(100)));
        // Unbound -> error.
        assert_eq!(
            from_ast(&eq, &VarEnv::new()).unwrap_err(),
            IrError::UnboundVariable("ArrivalDay".into())
        );
    }

    #[test]
    fn bindings_recorded() {
        let sql = "SELECT 'Mickey', fno, fdate AS @ArrivalDay INTO ANSWER FlightRes \
                   WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
                   CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let ir = from_ast(&eq, &VarEnv::new()).unwrap();
        assert_eq!(ir.bindings, vec![(2, "ArrivalDay".to_string())]);
    }

    #[test]
    fn unification_is_pattern_level() {
        let a = Atom::new(
            "R",
            vec![Term::Const(Value::str("Mickey")), Term::Var("x".into())],
        );
        let b = Atom::new(
            "r",
            vec![
                Term::Const(Value::str("Mickey")),
                Term::Const(Value::Int(1)),
            ],
        );
        assert!(a.unifiable(&b));
        let c = Atom::new(
            "R",
            vec![Term::Const(Value::str("Minnie")), Term::Var("y".into())],
        );
        assert!(!a.unifiable(&c), "constants clash");
        let d = Atom::new(
            "S",
            vec![Term::Const(Value::str("Mickey")), Term::Var("x".into())],
        );
        assert!(!a.unifiable(&d), "relations differ");
        let e = Atom::new("R", vec![Term::Var("z".into())]);
        assert!(!a.unifiable(&e), "arity differs");
    }

    #[test]
    fn substitution() {
        let a = Atom::new("R", vec![Term::Var("x".into()), Term::Const(Value::Int(1))]);
        let mut val = HashMap::new();
        assert_eq!(a.substitute(&val), None);
        val.insert("x".to_string(), Value::str("LA"));
        let g = a.substitute(&val).unwrap();
        assert!(g.is_ground());
        assert_eq!(g.terms[0], Term::Const(Value::str("LA")));
    }

    #[test]
    fn tables_read_footprint() {
        let sql = "SELECT 'Minnie', fno INTO ANSWER R \
                   WHERE fno IN (SELECT fno FROM Flights F, Airlines A \
                                 WHERE F.fno = A.fno AND A.airline='United') \
                   AND ('Mickey', fno) IN ANSWER R CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let ir = from_ast(&eq, &VarEnv::new()).unwrap();
        assert_eq!(ir.tables_read(), vec!["airlines", "flights"]);
    }

    #[test]
    fn or_in_entangled_where_rejected() {
        let sql = "SELECT 'M', fno INTO ANSWER R \
                   WHERE fno IN (SELECT fno FROM Flights) OR fno = 1 CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert!(matches!(
            from_ast(&eq, &VarEnv::new()).unwrap_err(),
            IrError::Unsupported(_)
        ));
    }

    #[test]
    fn filters_collected() {
        let sql = "SELECT 'M', fno INTO ANSWER R \
                   WHERE fno IN (SELECT fno FROM Flights) AND fno > 100 \
                   AND ('N', fno) IN ANSWER R CHOOSE 1";
        let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let ir = from_ast(&eq, &VarEnv::new()).unwrap();
        assert_eq!(ir.body.filters.len(), 1);
        assert_eq!(ir.body.filters[0].op, CmpOp::Gt);
    }
}
