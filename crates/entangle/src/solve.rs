//! The coordinating-set search (Appendix A, "Finding the answers").
//!
//! Given the grounding sets of all pending entangled queries, find a subset
//! `G'` of groundings — at most one per query — whose heads collectively
//! satisfy every chosen grounding's postconditions. The answer relation is
//! the union of the chosen heads.
//!
//! The search maximizes the number of answered queries (so a run makes as
//! much progress as possible), decomposes the problem into connected
//! components of the pattern-compatibility graph, and prunes with a
//! provider index; a node budget bounds the worst case (best-effort
//! maximality, mirroring the pragmatics of the SIGMOD'11 algorithm).
//!
//! Appendix B's success/failure dichotomy is implemented exactly: a query
//! that *pattern-matched* some partner but received no coordinated answer
//! gets [`QueryOutcome::EmptyAnswer`] (success, empty result — the
//! transaction proceeds); a query with no pattern-level partner gets
//! [`QueryOutcome::NoPartner`] (failure — the transaction waits and the
//! query is retried in a later run).

use crate::ground::GroundingSet;
use crate::ir::{Atom, QueryIr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use youtopia_storage::Value;

/// How the system resolves the nondeterministic choice of §2 (Figure 1:
/// "nondeterministically chooses either flight 122 or 123").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoicePolicy {
    /// Deterministic: first grounding in evaluation order. Appendix C.1
    /// assumes deterministic evaluation; this is the default.
    First,
    /// Seeded pseudo-random shuffle of grounding order (still reproducible
    /// for a fixed seed).
    Seeded(u64),
}

/// Solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    pub choice: ChoicePolicy,
    /// Backtracking node budget per component.
    pub node_budget: usize,
    /// Use the two-query fast path when a component is a simple pair
    /// (ablation `Ab3` disables it to measure the general solver).
    pub pairwise_fast_path: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            choice: ChoicePolicy::First,
            node_budget: 200_000,
            pairwise_fast_path: true,
        }
    }
}

/// Outcome for one query (Appendix B dichotomy).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Chosen grounding index into the query's [`GroundingSet`].
    Answered { grounding: usize },
    /// A combined query was formulated (pattern-level partner existed) but
    /// evaluation produced no coordinated answer for this query: success
    /// with an empty result.
    EmptyAnswer,
    /// No partner at all: the query fails for now and must wait.
    NoPartner,
}

/// The result of one joint evaluation.
#[derive(Debug, Clone)]
pub struct Solution {
    pub outcomes: Vec<QueryOutcome>,
    /// Union of the chosen heads, per answer relation (sorted rows).
    pub answer_relations: BTreeMap<String, Vec<Vec<Value>>>,
    /// Entanglement groups: sets of query indices whose chosen groundings
    /// mutually satisfied each other — each becomes one entanglement
    /// operation `E^k` and one group-commit unit.
    pub groups: Vec<Vec<usize>>,
    /// Search effort (diagnostics / ablation benches).
    pub nodes_explored: usize,
}

/// One query's input to the joint evaluation.
#[derive(Debug)]
pub struct SolveInput<'a> {
    pub ir: &'a QueryIr,
    pub grounding: &'a GroundingSet,
}

/// Jointly answer a set of entangled queries.
pub fn solve(inputs: &[SolveInput<'_>], cfg: &SolverConfig) -> Solution {
    let n = inputs.len();
    let mut outcomes = vec![QueryOutcome::NoPartner; n];
    let mut nodes_total = 0usize;

    // ---- Pattern-level partner matching (Appendix B) ----
    // matched[i] ⇔ every postcondition pattern of i unifies with a head
    // pattern of some query in the set (possibly i itself), and i's head
    // patterns help someone or i has no postconditions. A query with no
    // postconditions is trivially matched (it coordinates with no one).
    let matched: Vec<bool> = (0..n)
        .map(|i| {
            inputs[i]
                .ir
                .posts
                .iter()
                .all(|p| (0..n).any(|j| inputs[j].ir.heads.iter().any(|h| h.unifiable(p))))
        })
        .collect();

    // ---- Component decomposition over the pattern graph ----
    let mut dsu = Dsu::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let connects = |a: &QueryIr, b: &QueryIr| {
                a.posts
                    .iter()
                    .any(|p| b.heads.iter().any(|h| h.unifiable(p)))
            };
            if connects(inputs[i].ir, inputs[j].ir) || connects(inputs[j].ir, inputs[i].ir) {
                dsu.union(i, j);
            }
        }
    }
    let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        components.entry(dsu.find(i)).or_default().push(i);
    }

    // ---- Per-component search ----
    let mut chosen: Vec<Option<usize>> = vec![None; n];
    for comp in components.values() {
        let (assignment, nodes) = solve_component(inputs, comp, cfg);
        nodes_total += nodes;
        for (pos, &qi) in comp.iter().enumerate() {
            chosen[qi] = assignment[pos];
        }
    }

    // ---- Outcomes ----
    for i in 0..n {
        outcomes[i] = match chosen[i] {
            Some(g) => QueryOutcome::Answered { grounding: g },
            None if matched[i] => QueryOutcome::EmptyAnswer,
            None => QueryOutcome::NoPartner,
        };
    }

    // ---- Answer relations: union of chosen heads ----
    let mut answer_relations: BTreeMap<String, Vec<Vec<Value>>> = BTreeMap::new();
    for (i, g) in chosen.iter().enumerate() {
        if let Some(gi) = g {
            for h in &inputs[i].grounding.groundings[*gi].heads {
                let row: Vec<Value> = h
                    .terms
                    .iter()
                    .map(|t| t.as_const().expect("ground").clone())
                    .collect();
                answer_relations
                    .entry(h.relation.clone())
                    .or_default()
                    .push(row);
            }
        }
    }
    for rows in answer_relations.values_mut() {
        rows.sort();
        rows.dedup();
    }

    // ---- Entanglement groups: who satisfied whom ----
    let mut gdsu = Dsu::new(n);
    let answered: Vec<usize> = (0..n).filter(|i| chosen[*i].is_some()).collect();
    for &i in &answered {
        let gi = &inputs[i].grounding.groundings[chosen[i].expect("answered")];
        for p in &gi.posts {
            for &j in &answered {
                let gj = &inputs[j].grounding.groundings[chosen[j].expect("answered")];
                if gj.heads.contains(p) {
                    gdsu.union(i, j);
                }
            }
        }
    }
    let mut groups_map: HashMap<usize, Vec<usize>> = HashMap::new();
    for &i in &answered {
        groups_map.entry(gdsu.find(i)).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = groups_map.into_values().collect();
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort();

    Solution {
        outcomes,
        answer_relations,
        groups,
        nodes_explored: nodes_total,
    }
}

/// Search one component; returns per-position assignment and node count.
fn solve_component(
    inputs: &[SolveInput<'_>],
    comp: &[usize],
    cfg: &SolverConfig,
) -> (Vec<Option<usize>>, usize) {
    let m = comp.len();

    // Grounding evaluation order per query (ChoicePolicy).
    let mut orders: Vec<Vec<usize>> = comp
        .iter()
        .map(|&qi| (0..inputs[qi].grounding.groundings.len()).collect())
        .collect();
    if let ChoicePolicy::Seeded(seed) = cfg.choice {
        let mut rng = StdRng::seed_from_u64(seed);
        for o in &mut orders {
            o.shuffle(&mut rng);
        }
    }

    // Pairwise fast path: a two-query component where each grounding has at
    // most one postcondition — scan for the first mutually-satisfying pair.
    if cfg.pairwise_fast_path && m == 2 {
        let (a, b) = (comp[0], comp[1]);
        let mut nodes = 0usize;
        // Index b's groundings by head atoms for O(1) probing.
        let mut head_index: HashMap<&Atom, Vec<usize>> = HashMap::new();
        for (bi, g) in inputs[b].grounding.groundings.iter().enumerate() {
            for h in &g.heads {
                head_index.entry(h).or_default().push(bi);
            }
        }
        for &ai in &orders[0] {
            nodes += 1;
            let ga = &inputs[a].grounding.groundings[ai];
            // Candidate partners: groundings of b providing ga's posts.
            let mut candidates: Option<Vec<usize>> = None;
            for p in &ga.posts {
                let provs = head_index.get(p).cloned().unwrap_or_default();
                candidates = Some(match candidates {
                    None => provs,
                    Some(prev) => prev.into_iter().filter(|x| provs.contains(x)).collect(),
                });
            }
            // When `ga` has no postconditions the fold above never ran:
            // answer `a` alone if `b` can't pair, but keep trying both.
            let candidates = candidates.unwrap_or_default();
            for &bi in &candidates {
                nodes += 1;
                let gb = &inputs[b].grounding.groundings[bi];
                // gb's posts must be satisfied by ga's (or its own) heads.
                let ok = gb
                    .posts
                    .iter()
                    .all(|p| ga.heads.contains(p) || gb.heads.contains(p));
                // And ga's posts could also be self-satisfied.
                let ok = ok
                    && ga
                        .posts
                        .iter()
                        .all(|p| gb.heads.contains(p) || ga.heads.contains(p));
                if ok {
                    return (vec![Some(ai), Some(bi)], nodes);
                }
            }
        }
        // No pair: fall through to the general search, which also explores
        // single-query (self-satisfying) answers.
    }

    // Provider index: ground atom → (position in comp, grounding idx).
    let mut providers: HashMap<Atom, Vec<(usize, usize)>> = HashMap::new();
    for (pos, &qi) in comp.iter().enumerate() {
        for (g, gr) in inputs[qi].grounding.groundings.iter().enumerate() {
            for h in &gr.heads {
                providers.entry(h.clone()).or_default().push((pos, g));
            }
        }
    }

    let mut best: Vec<Option<usize>> = vec![None; m];
    let mut best_score = 0usize;
    let mut current: Vec<Option<usize>> = vec![None; m];
    let mut headset: HashMap<Atom, usize> = HashMap::new();
    let mut unmet: Vec<Atom> = Vec::new();
    let mut nodes = 0usize;

    #[allow(clippy::too_many_arguments)]
    fn rec(
        inputs: &[SolveInput<'_>],
        comp: &[usize],
        orders: &[Vec<usize>],
        providers: &HashMap<Atom, Vec<(usize, usize)>>,
        pos: usize,
        current: &mut Vec<Option<usize>>,
        headset: &mut HashMap<Atom, usize>,
        unmet: &mut Vec<Atom>,
        best: &mut Vec<Option<usize>>,
        best_score: &mut usize,
        nodes: &mut usize,
        budget: usize,
    ) {
        *nodes += 1;
        if *nodes > budget {
            return;
        }
        let m = comp.len();
        if pos == m {
            if unmet.iter().all(|p| headset.contains_key(p)) {
                let score = current.iter().filter(|c| c.is_some()).count();
                if score > *best_score {
                    *best_score = score;
                    best.clone_from(current);
                }
            }
            return;
        }
        // Bound: even answering everything remaining cannot beat best.
        let answered_so_far = current[..pos].iter().filter(|c| c.is_some()).count();
        if answered_so_far + (m - pos) <= *best_score {
            return;
        }

        let qi = comp[pos];
        // Try each grounding.
        for &g in &orders[pos] {
            let gr = &inputs[qi].grounding.groundings[g];
            // Feasibility: every post must be in headset, own heads, or
            // providable by a not-yet-assigned query.
            let feasible = gr.posts.iter().all(|p| {
                headset.contains_key(p)
                    || gr.heads.contains(p)
                    || providers
                        .get(p)
                        .is_some_and(|ps| ps.iter().any(|(pp, _)| *pp > pos))
            });
            if !feasible {
                continue;
            }
            current[pos] = Some(g);
            for h in &gr.heads {
                *headset.entry(h.clone()).or_insert(0) += 1;
            }
            let unmet_base = unmet.len();
            unmet.extend(gr.posts.iter().cloned());
            // Incremental demand check: every outstanding demand must be
            // satisfied already or still providable by a later query.
            // Without this, split coordination groups degenerate into
            // exhaustive search (each wrong-value grounding is only
            // rejected at the leaf).
            let viable = unmet.iter().all(|p| {
                headset.contains_key(p)
                    || providers
                        .get(p)
                        .is_some_and(|ps| ps.iter().any(|(pp, _)| *pp > pos))
            });
            if viable {
                rec(
                    inputs,
                    comp,
                    orders,
                    providers,
                    pos + 1,
                    current,
                    headset,
                    unmet,
                    best,
                    best_score,
                    nodes,
                    budget,
                );
            }
            unmet.truncate(unmet_base);
            for h in &gr.heads {
                if let Some(c) = headset.get_mut(h) {
                    *c -= 1;
                    if *c == 0 {
                        headset.remove(h);
                    }
                }
            }
            current[pos] = None;
            if *nodes > budget {
                return;
            }
        }
        // Or leave unanswered — viable only if no outstanding demand
        // depended on this query as its last possible provider.
        let skip_viable = unmet.iter().all(|p| {
            headset.contains_key(p)
                || providers
                    .get(p)
                    .is_some_and(|ps| ps.iter().any(|(pp, _)| *pp > pos))
        });
        if skip_viable {
            current[pos] = None;
            rec(
                inputs,
                comp,
                orders,
                providers,
                pos + 1,
                current,
                headset,
                unmet,
                best,
                best_score,
                nodes,
                budget,
            );
        }
    }

    rec(
        inputs,
        comp,
        &orders,
        &providers,
        0,
        &mut current,
        &mut headset,
        &mut unmet,
        &mut best,
        &mut best_score,
        &mut nodes,
        cfg.node_budget,
    );
    (best, nodes)
}

/// Tiny union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::ground;
    use crate::ir::from_ast;
    use std::collections::HashSet;
    use youtopia_sql::{parse_statement, Statement, VarEnv};
    use youtopia_storage::{Database, Schema, ValueType};

    fn fig1_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "Flights",
            Schema::of(&[
                ("fno", ValueType::Int),
                ("fdate", ValueType::Date),
                ("dest", ValueType::Str),
            ]),
        )
        .unwrap();
        db.create_table(
            "Airlines",
            Schema::of(&[("fno", ValueType::Int), ("airline", ValueType::Str)]),
        )
        .unwrap();
        for (fno, d, dest) in [
            (122, 100, "LA"),
            (123, 101, "LA"),
            (124, 100, "LA"),
            (235, 102, "Paris"),
        ] {
            db.insert(
                "Flights",
                vec![Value::Int(fno), Value::Date(d), Value::str(dest)],
            )
            .unwrap();
        }
        for (fno, a) in [
            (122, "United"),
            (123, "United"),
            (124, "USAir"),
            (235, "Delta"),
        ] {
            db.insert("Airlines", vec![Value::Int(fno), Value::str(a)])
                .unwrap();
        }
        db
    }

    fn prep(db: &Database, sqls: &[&str]) -> Vec<(crate::ir::QueryIr, GroundingSet)> {
        sqls.iter()
            .map(|sql| {
                let Statement::Entangled(eq) = parse_statement(sql).unwrap() else {
                    panic!()
                };
                let ir = from_ast(&eq, &VarEnv::new()).unwrap();
                let gs = ground(db, &ir, &VarEnv::new()).unwrap();
                (ir, gs)
            })
            .collect()
    }

    fn run(db: &Database, sqls: &[&str], cfg: &SolverConfig) -> (Solution, Vec<GroundingSet>) {
        let prepped = prep(db, sqls);
        let inputs: Vec<SolveInput> = prepped
            .iter()
            .map(|(ir, gs)| SolveInput { ir, grounding: gs })
            .collect();
        let sol = solve(&inputs, cfg);
        (sol, prepped.into_iter().map(|(_, gs)| gs).collect())
    }

    const MICKEY: &str = "SELECT 'Mickey', fno, fdate INTO ANSWER Reservation \
        WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
        AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1";
    const MINNIE: &str = "SELECT 'Minnie', fno, fdate INTO ANSWER Reservation \
        WHERE fno, fdate IN (SELECT fno, fdate FROM Flights F, Airlines A \
        WHERE F.dest='LA' AND F.fno = A.fno AND A.airline='United') \
        AND ('Mickey', fno, fdate) IN ANSWER Reservation CHOOSE 1";

    #[test]
    fn mickey_and_minnie_coordinate_on_united_flight() {
        // The §2 example: answer must be flight 122 or 123 for BOTH.
        let db = fig1_db();
        let (sol, gs) = run(&db, &[MICKEY, MINNIE], &SolverConfig::default());
        let QueryOutcome::Answered { grounding: g0 } = sol.outcomes[0] else {
            panic!("Mickey unanswered: {:?}", sol.outcomes)
        };
        let QueryOutcome::Answered { grounding: g1 } = sol.outcomes[1] else {
            panic!("Minnie unanswered")
        };
        let f0 = gs[0].groundings[g0].answer_row[1].as_int().unwrap();
        let f1 = gs[1].groundings[g1].answer_row[1].as_int().unwrap();
        assert_eq!(f0, f1, "same flight");
        assert!(f0 == 122 || f0 == 123, "United flight");
        // One entanglement group of both queries.
        assert_eq!(sol.groups, vec![vec![0, 1]]);
        // Answer relation contains exactly both heads.
        let rows = &sol.answer_relations["reservation"];
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn deterministic_first_choice_picks_122() {
        let db = fig1_db();
        let (sol, gs) = run(&db, &[MICKEY, MINNIE], &SolverConfig::default());
        let QueryOutcome::Answered { grounding } = sol.outcomes[0] else {
            panic!()
        };
        assert_eq!(gs[0].groundings[grounding].answer_row[1], Value::Int(122));
    }

    #[test]
    fn seeded_choice_still_coordinates() {
        let db = fig1_db();
        for seed in 0..10 {
            let cfg = SolverConfig {
                choice: ChoicePolicy::Seeded(seed),
                ..Default::default()
            };
            let (sol, gs) = run(&db, &[MICKEY, MINNIE], &cfg);
            let QueryOutcome::Answered { grounding: g0 } = sol.outcomes[0] else {
                panic!()
            };
            let QueryOutcome::Answered { grounding: g1 } = sol.outcomes[1] else {
                panic!()
            };
            assert_eq!(
                gs[0].groundings[g0].answer_row[1], gs[1].groundings[g1].answer_row[1],
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lone_query_has_no_partner() {
        // Donald alone: no one provides R(Daffy, …) → failure → wait.
        let db = fig1_db();
        let donald = "SELECT 'Donald', fno, fdate INTO ANSWER Reservation \
            WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
            AND ('Daffy', fno, fdate) IN ANSWER Reservation CHOOSE 1";
        let (sol, _) = run(&db, &[donald], &SolverConfig::default());
        assert_eq!(sol.outcomes, vec![QueryOutcome::NoPartner]);
        assert!(sol.groups.is_empty());
    }

    #[test]
    fn donald_waits_while_mickey_minnie_proceed() {
        let db = fig1_db();
        let donald = "SELECT 'Donald', fno, fdate INTO ANSWER Reservation \
            WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
            AND ('Daffy', fno, fdate) IN ANSWER Reservation CHOOSE 1";
        let (sol, _) = run(&db, &[MICKEY, MINNIE, donald], &SolverConfig::default());
        assert!(matches!(sol.outcomes[0], QueryOutcome::Answered { .. }));
        assert!(matches!(sol.outcomes[1], QueryOutcome::Answered { .. }));
        assert_eq!(sol.outcomes[2], QueryOutcome::NoPartner);
        assert_eq!(sol.groups, vec![vec![0, 1]]);
    }

    #[test]
    fn matched_but_no_common_data_is_empty_answer() {
        // Minnie insists on Delta (no LA Delta flights) — patterns match,
        // data does not: Appendix B says both succeed with empty answers.
        let db = fig1_db();
        let minnie_delta = "SELECT 'Minnie', fno, fdate INTO ANSWER Reservation \
            WHERE fno, fdate IN (SELECT fno, fdate FROM Flights F, Airlines A \
            WHERE F.dest='LA' AND F.fno = A.fno AND A.airline='Delta') \
            AND ('Mickey', fno, fdate) IN ANSWER Reservation CHOOSE 1";
        let (sol, _) = run(&db, &[MICKEY, minnie_delta], &SolverConfig::default());
        assert_eq!(sol.outcomes[0], QueryOutcome::EmptyAnswer);
        assert_eq!(sol.outcomes[1], QueryOutcome::EmptyAnswer);
        assert!(sol.answer_relations.is_empty());
    }

    #[test]
    fn three_way_cycle_coordinates() {
        // t1 needs t2's head, t2 needs t3's, t3 needs t1's: a cyclic
        // coordinating set (the Fig. 6(c) "Cyclic" structure).
        let db = fig1_db();
        let q = |me: &str, other: &str| {
            format!(
                "SELECT '{me}', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('{other}', fno) IN ANSWER R CHOOSE 1"
            )
        };
        let (a, b, c) = (q("A", "B"), q("B", "C"), q("C", "A"));
        let (sol, gs) = run(&db, &[&a, &b, &c], &SolverConfig::default());
        for o in &sol.outcomes {
            assert!(
                matches!(o, QueryOutcome::Answered { .. }),
                "{:?}",
                sol.outcomes
            );
        }
        // All three on the same flight.
        let flights: HashSet<i64> = sol
            .outcomes
            .iter()
            .enumerate()
            .map(|(i, o)| {
                let QueryOutcome::Answered { grounding } = o else {
                    unreachable!()
                };
                gs[i].groundings[*grounding].answer_row[1].as_int().unwrap()
            })
            .collect();
        assert_eq!(flights.len(), 1);
        assert_eq!(sol.groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn broken_cycle_answers_nobody() {
        // A→B→C but C needs D (absent): no subset can mutually satisfy.
        let db = fig1_db();
        let q = |me: &str, other: &str| {
            format!(
                "SELECT '{me}', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('{other}', fno) IN ANSWER R CHOOSE 1"
            )
        };
        let (a, b, c) = (q("A", "B"), q("B", "C"), q("C", "D"));
        let (sol, _) = run(&db, &[&a, &b, &c], &SolverConfig::default());
        // C has no partner (nobody contributes R(D, …)).
        assert_eq!(sol.outcomes[2], QueryOutcome::NoPartner);
        // A and B pattern-matched (B↔C patterns unify, A↔B too) but cannot
        // be answered without C: empty answers.
        assert_eq!(sol.outcomes[0], QueryOutcome::EmptyAnswer);
        assert_eq!(sol.outcomes[1], QueryOutcome::EmptyAnswer);
    }

    #[test]
    fn two_disjoint_pairs_form_two_groups() {
        let db = fig1_db();
        let q = |me: &str, other: &str| {
            format!(
                "SELECT '{me}', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('{other}', fno) IN ANSWER R CHOOSE 1"
            )
        };
        let sqls = [q("A", "B"), q("B", "A"), q("C", "D"), q("D", "C")];
        let refs: Vec<&str> = sqls.iter().map(|s| s.as_str()).collect();
        let (sol, _) = run(&db, &refs, &SolverConfig::default());
        assert_eq!(sol.groups, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn pairwise_fast_path_agrees_with_general_search() {
        let db = fig1_db();
        let fast = SolverConfig {
            pairwise_fast_path: true,
            ..Default::default()
        };
        let slow = SolverConfig {
            pairwise_fast_path: false,
            ..Default::default()
        };
        let (sf, gf) = run(&db, &[MICKEY, MINNIE], &fast);
        let (ss, gss) = run(&db, &[MICKEY, MINNIE], &slow);
        let flight = |sol: &Solution, gs: &[GroundingSet], i: usize| {
            let QueryOutcome::Answered { grounding } = sol.outcomes[i] else {
                panic!()
            };
            gs[i].groundings[grounding].answer_row[1].clone()
        };
        assert_eq!(flight(&sf, &gf, 0), flight(&ss, &gss, 0));
        assert_eq!(flight(&sf, &gf, 1), flight(&ss, &gss, 1));
        assert!(sf.nodes_explored <= ss.nodes_explored);
    }

    #[test]
    fn shared_partner_satisfies_both_requesters() {
        // Mickey and Donald both require Minnie's tuple; Minnie requires
        // Mickey's. Appendix A's coordinating-set semantics is *mutual set
        // satisfaction*, not pairing: the union of all three heads covers
        // all three postconditions, so all three are answered on one
        // flight — Donald piggybacks on Minnie's answer.
        let db = fig1_db();
        let donald = "SELECT 'Donald', fno, fdate INTO ANSWER Reservation \
            WHERE fno, fdate IN (SELECT fno, fdate FROM Flights WHERE dest='LA') \
            AND ('Minnie', fno, fdate) IN ANSWER Reservation CHOOSE 1";
        let (sol, gs) = run(&db, &[MICKEY, MINNIE, donald], &SolverConfig::default());
        let mut flights = HashSet::new();
        for (i, o) in sol.outcomes.iter().enumerate() {
            let QueryOutcome::Answered { grounding } = o else {
                panic!("query {i} unanswered: {:?}", sol.outcomes)
            };
            flights.insert(gs[i].groundings[*grounding].answer_row[1].as_int().unwrap());
        }
        assert_eq!(flights.len(), 1, "all three coordinate on one flight");
        assert_eq!(sol.groups, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn self_satisfying_query_answers_alone() {
        let db = fig1_db();
        // Head provides exactly what the postcondition demands.
        let q = "SELECT 'X', fno INTO ANSWER R \
                 WHERE fno IN (SELECT fno FROM Flights WHERE dest='LA') \
                 AND ('X', fno) IN ANSWER R CHOOSE 1";
        let (sol, _) = run(&db, &[q], &SolverConfig::default());
        assert!(matches!(sol.outcomes[0], QueryOutcome::Answered { .. }));
        assert_eq!(sol.groups, vec![vec![0]]);
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let db = fig1_db();
        let cfg = SolverConfig {
            node_budget: 1,
            pairwise_fast_path: false,
            ..Default::default()
        };
        let (sol, _) = run(&db, &[MICKEY, MINNIE], &cfg);
        // With a 1-node budget the search cannot finish; queries fall back
        // to EmptyAnswer (they did pattern-match) — never a wrong answer.
        for o in &sol.outcomes {
            assert!(!matches!(o, QueryOutcome::NoPartner));
        }
    }
}
