//! # youtopia-entangle
//!
//! The entangled-query engine of the *Entangled Transactions* reproduction,
//! implementing the semantics the paper inherits from SIGMOD'11 \[6\] and
//! summarizes in Appendix A:
//!
//! 1. **IR** ([`ir`]): `{C} H ← B` — head and postcondition atoms over
//!    answer relations, a select-project-join body over database relations,
//!    with the range-restriction (safety) check.
//! 2. **Grounding** ([`ground()`]): evaluate `B` on the current database,
//!    producing the groundings of each query (Figure 7(b)) and the
//!    grounding-read footprint the isolation layer needs.
//! 3. **Coordinating-set search** ([`solve()`]): choose at most one grounding
//!    per query such that the chosen heads collectively satisfy every
//!    chosen postcondition; the answer relations are the union of chosen
//!    heads (mutual constraint satisfaction, Figure 1(b)).
//!
//! Appendix B's failure dichotomy is part of the public contract:
//! [`QueryOutcome::EmptyAnswer`] (partner matched, no data — proceed) vs
//! [`QueryOutcome::NoPartner`] (no partner — wait and retry).

pub mod ground;
pub mod ir;
pub mod solve;

pub use ground::{ground, GroundError, Grounding, GroundingSet};
pub use ir::{from_ast, Atom, Body, Filter, IrError, Membership, QueryIr, Term};
pub use solve::{solve, ChoicePolicy, QueryOutcome, Solution, SolveInput, SolverConfig};
