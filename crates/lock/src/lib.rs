//! # youtopia-lock
//!
//! Strict two-phase locking for the *Entangled Transactions* reproduction.
//!
//! §3.3.3 and §5.1 of the paper enforce full entangled isolation with
//! Strict 2PL plus group commit: grounding reads take shared locks that are
//! held until commit, which prevents the unrepeatable-quasi-read anomaly of
//! Figure 3(b) (Donald's write to `Airlines` blocks on Minnie's read lock).
//! This crate provides the lock manager the engine uses for that protocol:
//!
//! * multigranularity modes (`IS`/`IX`/`S`/`SIX`/`X`) over table and row
//!   resources,
//! * blocking acquisition with FIFO fairness and upgrade priority,
//! * waits-for-graph deadlock detection (requester-is-victim) within a
//!   shard, plus a cross-shard edge-chasing probe overlay
//!   ([`GlobalDetector`]) that convicts victims in cycles no single
//!   shard can see,
//! * per-request timeouts and external cancellation (used when the
//!   scheduler aborts a blocked transaction at the end of a run),
//! * early release for the relaxed isolation levels of §3.3.1.

//!
//! For the sharded engine, [`ShardedLocks`] fronts N independent
//! [`LockManager`]s with a routing rule, so shard-local transactions never
//! touch another shard's manager (see the `sharded` module docs).

pub mod detect;
pub mod event;
pub mod manager;
pub mod mode;
pub mod resource;
pub mod sharded;

pub use detect::{GlobalDetector, VictimPolicy};
pub use event::{LockEvent, LockEventSink};
pub use manager::{LockError, LockManager, LockStats};
pub use mode::LockMode;
pub use resource::{Resource, TxId};
pub use sharded::{Router, ShardedLocks};
