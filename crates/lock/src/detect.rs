//! Global cross-shard deadlock detection: an edge-chasing probe overlay.
//!
//! Each [`LockManager`] catches cycles confined to its own shard at
//! enqueue time (the requester-is-victim check in [`LockManager::lock`]).
//! A cycle that *straddles* shards is invisible to every one of those
//! local checks — each shard holds only a path fragment of it. The
//! [`GlobalDetector`] closes that gap with **waiter-driven probes**: a
//! transaction blocked past a short grace period chases the union of all
//! shards' waits-for edges and, if the chase returns to the prober,
//! convicts a victim on the spot. There is no background thread and no
//! periodic sweep — detection work is paid only by transactions that are
//! already blocked, exactly when a cross-shard cycle could exist.
//!
//! ## Consistent cut, no phantom victims
//!
//! A probe locks every shard's state mutex in ascending index order and
//! unions their waits-for edges under the combined hold. Ordinary lock
//! traffic only ever holds **one** shard mutex at a time (a request
//! touches exactly one shard; a blocked waiter holds none), and
//! concurrent probes ascend in the same order, so the sweep cannot
//! deadlock. The union is therefore a true instantaneous snapshot: no
//! waiter can be granted, abandon its wait, or enqueue anywhere while the
//! cut is held. A cycle found in it is a real deadlock — not a phantom
//! assembled from fragments observed at different times — and because
//! every member of a waits-for cycle stays blocked until some member is
//! removed, the conviction (made under the same guards) can never strike
//! a transaction that was about to make progress. That is what makes the
//! detector *sound*: zero false victims on acyclic schedules.
//!
//! ## Victim rule
//!
//! Youngest member first — the largest transaction id, the least work to
//! redo — **except** members whose abort unit the installed
//! [`VictimPolicy`] declares immune. The engine's policy derives units
//! from entanglement groups: a group with any partner already inside the
//! commit pipeline must abort atomically as a whole unit or not at all,
//! so its members are skipped. If every member is immune the probe
//! convicts nobody and the lock timeout remains the backstop. A cycle
//! with any member already canceled is likewise left alone: that cycle
//! is being dismantled, and convicting a second victim would abort more
//! work than the cycle costs.

use crate::manager::LockManager;
use crate::resource::TxId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How the engine scopes a deadlock victim. `abort_unit` names every
/// transaction that must abort together with a candidate (an entangled
/// group aborts atomically); `immune` vetoes candidates whose unit has
/// progressed past the point of safe abortion (a partner already
/// prepared). The default policy has singleton units and no immunity.
pub trait VictimPolicy: Send + Sync {
    /// May `tx` not be chosen as a victim right now?
    fn immune(&self, _tx: TxId) -> bool {
        false
    }

    /// Every transaction that aborts together with `tx` (including `tx`).
    fn abort_unit(&self, tx: TxId) -> Vec<TxId> {
        vec![tx]
    }
}

/// The no-op policy: every transaction is its own abort unit and anyone
/// may be a victim.
struct SingletonPolicy;

impl VictimPolicy for SingletonPolicy {}

/// First probe fires after this much blocking — short enough to beat the
/// lock timeout by two orders of magnitude, long enough that the common
/// brief wait (a holder about to commit) resolves without paying for a
/// cross-shard sweep.
const DEFAULT_GRACE: Duration = Duration::from_millis(2);

/// Re-probe cadence while still blocked.
const DEFAULT_PERIOD: Duration = Duration::from_millis(10);

/// The cross-shard deadlock detector installed on a
/// [`crate::ShardedLocks`] facade.
pub struct GlobalDetector {
    policy: Box<dyn VictimPolicy>,
    grace: Duration,
    period: Duration,
    probes: AtomicU64,
    victims: AtomicU64,
}

impl fmt::Debug for GlobalDetector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalDetector")
            .field("grace", &self.grace)
            .field("period", &self.period)
            .field("probes", &self.probes.load(Ordering::Relaxed))
            .field("victims", &self.victims.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for GlobalDetector {
    fn default() -> Self {
        GlobalDetector::new()
    }
}

impl GlobalDetector {
    /// Detector with singleton abort units and no immunity.
    pub fn new() -> GlobalDetector {
        GlobalDetector::with_policy(Box::new(SingletonPolicy))
    }

    /// Detector with an engine-supplied victim policy (the core engine
    /// installs one backed by its entanglement groups).
    pub fn with_policy(policy: Box<dyn VictimPolicy>) -> GlobalDetector {
        GlobalDetector {
            policy,
            grace: DEFAULT_GRACE,
            period: DEFAULT_PERIOD,
            probes: AtomicU64::new(0),
            victims: AtomicU64::new(0),
        }
    }

    /// Override the probe schedule (tests compress it).
    pub fn with_timing(mut self, grace: Duration, period: Duration) -> GlobalDetector {
        self.grace = grace;
        self.period = period;
        self
    }

    pub(crate) fn grace(&self) -> Duration {
        self.grace
    }

    pub(crate) fn period(&self) -> Duration {
        self.period
    }

    /// Edge-chasing probes launched so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Cycles broken by convicting a victim.
    pub fn victims(&self) -> u64 {
        self.victims.load(Ordering::Relaxed)
    }

    /// One probe on behalf of blocked transaction `from`: build the
    /// consistent cross-shard cut, chase the union waits-for edges from
    /// `from`, and — if the chase closes a cycle — convict a victim under
    /// the same guards. Returns the victim if one was convicted.
    pub(crate) fn probe(&self, shards: &[LockManager], from: TxId) -> Option<TxId> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        // Consistent cut: every shard's state mutex, ascending order.
        let mut guards: Vec<_> = shards.iter().map(|m| m.state_guard()).collect();
        let mut edges: HashMap<TxId, HashSet<TxId>> = HashMap::new();
        let mut canceled: HashSet<TxId> = HashSet::new();
        for g in &guards {
            for (w, hs) in g.waits_for() {
                edges.entry(w).or_default().extend(hs);
            }
            canceled.extend(g.canceled_txs());
        }
        let cycle = cycle_through(&edges, from)?;
        if cycle.iter().any(|t| canceled.contains(t)) {
            // Already being dismantled by an earlier conviction or an
            // external abort; one victim per cycle is enough.
            return None;
        }
        // Youngest (largest id) member whose whole abort unit is fair
        // game; immune units — entangled groups with a prepared partner —
        // are skipped, and if everyone is immune the timeout backstops.
        let mut members = cycle;
        members.sort_unstable_by(|a, b| b.cmp(a));
        let victim = members.into_iter().find(|&t| {
            !self
                .policy
                .abort_unit(t)
                .iter()
                .any(|&u| self.policy.immune(u))
        })?;
        self.victims.fetch_add(1, Ordering::Relaxed);
        // Mark on every shard: the victim's current wait (wherever it
        // blocks) fails with Deadlock, and so does any lock it might
        // request elsewhere before its abort releases everything.
        for g in guards.iter_mut() {
            g.mark_victim(victim);
        }
        drop(guards);
        for m in shards {
            m.notify_waiters();
        }
        Some(victim)
    }
}

/// Members of a waits-for cycle through `start` (including `start`), or
/// `None` if no path leads back to it. BFS with parent links over the
/// union edge set; the reconstructed path start → … → n (with an edge
/// n → start) is exactly the cycle's membership.
fn cycle_through(edges: &HashMap<TxId, HashSet<TxId>>, start: TxId) -> Option<Vec<TxId>> {
    let mut parent: HashMap<TxId, TxId> = HashMap::new();
    let mut queue: VecDeque<TxId> = VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for &s in edges.get(&n).into_iter().flatten() {
            if s == start {
                let mut path = vec![n];
                let mut cur = n;
                while cur != start {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if s != start && !parent.contains_key(&s) {
                parent.insert(s, n);
                queue.push_back(s);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> TxId {
        TxId(n)
    }

    fn edge_set(pairs: &[(u64, u64)]) -> HashMap<TxId, HashSet<TxId>> {
        let mut m: HashMap<TxId, HashSet<TxId>> = HashMap::new();
        for &(a, b) in pairs {
            m.entry(t(a)).or_default().insert(t(b));
        }
        m
    }

    #[test]
    fn cycle_through_finds_membership() {
        // 1 → 2 → 3 → 1 plus a distracting branch 2 → 4.
        let e = edge_set(&[(1, 2), (2, 3), (3, 1), (2, 4)]);
        let mut c = cycle_through(&e, t(1)).expect("cycle");
        c.sort_unstable();
        assert_eq!(c, vec![t(1), t(2), t(3)]);
        // 4 is not on a cycle.
        assert_eq!(cycle_through(&e, t(4)), None);
    }

    #[test]
    fn cycle_through_two_party() {
        let e = edge_set(&[(7, 9), (9, 7)]);
        let mut c = cycle_through(&e, t(9)).expect("cycle");
        c.sort_unstable();
        assert_eq!(c, vec![t(7), t(9)]);
    }

    #[test]
    fn acyclic_chains_have_no_cycle() {
        let e = edge_set(&[(1, 2), (2, 3), (3, 4)]);
        for n in 1..=4 {
            assert_eq!(cycle_through(&e, t(n)), None, "tx {n}");
        }
    }
}
