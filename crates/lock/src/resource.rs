//! Lockable resources and transaction identifiers.

use std::fmt;
use std::sync::Arc;

/// A transaction identifier, unique for the lifetime of an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u64);

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A lockable resource: a whole table or a single row.
///
/// Table names are interned (`Arc<str>`) because the same name is hashed on
/// every row lock in the hot path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    Table(Arc<str>),
    Row(Arc<str>, u64),
}

impl Resource {
    pub fn table(name: impl AsRef<str>) -> Resource {
        Resource::Table(Arc::from(name.as_ref().to_ascii_lowercase().as_str()))
    }

    pub fn row(table: impl AsRef<str>, row: u64) -> Resource {
        Resource::Row(Arc::from(table.as_ref().to_ascii_lowercase().as_str()), row)
    }

    /// The table this resource belongs to.
    pub fn table_name(&self) -> &str {
        match self {
            Resource::Table(t) | Resource::Row(t, _) => t,
        }
    }

    /// The parent resource in the granularity hierarchy (rows → table).
    pub fn parent(&self) -> Option<Resource> {
        match self {
            Resource::Table(_) => None,
            Resource::Row(t, _) => Some(Resource::Table(t.clone())),
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Table(t) => write!(f, "{t}"),
            Resource::Row(t, r) => write!(f, "{t}[{r}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_normalized() {
        assert_eq!(Resource::table("Flights"), Resource::table("FLIGHTS"));
        assert_eq!(Resource::row("Flights", 3), Resource::row("flights", 3));
        assert_ne!(Resource::row("flights", 3), Resource::row("flights", 4));
        assert_ne!(
            Resource::table("flights"),
            Resource::row("flights", 0),
            "table and row are distinct resources"
        );
    }

    #[test]
    fn hierarchy() {
        let r = Resource::row("Flights", 7);
        assert_eq!(r.parent(), Some(Resource::table("flights")));
        assert_eq!(Resource::table("flights").parent(), None);
        assert_eq!(r.table_name(), "flights");
    }

    #[test]
    fn display() {
        assert_eq!(Resource::table("Flights").to_string(), "flights");
        assert_eq!(Resource::row("Flights", 2).to_string(), "flights[2]");
        assert_eq!(TxId(9).to_string(), "t9");
    }
}
