//! Lock-manager event stream for protocol auditing.
//!
//! Every grant, wait, release, and victim decision a [`crate::LockManager`]
//! makes can be streamed to an installed [`LockEventSink`]. The sink is
//! installed once, before the manager is shared (no per-operation locking
//! for the common uninstrumented case — the slot is a plain `Option`), and
//! callbacks run on the acquiring thread while the shard's state mutex is
//! held, so a sink observes events in exactly the serialization order the
//! manager itself decided. Sinks must therefore never call back into the
//! lock manager.
//!
//! The `audit` crate implements the sink that checks the engine's locking
//! protocol (multigranularity legality, strict-2PL phasing, latch
//! discipline, next-key coverage) against this stream.

use crate::mode::LockMode;
use crate::resource::{Resource, TxId};
use std::fmt;
use std::sync::Arc;

/// One observable lock-manager transition.
///
/// `shard` is the index of the [`crate::LockManager`] inside its
/// [`crate::ShardedLocks`] (0 for a standalone manager) — the lock-order
/// graph tags edges with it so cross-shard cycles are distinguishable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockEvent {
    /// `tx` now holds `mode` on `res`. Emitted for fresh grants, upgrades,
    /// and covered re-grants alike; `mode` is the *resulting held mode*
    /// (the combine of old and requested), so a sink can mirror the held
    /// set exactly.
    Granted {
        tx: TxId,
        res: Resource,
        mode: LockMode,
        shard: usize,
    },
    /// `tx` is about to block waiting for `mode` on `res`. Emitted on the
    /// waiting thread before it sleeps — the latch-discipline check keys
    /// off this.
    Wait {
        tx: TxId,
        res: Resource,
        mode: LockMode,
        shard: usize,
    },
    /// `tx` released `res` alone, before commit (relaxed isolation only).
    Released {
        tx: TxId,
        res: Resource,
        shard: usize,
    },
    /// `tx` released everything it held on this shard (commit/abort).
    ReleasedAll { tx: TxId, shard: usize },
    /// `tx`'s request for `mode` on `res` was refused: granting would have
    /// closed a waits-for cycle and the requester is the victim.
    Deadlock {
        tx: TxId,
        res: Resource,
        mode: LockMode,
        shard: usize,
    },
    /// `tx`'s request for `mode` on `res` timed out.
    Timeout {
        tx: TxId,
        res: Resource,
        mode: LockMode,
        shard: usize,
    },
    /// The shard's whole lock table was wiped (crash-recovery reset).
    Reset { shard: usize },
}

impl fmt::Display for LockEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockEvent::Granted {
                tx,
                res,
                mode,
                shard,
            } => write!(f, "[s{shard}] {tx} granted {mode:?} on {res}"),
            LockEvent::Wait {
                tx,
                res,
                mode,
                shard,
            } => write!(f, "[s{shard}] {tx} waits for {mode:?} on {res}"),
            LockEvent::Released { tx, res, shard } => {
                write!(f, "[s{shard}] {tx} released {res} early")
            }
            LockEvent::ReleasedAll { tx, shard } => {
                write!(f, "[s{shard}] {tx} released all (commit/abort)")
            }
            LockEvent::Deadlock {
                tx,
                res,
                mode,
                shard,
            } => write!(
                f,
                "[s{shard}] {tx} deadlock victim requesting {mode:?} on {res}"
            ),
            LockEvent::Timeout {
                tx,
                res,
                mode,
                shard,
            } => write!(f, "[s{shard}] {tx} timed out requesting {mode:?} on {res}"),
            LockEvent::Reset { shard } => write!(f, "[s{shard}] lock table reset"),
        }
    }
}

/// Receiver for the event stream. Implementations must be thread-safe and
/// must not call back into the emitting lock manager (the callback runs
/// under the shard's state mutex).
pub trait LockEventSink: Send + Sync {
    fn on_event(&self, event: &LockEvent);
}

/// The installed sink plus the shard id it stamps on every event.
#[derive(Clone)]
pub(crate) struct SinkSlot {
    pub shard: usize,
    pub sink: Arc<dyn LockEventSink>,
}

impl fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SinkSlot")
            .field("shard", &self.shard)
            .finish()
    }
}
