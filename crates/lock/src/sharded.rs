//! Per-shard lock managers behind one routing facade.
//!
//! [`ShardedLocks`] owns N independent [`LockManager`]s and routes every
//! resource to one of them through a caller-supplied function (the engine
//! routes by the resource's table shard, so a shard-local transaction
//! contends only on its own manager's mutex). Shard-local waits-for
//! cycles are caught at enqueue time by each manager's own check; a cycle
//! that **straddles** shards is invisible to any single manager, so the
//! facade carries an optional [`GlobalDetector`]: blocked waiters run
//! edge-chasing probes over a consistent all-shard cut and convict a
//! victim instead of letting the cycle die by the lock timeout (which
//! remains the backstop when detection is disabled or every cycle member
//! is immune — see [`crate::detect`]).
//!
//! Transaction-scoped operations (`unlock_all`, `cancel`, `held`)
//! broadcast to every shard; a transaction's locks may be spread over
//! several of them.

use crate::detect::GlobalDetector;
use crate::event::LockEventSink;
use crate::manager::{LockError, LockManager, ProbeHook};
use crate::mode::LockMode;
use crate::resource::{Resource, TxId};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Picks the shard owning a resource.
pub type Router = Box<dyn Fn(&Resource) -> usize + Send + Sync>;

/// N per-shard [`LockManager`]s plus the routing rule between them.
pub struct ShardedLocks {
    shards: Vec<LockManager>,
    route: Router,
    /// Cross-shard deadlock detector; `None` = timeout-only fallback.
    detect: Option<GlobalDetector>,
}

impl fmt::Debug for ShardedLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedLocks")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Default for ShardedLocks {
    fn default() -> ShardedLocks {
        ShardedLocks::single()
    }
}

impl ShardedLocks {
    /// One shard, trivial routing — behaviourally a plain [`LockManager`].
    pub fn single() -> ShardedLocks {
        ShardedLocks::with_router(1, Box::new(|_| 0))
    }

    /// `n` shards (clamped to at least 1) with the given routing rule.
    /// The router must be total and stable: the same resource always maps
    /// to the same shard in `0..n`.
    pub fn with_router(n: usize, route: Router) -> ShardedLocks {
        ShardedLocks {
            shards: (0..n.max(1)).map(|_| LockManager::new()).collect(),
            route,
            detect: None,
        }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Install a cross-shard deadlock detector. Like sink installation,
    /// this must run before the facade is shared. Probing only engages
    /// with two or more shards — a single manager's enqueue-time check
    /// already sees every cycle it can form.
    pub fn enable_detection(&mut self, det: GlobalDetector) {
        self.detect = Some(det);
    }

    /// The installed detector, if any.
    pub fn detector(&self) -> Option<&GlobalDetector> {
        self.detect.as_ref()
    }

    /// Victims convicted by the cross-shard detector (0 when detection is
    /// off — every local enqueue-time victim counts under
    /// [`Self::total_deadlocks`] either way).
    pub fn total_deadlock_victims(&self) -> u64 {
        self.detect.as_ref().map_or(0, |d| d.victims())
    }

    /// Edge-chasing probes launched by blocked waiters (0 when detection
    /// is off).
    pub fn total_detection_probes(&self) -> u64 {
        self.detect.as_ref().map_or(0, |d| d.probes())
    }

    /// Install one audit sink on every shard; each shard stamps its own
    /// index on the events it emits. Must run before the facade is shared
    /// (see [`LockManager::set_sink`]).
    pub fn install_sink(&mut self, sink: Arc<dyn LockEventSink>) {
        for (i, m) in self.shards.iter_mut().enumerate() {
            m.set_sink(i, sink.clone());
        }
    }

    /// The manager owning shard `i`.
    pub fn shard(&self, i: usize) -> &LockManager {
        &self.shards[i]
    }

    /// The shard `res` routes to.
    pub fn shard_of(&self, res: &Resource) -> usize {
        (self.route)(res).min(self.shards.len() - 1)
    }

    /// Acquire `mode` on `res` for `tx` on the owning shard (see
    /// [`LockManager::lock`]).
    pub fn lock(
        &self,
        tx: TxId,
        res: Resource,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        let s = self.shard_of(&res);
        match &self.detect {
            Some(det) if self.shards.len() > 1 => {
                let run = || {
                    det.probe(&self.shards, tx);
                };
                self.shards[s].lock_probed(
                    tx,
                    res,
                    mode,
                    timeout,
                    Some(ProbeHook {
                        grace: det.grace(),
                        period: det.period(),
                        run: &run,
                    }),
                )
            }
            _ => self.shards[s].lock(tx, res, mode, timeout),
        }
    }

    /// Non-blocking acquire on the owning shard.
    pub fn try_lock(&self, tx: TxId, res: Resource, mode: LockMode) -> bool {
        let s = self.shard_of(&res);
        self.shards[s].try_lock(tx, res, mode)
    }

    /// Release one resource on its owning shard.
    pub fn release(&self, tx: TxId, res: &Resource) {
        self.shards[self.shard_of(res)].release(tx, res);
    }

    /// Release everything `tx` holds, on every shard.
    pub fn unlock_all(&self, tx: TxId) {
        for m in &self.shards {
            m.unlock_all(tx);
        }
    }

    /// Cancel `tx`'s pending waits on every shard.
    pub fn cancel(&self, tx: TxId) {
        for m in &self.shards {
            m.cancel(tx);
        }
    }

    /// Drop all state on every shard (recovery).
    pub fn reset(&self) {
        for m in &self.shards {
            m.reset();
        }
    }

    /// Whether **every** shard is quiescent.
    pub fn quiescent(&self) -> bool {
        self.shards.iter().all(|m| m.quiescent())
    }

    /// Whether shard `i` alone is quiescent — the per-shard checkpoint
    /// gate: one busy shard no longer blocks checkpointing the others.
    pub fn quiescent_shard(&self, i: usize) -> bool {
        self.shards[i].quiescent()
    }

    /// Everything `tx` holds, across all shards.
    pub fn held(&self, tx: TxId) -> Vec<(Resource, LockMode)> {
        let mut out = Vec::new();
        for m in &self.shards {
            out.extend(m.held(tx));
        }
        out
    }

    /// Total grants across shards (diagnostics).
    pub fn total_grants(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.stats().grants.load(Ordering::Relaxed))
            .sum()
    }

    /// Total waits-for cycles broken by victim selection, across shards —
    /// both local enqueue-time detections and victims convicted by the
    /// cross-shard probe overlay.
    pub fn total_deadlocks(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.stats().deadlocks.load(Ordering::Relaxed))
            .sum()
    }

    /// Total lock waits that expired, across shards. With detection on,
    /// cross-shard cycles are convicted by the probe overlay instead of
    /// landing here; the timeout remains the backstop for detection-off
    /// runs and all-immune cycles.
    pub fn total_timeouts(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.stats().timeouts.load(Ordering::Relaxed))
            .sum()
    }

    /// Completed blocked-wait durations (µs) across every shard, in no
    /// particular order — the sample set behind the `hotcycle` bench's
    /// block-time percentiles.
    pub fn all_wait_micros(&self) -> Vec<u64> {
        self.shards.iter().flat_map(|m| m.wait_micros()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sharded() -> ShardedLocks {
        // Route by first byte parity: "a…" → 0, "b…" → 1, etc.
        ShardedLocks::with_router(
            2,
            Box::new(|r| (r.table_name().as_bytes().first().copied().unwrap_or(0) % 2) as usize),
        )
    }

    #[test]
    fn routing_is_stable_and_operations_land_on_one_shard() {
        let l = two_sharded();
        let ra = Resource::table("aa");
        let rb = Resource::table("bb");
        assert_ne!(l.shard_of(&ra), l.shard_of(&rb));
        l.lock(TxId(1), ra.clone(), LockMode::X, None).unwrap();
        l.lock(TxId(1), rb.clone(), LockMode::S, None).unwrap();
        assert_eq!(l.held(TxId(1)).len(), 2, "held() spans shards");
        assert!(!l.quiescent());
        // The shard that holds nothing is quiescent on its own.
        let busy = l.shard_of(&ra);
        assert!(!l.quiescent_shard(busy));
        l.release(TxId(1), &ra);
        assert!(l.quiescent_shard(busy));
        assert!(!l.quiescent_shard(1 - busy));
        l.unlock_all(TxId(1));
        assert!(l.quiescent());
    }

    #[test]
    fn conflicts_on_different_shards_do_not_interact() {
        let l = two_sharded();
        l.lock(TxId(1), Resource::table("aa"), LockMode::X, None)
            .unwrap();
        // A second transaction on the other shard is not delayed.
        assert!(l.try_lock(TxId(2), Resource::table("bb"), LockMode::X));
        // But the same resource conflicts as usual.
        assert!(!l.try_lock(TxId(2), Resource::table("aa"), LockMode::S));
        l.reset();
        assert!(l.quiescent());
    }

    fn two_sharded_detecting() -> Arc<ShardedLocks> {
        let mut l = two_sharded();
        l.enable_detection(
            GlobalDetector::new().with_timing(Duration::from_millis(1), Duration::from_millis(2)),
        );
        Arc::new(l)
    }

    #[test]
    fn cross_shard_cycle_convicts_youngest_not_timeout() {
        // t1 holds X("aa") on shard 0, t2 holds X("bb") on shard 1; each
        // then requests the other's resource. Neither shard's local check
        // can see the cycle; the probe overlay must convict the youngest
        // (t2) well before the generous timeout, leaving zero timeouts.
        let l = two_sharded_detecting();
        let (ra, rb) = (Resource::table("aa"), Resource::table("bb"));
        l.lock(TxId(1), ra.clone(), LockMode::X, None).unwrap();
        l.lock(TxId(2), rb.clone(), LockMode::X, None).unwrap();
        let (l1, rb1) = (l.clone(), rb.clone());
        let w1 = std::thread::spawn(move || {
            l1.lock(TxId(1), rb1, LockMode::X, Some(Duration::from_secs(10)))
        });
        std::thread::sleep(Duration::from_millis(20));
        let err = l
            .lock(
                TxId(2),
                ra.clone(),
                LockMode::X,
                Some(Duration::from_secs(10)),
            )
            .unwrap_err();
        assert_eq!(err, LockError::Deadlock, "victim convicted, not timed out");
        assert_eq!(l.total_deadlock_victims(), 1);
        assert!(l.total_detection_probes() >= 1);
        assert_eq!(l.total_timeouts(), 0);
        // Victim aborts; the survivor's wait completes.
        l.unlock_all(TxId(2));
        assert_eq!(w1.join().unwrap(), Ok(()));
        l.unlock_all(TxId(1));
        assert!(l.quiescent());
    }

    #[test]
    fn three_shard_ring_breaks_with_one_victim() {
        // t1→t2→t3→t1 across three shards; exactly one member aborts and
        // the other two complete.
        let mut l = ShardedLocks::with_router(
            3,
            Box::new(|r| (r.table_name().as_bytes().first().copied().unwrap_or(0) as usize) % 3),
        );
        l.enable_detection(
            GlobalDetector::new().with_timing(Duration::from_millis(1), Duration::from_millis(2)),
        );
        let l = Arc::new(l);
        // Bytes 'c','d','e' → shards 2,0,1: three distinct shards.
        let res: Vec<Resource> = ["cc", "dd", "ee"]
            .iter()
            .map(Resource::table)
            .collect();
        let shard_set: std::collections::BTreeSet<usize> =
            res.iter().map(|r| l.shard_of(r)).collect();
        assert_eq!(shard_set.len(), 3, "ring must straddle three shards");
        for (i, r) in res.iter().enumerate() {
            l.lock(TxId(i as u64 + 1), r.clone(), LockMode::X, None)
                .unwrap();
        }
        let mut waiters = Vec::new();
        for i in 0..3u64 {
            let l2 = l.clone();
            let want = res[((i as usize) + 1) % 3].clone();
            waiters.push(std::thread::spawn(move || {
                let out = l2.lock(
                    TxId(i + 1),
                    want,
                    LockMode::X,
                    Some(Duration::from_secs(10)),
                );
                if out.is_err() {
                    // Victim: abort, releasing its held resource.
                    l2.unlock_all(TxId(i + 1));
                } else {
                    l2.unlock_all(TxId(i + 1));
                }
                out
            }));
        }
        let outcomes: Vec<_> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
        let victims = outcomes.iter().filter(|o| o.is_err()).count();
        assert_eq!(victims, 1, "exactly one ring member aborts: {outcomes:?}");
        assert!(outcomes
            .iter()
            .all(|o| !matches!(o, Err(LockError::Timeout))));
        assert_eq!(l.total_timeouts(), 0);
        assert_eq!(l.total_deadlock_victims(), 1);
        assert!(l.quiescent());
    }

    #[test]
    fn immune_members_defer_to_older_candidates() {
        // Same two-shard cycle, but the youngest (t2) is immune per the
        // installed policy: the detector must convict t1 instead.
        struct Shield;
        impl crate::detect::VictimPolicy for Shield {
            fn immune(&self, tx: TxId) -> bool {
                tx == TxId(2)
            }
        }
        let mut l = two_sharded();
        l.enable_detection(
            GlobalDetector::with_policy(Box::new(Shield))
                .with_timing(Duration::from_millis(1), Duration::from_millis(2)),
        );
        let l = Arc::new(l);
        let (ra, rb) = (Resource::table("aa"), Resource::table("bb"));
        l.lock(TxId(1), ra.clone(), LockMode::X, None).unwrap();
        l.lock(TxId(2), rb.clone(), LockMode::X, None).unwrap();
        let (l1, ra1) = (l.clone(), ra.clone());
        let w2 = std::thread::spawn(move || {
            l1.lock(TxId(2), ra1, LockMode::X, Some(Duration::from_secs(10)))
        });
        std::thread::sleep(Duration::from_millis(20));
        let err = l
            .lock(
                TxId(1),
                rb.clone(),
                LockMode::X,
                Some(Duration::from_secs(10)),
            )
            .unwrap_err();
        assert_eq!(
            err,
            LockError::Deadlock,
            "older non-immune member convicted"
        );
        l.unlock_all(TxId(1));
        assert_eq!(w2.join().unwrap(), Ok(()), "immune member survives");
        l.unlock_all(TxId(2));
        assert!(l.quiescent());
    }

    #[test]
    fn acyclic_cross_shard_contention_has_no_victims() {
        // Plain contention (no cycle) under aggressive probing: the
        // detector must stay quiet — soundness at the facade level.
        let l = two_sharded_detecting();
        let r = Resource::table("aa");
        l.lock(TxId(1), r.clone(), LockMode::X, None).unwrap();
        let mut waiters = Vec::new();
        for i in 2..=5u64 {
            let (l2, r2) = (l.clone(), r.clone());
            waiters.push(std::thread::spawn(move || {
                l2.lock(TxId(i), r2, LockMode::S, Some(Duration::from_secs(10)))
            }));
        }
        std::thread::sleep(Duration::from_millis(30));
        l.unlock_all(TxId(1));
        for w in waiters {
            assert_eq!(w.join().unwrap(), Ok(()));
        }
        assert_eq!(l.total_deadlock_victims(), 0, "no false victims");
        assert_eq!(l.total_deadlocks(), 0);
        for i in 2..=5u64 {
            l.unlock_all(TxId(i));
        }
        assert!(l.quiescent());
    }

    #[test]
    fn single_shard_facade_matches_plain_manager() {
        let l = ShardedLocks::single();
        assert_eq!(l.shards(), 1);
        l.lock(TxId(1), Resource::row("t", 3), LockMode::X, None)
            .unwrap();
        assert_eq!(l.shard_of(&Resource::row("t", 3)), 0);
        assert_eq!(l.held(TxId(1)).len(), 1);
        l.unlock_all(TxId(1));
        assert!(l.quiescent());
    }
}
