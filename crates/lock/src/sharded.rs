//! Per-shard lock managers behind one routing facade.
//!
//! [`ShardedLocks`] owns N independent [`LockManager`]s and routes every
//! resource to one of them through a caller-supplied function (the engine
//! routes by the resource's table shard, so a shard-local transaction
//! contends only on its own manager's mutex). Deadlock detection stays
//! per shard: a waits-for cycle that straddles shards is invisible to any
//! single manager and is broken by the lock timeout instead — the same
//! fallback a distributed lock manager accepts for the rare cross-shard
//! conflict.
//!
//! Transaction-scoped operations (`unlock_all`, `cancel`, `held`)
//! broadcast to every shard; a transaction's locks may be spread over
//! several of them.

use crate::event::LockEventSink;
use crate::manager::{LockError, LockManager};
use crate::mode::LockMode;
use crate::resource::{Resource, TxId};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Picks the shard owning a resource.
pub type Router = Box<dyn Fn(&Resource) -> usize + Send + Sync>;

/// N per-shard [`LockManager`]s plus the routing rule between them.
pub struct ShardedLocks {
    shards: Vec<LockManager>,
    route: Router,
}

impl fmt::Debug for ShardedLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedLocks")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Default for ShardedLocks {
    fn default() -> ShardedLocks {
        ShardedLocks::single()
    }
}

impl ShardedLocks {
    /// One shard, trivial routing — behaviourally a plain [`LockManager`].
    pub fn single() -> ShardedLocks {
        ShardedLocks::with_router(1, Box::new(|_| 0))
    }

    /// `n` shards (clamped to at least 1) with the given routing rule.
    /// The router must be total and stable: the same resource always maps
    /// to the same shard in `0..n`.
    pub fn with_router(n: usize, route: Router) -> ShardedLocks {
        ShardedLocks {
            shards: (0..n.max(1)).map(|_| LockManager::new()).collect(),
            route,
        }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Install one audit sink on every shard; each shard stamps its own
    /// index on the events it emits. Must run before the facade is shared
    /// (see [`LockManager::set_sink`]).
    pub fn install_sink(&mut self, sink: Arc<dyn LockEventSink>) {
        for (i, m) in self.shards.iter_mut().enumerate() {
            m.set_sink(i, sink.clone());
        }
    }

    /// The manager owning shard `i`.
    pub fn shard(&self, i: usize) -> &LockManager {
        &self.shards[i]
    }

    /// The shard `res` routes to.
    pub fn shard_of(&self, res: &Resource) -> usize {
        (self.route)(res).min(self.shards.len() - 1)
    }

    /// Acquire `mode` on `res` for `tx` on the owning shard (see
    /// [`LockManager::lock`]).
    pub fn lock(
        &self,
        tx: TxId,
        res: Resource,
        mode: LockMode,
        timeout: Option<Duration>,
    ) -> Result<(), LockError> {
        let s = self.shard_of(&res);
        self.shards[s].lock(tx, res, mode, timeout)
    }

    /// Non-blocking acquire on the owning shard.
    pub fn try_lock(&self, tx: TxId, res: Resource, mode: LockMode) -> bool {
        let s = self.shard_of(&res);
        self.shards[s].try_lock(tx, res, mode)
    }

    /// Release one resource on its owning shard.
    pub fn release(&self, tx: TxId, res: &Resource) {
        self.shards[self.shard_of(res)].release(tx, res);
    }

    /// Release everything `tx` holds, on every shard.
    pub fn unlock_all(&self, tx: TxId) {
        for m in &self.shards {
            m.unlock_all(tx);
        }
    }

    /// Cancel `tx`'s pending waits on every shard.
    pub fn cancel(&self, tx: TxId) {
        for m in &self.shards {
            m.cancel(tx);
        }
    }

    /// Drop all state on every shard (recovery).
    pub fn reset(&self) {
        for m in &self.shards {
            m.reset();
        }
    }

    /// Whether **every** shard is quiescent.
    pub fn quiescent(&self) -> bool {
        self.shards.iter().all(|m| m.quiescent())
    }

    /// Whether shard `i` alone is quiescent — the per-shard checkpoint
    /// gate: one busy shard no longer blocks checkpointing the others.
    pub fn quiescent_shard(&self, i: usize) -> bool {
        self.shards[i].quiescent()
    }

    /// Everything `tx` holds, across all shards.
    pub fn held(&self, tx: TxId) -> Vec<(Resource, LockMode)> {
        let mut out = Vec::new();
        for m in &self.shards {
            out.extend(m.held(tx));
        }
        out
    }

    /// Total grants across shards (diagnostics).
    pub fn total_grants(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.stats().grants.load(Ordering::Relaxed))
            .sum()
    }

    /// Total waits-for cycles broken by victim selection, across shards.
    pub fn total_deadlocks(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.stats().deadlocks.load(Ordering::Relaxed))
            .sum()
    }

    /// Total lock waits that expired, across shards. Cross-shard cycles —
    /// invisible to any single manager's detector — show up here.
    pub fn total_timeouts(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.stats().timeouts.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sharded() -> ShardedLocks {
        // Route by first byte parity: "a…" → 0, "b…" → 1, etc.
        ShardedLocks::with_router(
            2,
            Box::new(|r| (r.table_name().as_bytes().first().copied().unwrap_or(0) % 2) as usize),
        )
    }

    #[test]
    fn routing_is_stable_and_operations_land_on_one_shard() {
        let l = two_sharded();
        let ra = Resource::table("aa");
        let rb = Resource::table("bb");
        assert_ne!(l.shard_of(&ra), l.shard_of(&rb));
        l.lock(TxId(1), ra.clone(), LockMode::X, None).unwrap();
        l.lock(TxId(1), rb.clone(), LockMode::S, None).unwrap();
        assert_eq!(l.held(TxId(1)).len(), 2, "held() spans shards");
        assert!(!l.quiescent());
        // The shard that holds nothing is quiescent on its own.
        let busy = l.shard_of(&ra);
        assert!(!l.quiescent_shard(busy));
        l.release(TxId(1), &ra);
        assert!(l.quiescent_shard(busy));
        assert!(!l.quiescent_shard(1 - busy));
        l.unlock_all(TxId(1));
        assert!(l.quiescent());
    }

    #[test]
    fn conflicts_on_different_shards_do_not_interact() {
        let l = two_sharded();
        l.lock(TxId(1), Resource::table("aa"), LockMode::X, None)
            .unwrap();
        // A second transaction on the other shard is not delayed.
        assert!(l.try_lock(TxId(2), Resource::table("bb"), LockMode::X));
        // But the same resource conflicts as usual.
        assert!(!l.try_lock(TxId(2), Resource::table("aa"), LockMode::S));
        l.reset();
        assert!(l.quiescent());
    }

    #[test]
    fn single_shard_facade_matches_plain_manager() {
        let l = ShardedLocks::single();
        assert_eq!(l.shards(), 1);
        l.lock(TxId(1), Resource::row("t", 3), LockMode::X, None)
            .unwrap();
        assert_eq!(l.shard_of(&Resource::row("t", 3)), 0);
        assert_eq!(l.held(TxId(1)).len(), 1);
        l.unlock_all(TxId(1));
        assert!(l.quiescent());
    }
}
